//! Complex-valued dense linear algebra for AC (small-signal frequency
//! domain) analysis.
//!
//! Self-contained on purpose: `si-analog` carries no dependency on the DSP
//! crate, so it defines the minimal complex scalar ([`C64`]) and an LU
//! solver ([`CMatrix::solve`]) the AC and noise analyses need.

use crate::AnalogError;

/// A complex number for AC analysis.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };

    /// Creates a complex number.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// A purely real value.
    #[must_use]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// A purely imaginary value (`j·im`) — the `jωC` stamp.
    #[must_use]
    pub const fn imag(im: f64) -> Self {
        C64 { re: 0.0, im }
    }

    /// Magnitude `|z|`.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase in radians.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Reciprocal `1/z`.
    #[must_use]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        C64::new(self.re / d, -self.im / d)
    }
}

impl std::ops::Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::AddAssign for C64 {
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl std::ops::Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::SubAssign for C64 {
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl std::ops::Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

// Division by reciprocal is the standard complex-division formulation.
#[allow(clippy::suspicious_arithmetic_impl)]
impl std::ops::Div for C64 {
    type Output = C64;
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl std::ops::Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

/// A dense complex matrix with in-place LU solve.
#[derive(Debug, Clone)]
pub struct CMatrix {
    n: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// An `n × n` zero matrix.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        CMatrix {
            n,
            data: vec![C64::ZERO; n * n],
        }
    }

    /// The dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Adds `value` to entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn stamp(&mut self, i: usize, j: usize, value: C64) {
        assert!(i < self.n && j < self.n, "index ({i},{j}) out of range");
        self.data[i * self.n + j] += value;
    }

    /// Reads entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> C64 {
        assert!(i < self.n && j < self.n, "index ({i},{j}) out of range");
        self.data[i * self.n + j]
    }

    /// Reshapes to an `n × n` zero matrix, keeping the allocation when the
    /// capacity suffices.
    pub fn resize_zeroed(&mut self, n: usize) {
        self.n = n;
        self.data.clear();
        self.data.resize(n * n, C64::ZERO);
    }

    /// Overwrites `self` with its LU factorization (partial pivoting on
    /// magnitude), recording the row permutation in `perm`. `L` (unit
    /// diagonal, strictly below) stores the elimination factors; `U` sits
    /// on and above the diagonal.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::SingularMatrix`] if a pivot vanishes.
    pub fn factor_in_place(&mut self, perm: &mut Vec<usize>) -> Result<(), AnalogError> {
        let n = self.n;
        perm.clear();
        perm.extend(0..n);
        let a = &mut self.data;
        let idx = |i: usize, j: usize| i * n + j;
        for k in 0..n {
            // Partial pivot on magnitude.
            let mut p = k;
            let mut mag = a[idx(k, k)].abs();
            for i in (k + 1)..n {
                let m = a[idx(i, k)].abs();
                if m > mag {
                    mag = m;
                    p = i;
                }
            }
            if mag < 1e-300 || !mag.is_finite() {
                return Err(AnalogError::SingularMatrix { row: k });
            }
            if p != k {
                for j in 0..n {
                    a.swap(idx(k, j), idx(p, j));
                }
                perm.swap(k, p);
            }
            let pivot = a[idx(k, k)];
            for i in (k + 1)..n {
                let factor = a[idx(i, k)] / pivot;
                a[idx(i, k)] = factor;
                if factor.abs() == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    let akj = a[idx(k, j)];
                    a[idx(i, j)] = a[idx(i, j)] - factor * akj;
                }
            }
        }
        Ok(())
    }

    /// Solves `L·U·x = P·b` given factors from
    /// [`CMatrix::factor_in_place`], writing into a caller-held vector.
    /// The forward pass applies the elimination column by column — the
    /// exact operation order of the one-shot [`CMatrix::solve`], so the
    /// split path is bit-identical to the combined one.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] on a length mismatch.
    pub fn lu_solve_into(
        &self,
        perm: &[usize],
        b: &[C64],
        x: &mut Vec<C64>,
    ) -> Result<(), AnalogError> {
        let n = self.n;
        if b.len() != n || perm.len() != n {
            return Err(AnalogError::InvalidParameter {
                name: "b",
                constraint: "vector length must equal matrix dimension",
            });
        }
        let a = &self.data;
        let idx = |i: usize, j: usize| i * n + j;
        x.clear();
        x.extend(perm.iter().map(|&p| b[p]));
        // Forward substitution, column-major.
        for k in 0..n {
            for i in (k + 1)..n {
                let factor = a[idx(i, k)];
                if factor.abs() == 0.0 {
                    continue;
                }
                x[i] = x[i] - factor * x[k];
            }
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= a[idx(i, j)] * x[j];
            }
            x[i] = acc / a[idx(i, i)];
        }
        Ok(())
    }

    /// Overwrites `self` with `src`'s shape and values, reusing the
    /// existing allocation when the capacity suffices — the non-allocating
    /// analogue of `clone_from`, and value-exact, so factoring the copy
    /// performs the same floating-point operations as factoring a clone.
    fn assign_from(&mut self, src: &CMatrix) {
        self.n = src.n;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Solves `A·x = b` into `x` without consuming `self`, copying the
    /// matrix into `scratch` and factoring there. All buffers are reused
    /// across calls: after warm-up a solve of the same (or smaller)
    /// dimension allocates nothing.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::SingularMatrix`] if a pivot vanishes, or
    /// [`AnalogError::InvalidParameter`] on a length mismatch.
    pub fn solve_with(
        &self,
        b: &[C64],
        scratch: &mut SolveScratch,
        x: &mut Vec<C64>,
    ) -> Result<(), AnalogError> {
        if b.len() != self.n {
            return Err(AnalogError::InvalidParameter {
                name: "b",
                constraint: "vector length must equal matrix dimension",
            });
        }
        scratch.lu.assign_from(self);
        scratch.lu.factor_in_place(&mut scratch.perm)?;
        scratch.lu.lu_solve_into(&scratch.perm, b, x)
    }

    /// Solves `A·x = b` by LU with partial pivoting.
    ///
    /// The factor copy and permutation live in a thread-local
    /// [`SolveScratch`], so repeated calls allocate only the returned
    /// solution vector — no per-call matrix clone.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::SingularMatrix`] if a pivot vanishes, or
    /// [`AnalogError::InvalidParameter`] on a length mismatch.
    pub fn solve(&self, b: &[C64]) -> Result<Vec<C64>, AnalogError> {
        thread_local! {
            static SCRATCH: std::cell::RefCell<SolveScratch> =
                std::cell::RefCell::new(SolveScratch::new());
        }
        SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            let mut x = Vec::with_capacity(self.n);
            self.solve_with(b, &mut scratch, &mut x)?;
            Ok(x)
        })
    }
}

/// Reusable buffers for [`CMatrix::solve_with`]: the factor copy and row
/// permutation survive across solves, so the steady-state path performs no
/// matrix clone and no allocation.
#[derive(Debug, Clone)]
pub struct SolveScratch {
    lu: CMatrix,
    perm: Vec<usize>,
}

impl Default for SolveScratch {
    fn default() -> Self {
        SolveScratch::new()
    }
}

impl SolveScratch {
    /// Empty scratch; buffers grow to matrix size on first use.
    #[must_use]
    pub fn new() -> Self {
        SolveScratch {
            lu: CMatrix::zeros(0),
            perm: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn scalar_arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert!(close(a + b, C64::new(4.0, 1.0)));
        assert!(close(a * b, C64::new(5.0, 5.0)));
        assert!(close(a / b * b, a));
        assert!(close(a.conj().conj(), a));
        assert!((C64::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
        assert!(close(-a + a, C64::ZERO));
        assert!(close(C64::imag(2.0) * C64::imag(3.0), C64::real(-6.0)));
    }

    #[test]
    fn identity_solve() {
        let mut m = CMatrix::zeros(3);
        for i in 0..3 {
            m.stamp(i, i, C64::ONE);
        }
        let b = vec![C64::new(1.0, 1.0), C64::new(2.0, -1.0), C64::real(3.0)];
        let x = m.solve(&b).unwrap();
        for (u, v) in x.iter().zip(&b) {
            assert!(close(*u, *v));
        }
    }

    #[test]
    fn solves_complex_system() {
        // [1+j, 2; 0, 3j] x = [3+j, 6j] → x = [?, 2]; row0: (1+j)x0 + 4 = 3+j
        // → x0 = (−1+j)/(1+j) = j·... compute residual instead.
        let mut m = CMatrix::zeros(2);
        m.stamp(0, 0, C64::new(1.0, 1.0));
        m.stamp(0, 1, C64::real(2.0));
        m.stamp(1, 1, C64::imag(3.0));
        let b = vec![C64::new(3.0, 1.0), C64::imag(6.0)];
        let x = m.solve(&b).unwrap();
        // Residual check.
        let r0 = m.get(0, 0) * x[0] + m.get(0, 1) * x[1] - b[0];
        let r1 = m.get(1, 1) * x[1] - b[1];
        assert!(r0.abs() < 1e-12 && r1.abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let mut m = CMatrix::zeros(2);
        m.stamp(0, 1, C64::ONE);
        m.stamp(1, 0, C64::ONE);
        let x = m.solve(&[C64::real(2.0), C64::real(5.0)]).unwrap();
        assert!(close(x[0], C64::real(5.0)));
        assert!(close(x[1], C64::real(2.0)));
    }

    #[test]
    fn factored_path_is_bit_identical_to_one_shot_solve() {
        let mut m = CMatrix::zeros(3);
        // Asymmetric, needs pivoting, mixes magnitudes.
        m.stamp(0, 1, C64::new(2.0, -1.0));
        m.stamp(0, 2, C64::real(0.5));
        m.stamp(1, 0, C64::new(1e-3, 4.0));
        m.stamp(1, 1, C64::imag(-2.0));
        m.stamp(2, 0, C64::real(3.0));
        m.stamp(2, 2, C64::new(-1.0, 1.0));
        let b = vec![C64::new(1.0, 2.0), C64::real(-3.0), C64::imag(0.25)];
        let one_shot = m.solve(&b).unwrap();

        let mut lu = m.clone();
        let mut perm = Vec::new();
        lu.factor_in_place(&mut perm).unwrap();
        let mut x = Vec::new();
        lu.lu_solve_into(&perm, &b, &mut x).unwrap();
        for (u, v) in x.iter().zip(&one_shot) {
            assert_eq!(u.re, v.re);
            assert_eq!(u.im, v.im);
        }
    }

    #[test]
    fn scratch_solve_is_bit_identical_across_dimension_changes() {
        // One scratch serving a 3×3, then a 1×1, then the 3×3 again must
        // leave no stale state: every answer matches a fresh solve bit for
        // bit, and the warm third call reuses the grown buffers.
        let mut big = CMatrix::zeros(3);
        big.stamp(0, 1, C64::new(2.0, -1.0));
        big.stamp(0, 2, C64::real(0.5));
        big.stamp(1, 0, C64::new(1e-3, 4.0));
        big.stamp(1, 1, C64::imag(-2.0));
        big.stamp(2, 0, C64::real(3.0));
        big.stamp(2, 2, C64::new(-1.0, 1.0));
        let bb = vec![C64::new(1.0, 2.0), C64::real(-3.0), C64::imag(0.25)];
        let mut small = CMatrix::zeros(1);
        small.stamp(0, 0, C64::new(0.0, 2.0));
        let sb = vec![C64::real(4.0)];

        let mut scratch = SolveScratch::new();
        let mut x = Vec::new();
        for _ in 0..2 {
            big.solve_with(&bb, &mut scratch, &mut x).unwrap();
            let fresh = big.solve(&bb).unwrap();
            for (u, v) in x.iter().zip(&fresh) {
                assert_eq!(u.re, v.re);
                assert_eq!(u.im, v.im);
            }
            small.solve_with(&sb, &mut scratch, &mut x).unwrap();
            let fresh = small.solve(&sb).unwrap();
            assert_eq!(x[0].re, fresh[0].re);
            assert_eq!(x[0].im, fresh[0].im);
        }
    }

    #[test]
    fn resize_zeroed_clears_previous_contents() {
        let mut m = CMatrix::zeros(2);
        m.stamp(1, 1, C64::new(7.0, -7.0));
        m.resize_zeroed(3);
        assert_eq!(m.dim(), 3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j).abs(), 0.0);
            }
        }
    }

    #[test]
    fn singular_is_reported() {
        let m = CMatrix::zeros(2);
        assert!(matches!(
            m.solve(&[C64::ONE, C64::ONE]),
            Err(AnalogError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn length_mismatch_rejected() {
        let m = CMatrix::zeros(2);
        assert!(m.solve(&[C64::ONE]).is_err());
    }
}
