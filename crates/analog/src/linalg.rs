//! Dense linear algebra for modified nodal analysis.
//!
//! The circuits in this workspace are small (tens of nodes), so a dense LU
//! factorization with partial pivoting is simple, robust, and more than fast
//! enough. Implemented from scratch — the workspace carries no external
//! numerics dependency.

use crate::AnalogError;

/// A dense row-major matrix of `f64`.
///
/// ```
/// use si_analog::linalg::Matrix;
///
/// # fn main() -> Result<(), si_analog::AnalogError> {
/// let mut a = Matrix::zeros(2, 2);
/// a[(0, 0)] = 2.0;
/// a[(1, 1)] = 4.0;
/// let x = a.solve(&[6.0, 8.0])?;
/// assert_eq!(x, vec![3.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zero `rows × cols` matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged row {i}");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets every entry back to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Reshapes to `rows × cols` with every entry zero, reusing the existing
    /// allocation when it is large enough.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Adds `value` to entry `(i, j)` — the MNA "stamp" primitive.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn stamp(&mut self, i: usize, j: usize, value: f64) {
        self[(i, j)] += value;
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] on a dimension mismatch.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, AnalogError> {
        if x.len() != self.cols {
            return Err(AnalogError::InvalidParameter {
                name: "x",
                constraint: "vector length must equal matrix column count",
            });
        }
        Ok((0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * x[j]).sum())
            .collect())
    }

    /// Solves `A·x = b` by LU with partial pivoting, without destroying
    /// `self`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::SingularMatrix`] if a pivot underflows, or
    /// [`AnalogError::InvalidParameter`] on a dimension mismatch.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, AnalogError> {
        let lu = Lu::factor(self.clone())?;
        lu.solve(b)
    }

    /// Overwrites `self` with its LU factorization (partial pivoting) and
    /// records the row permutation in `perm`, allocating nothing when
    /// `perm`'s capacity suffices. After success, `self` holds `L` (unit
    /// diagonal, below) and `U` (on and above the diagonal), exactly as
    /// [`Lu`] stores them.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::SingularMatrix`] when no usable pivot exists,
    /// or [`AnalogError::InvalidParameter`] if the matrix is not square.
    pub fn factor_in_place(&mut self, perm: &mut Vec<usize>) -> Result<(), AnalogError> {
        if self.rows != self.cols {
            return Err(AnalogError::InvalidParameter {
                name: "a",
                constraint: "matrix must be square",
            });
        }
        let n = self.rows;
        perm.clear();
        perm.extend(0..n);
        for k in 0..n {
            // Partial pivot: find the largest |a[i][k]| for i >= k.
            let mut pivot_row = k;
            let mut pivot_mag = self[(k, k)].abs();
            for i in (k + 1)..n {
                let mag = self[(i, k)].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = i;
                }
            }
            if pivot_mag < Lu::PIVOT_EPS || !pivot_mag.is_finite() {
                return Err(AnalogError::SingularMatrix { row: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = self[(k, j)];
                    self[(k, j)] = self[(pivot_row, j)];
                    self[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
            }
            let pivot = self[(k, k)];
            for i in (k + 1)..n {
                let factor = self[(i, k)] / pivot;
                self[(i, k)] = factor;
                for j in (k + 1)..n {
                    let akj = self[(k, j)];
                    self[(i, j)] -= factor * akj;
                }
            }
        }
        Ok(())
    }

    /// Solves `A·x = b` into `x`, treating `self` as the LU factors produced
    /// by [`Matrix::factor_in_place`] with permutation `perm`. Allocates
    /// nothing when `x`'s capacity suffices.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] on a dimension mismatch.
    pub fn lu_solve_into(
        &self,
        perm: &[usize],
        b: &[f64],
        x: &mut Vec<f64>,
    ) -> Result<(), AnalogError> {
        let n = self.rows;
        if b.len() != n || perm.len() != n {
            return Err(AnalogError::InvalidParameter {
                name: "b",
                constraint: "vector length must equal matrix dimension",
            });
        }
        // Apply permutation, then forward substitution (L has unit diagonal).
        x.clear();
        x.extend(perm.iter().map(|&p| b[p]));
        for i in 1..n {
            for j in 0..i {
                x[i] -= self[(i, j)] * x[j];
            }
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                x[i] -= self[(i, j)] * x[j];
            }
            x[i] /= self[(i, i)];
        }
        Ok(())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &mut self.data[i * self.cols + j]
    }
}

/// An LU factorization `P·A = L·U` of a square matrix.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    perm: Vec<usize>,
}

impl Lu {
    /// Pivot magnitudes below this are treated as singular.
    const PIVOT_EPS: f64 = 1e-300;

    /// Factors `a` in place (consuming it).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::SingularMatrix`] when no usable pivot exists,
    /// or [`AnalogError::InvalidParameter`] if `a` is not square.
    pub fn factor(mut a: Matrix) -> Result<Self, AnalogError> {
        let mut perm = Vec::new();
        a.factor_in_place(&mut perm)?;
        Ok(Lu { lu: a, perm })
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] on a dimension mismatch.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, AnalogError> {
        let mut x = Vec::with_capacity(self.lu.rows);
        self.lu.lu_solve_into(&self.perm, b, &mut x)?;
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(a.solve(&b).unwrap(), b);
    }

    #[test]
    fn solves_small_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(AnalogError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::factor(a),
            Err(AnalogError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let a = Matrix::identity(3);
        assert!(a.solve(&[1.0, 2.0]).is_err());
        assert!(a.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn residual_is_small_for_random_system() {
        // Deterministic pseudo-random fill.
        let n = 20;
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 4.0; // diagonally dominant, well-conditioned
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = a.solve(&b).unwrap();
        let r = a.mul_vec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn reusing_factorization_matches_fresh_solve() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let lu = Lu::factor(a.clone()).unwrap();
        for b in [[1.0, 0.0, 0.0], [0.0, 5.0, -2.0]] {
            let x1 = lu.solve(&b).unwrap();
            let x2 = a.solve(&b).unwrap();
            for (u, v) in x1.iter().zip(&x2) {
                assert!((u - v).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn in_place_factorization_is_bit_identical_to_consuming_path() {
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -3.0, 1.0], &[4.0, 1.0, 2.0]]);
        let lu = Lu::factor(a.clone()).unwrap();
        let mut in_place = a.clone();
        let mut perm = Vec::new();
        in_place.factor_in_place(&mut perm).unwrap();
        assert_eq!(in_place, lu.lu);
        assert_eq!(perm, lu.perm);
        let b = [1.0, -2.0, 0.5];
        let mut x = Vec::new();
        in_place.lu_solve_into(&perm, &b, &mut x).unwrap();
        let reference = lu.solve(&b).unwrap();
        assert!(x.iter().zip(&reference).all(|(u, v)| u == v));
    }

    #[test]
    fn resize_zeroed_reuses_and_clears() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.resize_zeroed(3, 3);
        assert_eq!((m.rows(), m.cols()), (3, 3));
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn stamp_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.stamp(0, 0, 1.5);
        m.stamp(0, 0, 2.5);
        assert_eq!(m[(0, 0)], 4.0);
        m.clear();
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[1.0]]);
    }
}
