//! Netlist builders for the paper's circuits.
//!
//! * [`ClassACellDesign`] — the second-generation class-A SI memory cell
//!   (diode-connected memory transistor during φ1), the baseline the paper's
//!   class-AB cell improves on,
//! * [`ClassAbCellDesign`] — the Fig. 1 class-AB half-cell: complementary
//!   memory pair MN/MP whose gates are driven through a grounded-gate
//!   amplifier (TG with bias TP and cascoded sink TC/TN). The GGA's voltage
//!   gain multiplies the cell's input conductance, creating the paper's
//!   "virtual ground",
//! * [`CmffDesign`] — the Fig. 2 common-mode feedforward network: half-size
//!   mirror copies of the differential outputs are summed to extract the
//!   common-mode current, which same-size PMOS mirrors then subtract from
//!   both outputs.
//!
//! Each builder returns the circuit plus the named nodes/probes an
//! experiment needs, and an initial guess that puts the DC solver inside the
//! intended operating region.
//!
//! The fully differential Fig. 1 cell is two of these half-cells on
//! anti-phase inputs; the behavioral library (`si-core`) models the
//! differential pair directly, while the transistor level here validates
//! the per-branch physics the behavioral model parameterizes.

use crate::device::mos::MosParams;
use crate::device::switch::{ClockPhase, Switch};
use crate::netlist::{Circuit, MosTerminals, NodeId};
use crate::units::{Amps, Farads, Ohms, Volts};
use crate::AnalogError;

/// Shared result of a cell build: the circuit plus labelled access points.
#[derive(Debug, Clone)]
pub struct CellNetlist {
    /// The assembled circuit.
    pub circuit: Circuit,
    /// The current input/output node of the cell.
    pub input: NodeId,
    /// The memory-gate node (NMOS side for the class-AB cell).
    pub gate: NodeId,
    /// Name of the input current source (update it to drive the cell).
    pub input_source: String,
    /// Name of the output ammeter (read the held/output current here).
    pub output_ammeter: String,
    /// Initial node-voltage guess for the DC solver.
    pub initial_guess: Vec<f64>,
}

/// Design parameters of the class-A (second-generation) SI memory cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassACellDesign {
    /// Supply voltage.
    pub vdd: Volts,
    /// Bias current through the memory transistor at zero signal.
    pub bias: Amps,
    /// Memory transistor overdrive at the bias current.
    pub vov_memory: Volts,
    /// Explicit gate hold capacitance (models Cgs).
    pub hold_cap: Farads,
    /// Output-side virtual-ground potential of the following stage.
    pub output_bias: Volts,
}

impl Default for ClassACellDesign {
    fn default() -> Self {
        ClassACellDesign {
            vdd: Volts(3.3),
            bias: Amps(20e-6),
            vov_memory: Volts(0.25),
            hold_cap: Farads(0.5e-12),
            output_bias: Volts(1.2),
        }
    }
}

impl ClassACellDesign {
    /// Builds the cell:
    ///
    /// ```text
    ///  Vdd ──(Ibias)──┬── x ──φ2──[A]── Vout_bias
    ///   input ──φ1────┤
    ///                 ├──φ1── g ──╢ hold cap
    ///                MN (drain x, gate g, source gnd)
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for non-positive bias or
    /// overdrive, or netlist errors.
    pub fn build(&self) -> Result<CellNetlist, AnalogError> {
        if !(self.bias.0 > 0.0) || !(self.vov_memory.0 > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "design",
                constraint: "bias current and overdrive must be positive",
            });
        }
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let x = c.node("x");
        let g = c.node("g");
        let xin = c.node("xin");
        let out = c.node("out");

        c.voltage_source("Vdd", vdd, Circuit::GROUND, self.vdd)?;
        // Bias current from the supply into the memory node.
        c.current_source("Ibias", vdd, x, self.bias)?;
        // Input current source drives xin; φ1 steers it onto the cell and
        // φ2 dumps it into a bias branch (as the differential twin would),
        // so the source never drives a floating node. A small parasitic
        // capacitance rides xin through the non-overlap dead time.
        c.current_source("Iin", Circuit::GROUND, xin, Amps(0.0))?;
        c.switch("Sin", xin, x, Switch::on_phase(ClockPhase::Phi1))?;
        let dump = c.node("dump");
        c.voltage_source(
            "Vdump",
            dump,
            Circuit::GROUND,
            Volts(0.8 + self.vov_memory.0),
        )?;
        c.switch("Sdump", xin, dump, Switch::on_phase(ClockPhase::Phi2))?;
        c.capacitor("Cpar_in", xin, Circuit::GROUND, Farads(0.2e-12))?;
        c.resistor("Rbleed", xin, Circuit::GROUND, Ohms(1e9))?;
        // Memory transistor sized for the requested overdrive at bias.
        let wl = 2.0 * self.bias.0 / (100e-6 * self.vov_memory.0 * self.vov_memory.0);
        let mn = MosParams::nmos_08um(wl * 2.0, 2.0);
        c.mosfet(
            "MN",
            MosTerminals {
                drain: x,
                gate: g,
                source: Circuit::GROUND,
                bulk: Circuit::GROUND,
            },
            mn,
        )?;
        // Diode connection during φ1; hold capacitance on the gate.
        c.switch("Smem", x, g, Switch::on_phase(ClockPhase::Phi1))?;
        c.capacitor("Chold", g, Circuit::GROUND, self.hold_cap)?;
        // Output path: φ2 into the next stage's virtual ground (an
        // ammeter into a bias voltage).
        c.switch("Sout", x, out, Switch::on_phase(ClockPhase::Phi2))?;
        let sink = c.node("sink");
        c.ammeter("Aout", out, sink)?;
        c.voltage_source("Vb_out", sink, Circuit::GROUND, self.output_bias)?;
        c.resistor("Rbleed_out", out, Circuit::GROUND, Ohms(1e9))?;

        let vgs0 = 0.8 + self.vov_memory.0;
        let mut guess = vec![0.0; c.node_count()];
        guess[vdd.index()] = self.vdd.0;
        guess[x.index()] = vgs0;
        guess[g.index()] = vgs0;
        guess[xin.index()] = vgs0;
        guess[c.node("dump").index()] = vgs0;
        guess[out.index()] = self.output_bias.0;
        guess[sink.index()] = self.output_bias.0;

        Ok(CellNetlist {
            circuit: c,
            input: x,
            gate: g,
            input_source: "Iin".to_string(),
            output_ammeter: "Aout".to_string(),
            initial_guess: guess,
        })
    }
}

/// Design parameters of the Fig. 1 class-AB half-cell with grounded-gate
/// amplifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassAbCellDesign {
    /// Supply voltage.
    pub vdd: Volts,
    /// Quiescent current of each memory transistor.
    pub iq: Amps,
    /// GGA bias current (through TP, TG and the TC/TN sink).
    pub j_bias: Amps,
    /// Memory transistor overdrive at the quiescent current.
    pub vov_memory: Volts,
    /// Overdrive of the bias devices TP/TG/TC/TN.
    pub vov_bias: Volts,
    /// Nominal voltage of the cell input node (the virtual ground level).
    pub v_input: Volts,
    /// Explicit gate hold capacitance per memory gate.
    pub hold_cap: Farads,
    /// Output-side virtual-ground potential.
    pub output_bias: Volts,
}

impl Default for ClassAbCellDesign {
    fn default() -> Self {
        ClassAbCellDesign {
            vdd: Volts(3.3),
            iq: Amps(10e-6),
            j_bias: Amps(20e-6),
            vov_memory: Volts(0.25),
            vov_bias: Volts(0.2),
            // The GGA output node must sit at VT + Vov_mem ≈ 1.05 V (the
            // memory gate); the input node needs to be a few hundred mV
            // below it so the grounded-gate transistor TG keeps saturation
            // headroom (vds_TG = v(y) − v(x)).
            v_input: Volts(0.65),
            hold_cap: Farads(0.5e-12),
            output_bias: Volts(0.65),
        }
    }
}

/// The class-AB cell netlist with its extra probe points.
#[derive(Debug, Clone)]
pub struct ClassAbCell {
    /// Common access points (input node, NMOS gate, sources, ammeter).
    pub cell: CellNetlist,
    /// The GGA output node driving the NMOS memory gate.
    pub gga_out: NodeId,
    /// The PMOS memory gate node.
    pub gate_p: NodeId,
    /// The design this was built from.
    pub design: ClassAbCellDesign,
}

impl ClassAbCellDesign {
    fn nmos_for(&self, i: Amps, vov: Volts) -> MosParams {
        let wl = 2.0 * i.0 / (100e-6 * vov.0 * vov.0);
        MosParams::nmos_08um(wl * 2.0, 2.0)
    }

    fn pmos_for(&self, i: Amps, vov: Volts) -> MosParams {
        let wl = 2.0 * i.0 / (35e-6 * vov.0 * vov.0);
        MosParams::pmos_08um(wl * 2.0, 2.0)
    }

    /// Builds the half-cell:
    ///
    /// ```text
    ///  Vdd ──TP(J)── y ──φ1── gn ── gate of MN        (GGA output)
    ///           TG: gate Vb, drain y, source x
    ///  x: cell input; MN drain x / MP drain x
    ///  MP gate gp = level-shifted copy of gn
    ///  x ── TC/TN cascode sink (J) ── gnd
    /// ```
    ///
    /// The level shift between the two memory gates (realized with floating
    /// bias arrangements on the die) is modeled by an ideal battery whose
    /// value puts both memory devices at `iq` when the loop settles.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for non-positive currents
    /// or overdrives, or netlist errors.
    pub fn build(&self) -> Result<ClassAbCell, AnalogError> {
        if !(self.iq.0 > 0.0) || !(self.j_bias.0 > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "design",
                constraint: "quiescent and bias currents must be positive",
            });
        }
        if !(self.vov_memory.0 > 0.0) || !(self.vov_bias.0 > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "design",
                constraint: "overdrives must be positive",
            });
        }
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let x = c.node("x");
        let y = c.node("y");
        let gn = c.node("gn");
        let gp = c.node("gp");
        let xin = c.node("xin");
        let out = c.node("out");

        c.voltage_source("Vdd", vdd, Circuit::GROUND, self.vdd)?;

        // --- Grounded-gate amplifier -----------------------------------
        // TP: PMOS current source pushing J into y. Modeled as a gate-biased
        // PMOS (saturation current source).
        let tp = self.pmos_for(self.j_bias, self.vov_bias);
        let vb_tp = c.node("vb_tp");
        c.voltage_source(
            "Vb_tp",
            vb_tp,
            Circuit::GROUND,
            Volts(self.vdd.0 - (tp.vt0.0.abs() + self.vov_bias.0)),
        )?;
        c.mosfet(
            "TP",
            MosTerminals {
                drain: y,
                gate: vb_tp,
                source: vdd,
                bulk: vdd,
            },
            tp,
        )?;
        // TG: grounded-gate (common-gate) NMOS, source at the input node.
        let tg = self.nmos_for(self.j_bias, self.vov_bias);
        let vb_tg = c.node("vb_tg");
        // Gate bias sets the input node's quiescent level:
        // v(x) = Vb_tg − VT(body) − Vov (source follows the gate). TG's
        // bulk is grounded while its source sits at v_input, so include the
        // body-effect threshold shift.
        let vt_tg_eff = tg.vt0.0 + tg.gamma * ((tg.phi + self.v_input.0).sqrt() - tg.phi.sqrt());
        c.voltage_source(
            "Vb_tg",
            vb_tg,
            Circuit::GROUND,
            Volts(self.v_input.0 + vt_tg_eff + self.vov_bias.0),
        )?;
        c.mosfet(
            "TG",
            MosTerminals {
                drain: y,
                gate: vb_tg,
                source: x,
                bulk: Circuit::GROUND,
            },
            tg,
        )?;
        // TC/TN cascoded sink pulling J out of x.
        let tn = self.nmos_for(self.j_bias, self.vov_bias);
        let mid = c.node("mid");
        let vb_tc = c.node("vb_tc");
        let vb_tn = c.node("vb_tn");
        c.voltage_source(
            "Vb_tn",
            vb_tn,
            Circuit::GROUND,
            Volts(tn.vt0.0 + self.vov_bias.0),
        )?;
        c.voltage_source(
            "Vb_tc",
            vb_tc,
            Circuit::GROUND,
            Volts(tn.vt0.0 + 2.0 * self.vov_bias.0 + 0.3),
        )?;
        c.mosfet(
            "TN",
            MosTerminals {
                drain: mid,
                gate: vb_tn,
                source: Circuit::GROUND,
                bulk: Circuit::GROUND,
            },
            tn,
        )?;
        c.mosfet(
            "TC",
            MosTerminals {
                drain: x,
                gate: vb_tc,
                source: mid,
                bulk: Circuit::GROUND,
            },
            tn,
        )?;

        // --- Memory pair -------------------------------------------------
        let mn = self.nmos_for(self.iq, self.vov_memory);
        let mp = self.pmos_for(self.iq, self.vov_memory);
        c.mosfet(
            "MN",
            MosTerminals {
                drain: x,
                gate: gn,
                source: Circuit::GROUND,
                bulk: Circuit::GROUND,
            },
            mn,
        )?;
        c.mosfet(
            "MP",
            MosTerminals {
                drain: x,
                gate: gp,
                source: vdd,
                bulk: vdd,
            },
            mp,
        )?;
        // Memory switches on φ1 and hold capacitors on both gates.
        c.switch("Smem_n", y, gn, Switch::on_phase(ClockPhase::Phi1))?;
        c.capacitor("Chold_n", gn, Circuit::GROUND, self.hold_cap)?;
        // The PMOS gate is the NMOS gate shifted so both devices sit at iq:
        //   Vy0 = VTn + Vov_m;  Vgp0 = Vdd − |VTp| − Vov_mp.
        let vy0 = mn.vt0.0 + self.vov_memory.0;
        let vgp0 = self.vdd.0 - (mp.vt0.0.abs() + self.vov_memory.0);
        let shift = vgp0 - vy0;
        let ys = c.node("ys");
        c.voltage_source("Vshift", ys, y, Volts(shift))?;
        c.switch("Smem_p", ys, gp, Switch::on_phase(ClockPhase::Phi1))?;
        c.capacitor("Chold_p", gp, Circuit::GROUND, self.hold_cap)?;

        // --- Signal steering ----------------------------------------------
        // φ1 steers the input current onto the cell; φ2 dumps it into a
        // bias branch at the virtual-ground level (the differential twin's
        // role), and a small parasitic capacitance carries xin through the
        // non-overlap dead time.
        c.current_source("Iin", Circuit::GROUND, xin, Amps(0.0))?;
        c.switch("Sin", xin, x, Switch::on_phase(ClockPhase::Phi1))?;
        let dump = c.node("dump");
        c.voltage_source("Vdump", dump, Circuit::GROUND, self.v_input)?;
        c.switch("Sdump", xin, dump, Switch::on_phase(ClockPhase::Phi2))?;
        c.capacitor("Cpar_in", xin, Circuit::GROUND, Farads(0.2e-12))?;
        c.resistor("Rbleed", xin, Circuit::GROUND, Ohms(1e9))?;
        c.switch("Sout", x, out, Switch::on_phase(ClockPhase::Phi2))?;
        let sink = c.node("sink");
        c.ammeter("Aout", out, sink)?;
        c.voltage_source("Vb_out", sink, Circuit::GROUND, self.output_bias)?;
        c.resistor("Rbleed_out", out, Circuit::GROUND, Ohms(1e9))?;

        let mut guess = vec![0.0; c.node_count()];
        guess[vdd.index()] = self.vdd.0;
        guess[x.index()] = self.v_input.0;
        guess[y.index()] = vy0;
        guess[gn.index()] = vy0;
        guess[gp.index()] = vgp0;
        guess[ys.index()] = vgp0;
        guess[mid.index()] = self.vov_bias.0 + 0.1;
        guess[xin.index()] = self.v_input.0;
        guess[c.node("dump").index()] = self.v_input.0;
        guess[out.index()] = self.output_bias.0;
        guess[sink.index()] = self.output_bias.0;
        guess[vb_tp.index()] = self.vdd.0 - (tp.vt0.0.abs() + self.vov_bias.0);
        guess[vb_tg.index()] = self.v_input.0 + vt_tg_eff + self.vov_bias.0;
        guess[vb_tn.index()] = tn.vt0.0 + self.vov_bias.0;
        guess[vb_tc.index()] = tn.vt0.0 + 2.0 * self.vov_bias.0 + 0.3;

        Ok(ClassAbCell {
            cell: CellNetlist {
                circuit: c,
                input: x,
                gate: gn,
                input_source: "Iin".to_string(),
                output_ammeter: "Aout".to_string(),
                initial_guess: guess,
            },
            gga_out: y,
            gate_p: gp,
            design: *self,
        })
    }
}

/// Design parameters of the Fig. 2 CMFF mirror network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmffDesign {
    /// Supply voltage.
    pub vdd: Volts,
    /// Output-stage bias current `I` of the driving block.
    pub bias: Amps,
    /// Device overdrive for all mirrors.
    pub vov: Volts,
    /// Virtual-ground potential of the following stage inputs.
    pub v_next: Volts,
}

impl Default for CmffDesign {
    fn default() -> Self {
        CmffDesign {
            vdd: Volts(3.3),
            bias: Amps(20e-6),
            vov: Volts(0.25),
            v_next: Volts(1.2),
        }
    }
}

/// The built CMFF network with its probes.
#[derive(Debug, Clone)]
pub struct CmffNetwork {
    /// The assembled circuit.
    pub circuit: Circuit,
    /// Name of the positive-side drive source (carries `I + id + icm`).
    pub drive_pos: String,
    /// Name of the negative-side drive source (carries `I − id + icm`).
    pub drive_neg: String,
    /// Ammeter on the positive output into the next stage.
    pub meter_pos: String,
    /// Ammeter on the negative output into the next stage.
    pub meter_neg: String,
    /// Initial node-voltage guess for the DC solver.
    pub initial_guess: Vec<f64>,
    /// The design this was built from.
    pub design: CmffDesign,
}

impl CmffDesign {
    /// Builds the Fig. 2 network.
    ///
    /// The driving block's output stage (Fig. 2a) is modeled by
    /// diode-connected reference devices `Dp`/`Dn` carrying the programmed
    /// currents and matched output devices `Tn0`/`Tn1` sinking them from the
    /// output wires. Half-size copies `Tn2`/`Tn3` reproduce half of each
    /// output current into a summing node, where a diode-connected `Tp0`
    /// picks up the total `I + icm`; `Tp1`/`Tp2` mirror it back onto the
    /// outputs while fixed sinks remove the bias `I`, leaving the
    /// common-mode term cancelled and the differential term untouched.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for non-positive bias or
    /// overdrive, or netlist errors.
    pub fn build(&self) -> Result<CmffNetwork, AnalogError> {
        if !(self.bias.0 > 0.0) || !(self.vov.0 > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "design",
                constraint: "bias current and overdrive must be positive",
            });
        }
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        c.voltage_source("Vdd", vdd, Circuit::GROUND, self.vdd)?;

        let wl_n = 2.0 * self.bias.0 / (100e-6 * self.vov.0 * self.vov.0);
        let n_full = MosParams::nmos_08um(wl_n * 2.0, 2.0);
        let n_half = MosParams::nmos_08um(wl_n, 2.0);
        let wl_p = 2.0 * self.bias.0 / (35e-6 * self.vov.0 * self.vov.0);
        let p_full = MosParams::pmos_08um(wl_p * 2.0, 2.0);

        // Reference diodes programmed by the drive sources.
        let g_pos = c.node("g_pos");
        let g_neg = c.node("g_neg");
        c.current_source("Idrive_pos", Circuit::GROUND, g_pos, self.bias)?;
        c.current_source("Idrive_neg", Circuit::GROUND, g_neg, self.bias)?;
        for (name, g) in [("Dpos", g_pos), ("Dneg", g_neg)] {
            c.mosfet(
                name,
                MosTerminals {
                    drain: g,
                    gate: g,
                    source: Circuit::GROUND,
                    bulk: Circuit::GROUND,
                },
                n_full,
            )?;
        }

        // Output devices Tn0/Tn1 sink the mirrored currents from the wires.
        let out_pos = c.node("out_pos");
        let out_neg = c.node("out_neg");
        c.mosfet(
            "Tn0",
            MosTerminals {
                drain: out_pos,
                gate: g_pos,
                source: Circuit::GROUND,
                bulk: Circuit::GROUND,
            },
            n_full,
        )?;
        c.mosfet(
            "Tn1",
            MosTerminals {
                drain: out_neg,
                gate: g_neg,
                source: Circuit::GROUND,
                bulk: Circuit::GROUND,
            },
            n_full,
        )?;

        // Half-size duplicates into the summing node.
        let sum = c.node("sum");
        c.mosfet(
            "Tn2",
            MosTerminals {
                drain: sum,
                gate: g_pos,
                source: Circuit::GROUND,
                bulk: Circuit::GROUND,
            },
            n_half,
        )?;
        c.mosfet(
            "Tn3",
            MosTerminals {
                drain: sum,
                gate: g_neg,
                source: Circuit::GROUND,
                bulk: Circuit::GROUND,
            },
            n_half,
        )?;

        // Tp0 diode sources the sum; Tp1/Tp2 mirror it onto the outputs.
        c.mosfet(
            "Tp0",
            MosTerminals {
                drain: sum,
                gate: sum,
                source: vdd,
                bulk: vdd,
            },
            p_full,
        )?;
        c.mosfet(
            "Tp1",
            MosTerminals {
                drain: out_pos,
                gate: sum,
                source: vdd,
                bulk: vdd,
            },
            p_full,
        )?;
        c.mosfet(
            "Tp2",
            MosTerminals {
                drain: out_neg,
                gate: sum,
                source: vdd,
                bulk: vdd,
            },
            p_full,
        )?;
        // Fixed sinks remove the bias component the PMOS mirrors re-inject.
        c.current_source("Isink_pos", out_pos, Circuit::GROUND, self.bias)?;
        c.current_source("Isink_neg", out_neg, Circuit::GROUND, self.bias)?;

        // Next-stage virtual grounds with ammeters.
        let vg_pos = c.node("vg_pos");
        let vg_neg = c.node("vg_neg");
        c.ammeter("Apos", out_pos, vg_pos)?;
        c.ammeter("Aneg", out_neg, vg_neg)?;
        c.voltage_source("Vnext_pos", vg_pos, Circuit::GROUND, self.v_next)?;
        c.voltage_source("Vnext_neg", vg_neg, Circuit::GROUND, self.v_next)?;

        let vgs0 = 0.8 + self.vov.0;
        let vsum0 = self.vdd.0 - (0.9 + self.vov.0);
        let mut guess = vec![0.0; c.node_count()];
        guess[vdd.index()] = self.vdd.0;
        guess[g_pos.index()] = vgs0;
        guess[g_neg.index()] = vgs0;
        guess[sum.index()] = vsum0;
        guess[out_pos.index()] = self.v_next.0;
        guess[out_neg.index()] = self.v_next.0;
        guess[vg_pos.index()] = self.v_next.0;
        guess[vg_neg.index()] = self.v_next.0;

        Ok(CmffNetwork {
            circuit: c,
            drive_pos: "Idrive_pos".to_string(),
            drive_neg: "Idrive_neg".to_string(),
            meter_pos: "Apos".to_string(),
            meter_neg: "Aneg".to_string(),
            initial_guess: guess,
            design: *self,
        })
    }
}

impl CmffNetwork {
    /// Programs the two drive currents: the positive side carries
    /// `I + id + icm`, the negative side `I − id + icm`.
    ///
    /// # Errors
    ///
    /// Propagates netlist update errors.
    pub fn drive(&mut self, id: Amps, icm: Amps) -> Result<(), AnalogError> {
        let i = self.design.bias;
        crate::dc::set_current_source(
            &mut self.circuit,
            &self.drive_pos,
            Amps(i.0 + id.0 + icm.0),
        )?;
        crate::dc::set_current_source(
            &mut self.circuit,
            &self.drive_neg,
            Amps(i.0 - id.0 + icm.0),
        )?;
        Ok(())
    }

    /// Solves the network and returns `(i_pos, i_neg)` drawn from the next
    /// stage (positive = current flowing from the next stage into this
    /// block, i.e. the block sinks it).
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn output_currents(&self) -> Result<(Amps, Amps), AnalogError> {
        let sol = crate::dc::DcSolver::new()
            .with_initial_guess(self.initial_guess.clone())
            .solve(&self.circuit)?;
        let ip = sol.branch_current(self.circuit.branch_of(&self.meter_pos)?);
        let in_ = sol.branch_current(self.circuit.branch_of(&self.meter_neg)?);
        // Ammeter measures current flowing out_pos → vg_pos; the block
        // sinking current from the next stage makes this negative. Flip so
        // "current drawn from next stage" is positive.
        Ok((Amps(-ip.0), Amps(-in_.0)))
    }

    /// The common-mode current seen by the next stage, bias removed.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn residual_common_mode(&self) -> Result<Amps, AnalogError> {
        let (ip, in_) = self.output_currents()?;
        Ok(Amps(0.5 * (ip.0 + in_.0) - self.design.bias.0))
    }

    /// The differential current seen by the next stage,
    /// `(i_pos − i_neg) / 2`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn differential_output(&self) -> Result<Amps, AnalogError> {
        let (ip, in_) = self.output_currents()?;
        Ok(Amps(0.5 * (ip.0 - in_.0)))
    }
}

/// Design parameters of an N-stage switched-current delay line: a cascade
/// of diode-connected class-A memory stages coupled by alternating φ1/φ2
/// switches. This is the paper's delay-line/FIR application scaled to an
/// arbitrary stage count — and, at tens to hundreds of stages, the circuit
/// family whose MNA matrix is large and tridiagonal-sparse, exercising the
/// sparse structure-caching solver backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayLineDesign {
    /// Number of memory stages (≥ 1). The MNA dimension equals this (one
    /// node per stage, no voltage sources).
    pub stages: usize,
    /// Per-stage bias current into the diode-connected memory transistor.
    pub bias: Amps,
    /// Memory transistor overdrive at the bias current.
    pub vov: Volts,
    /// Per-stage gate hold capacitance.
    pub hold_cap: Farads,
}

impl Default for DelayLineDesign {
    fn default() -> Self {
        DelayLineDesign {
            stages: 48,
            bias: Amps(20e-6),
            vov: Volts(0.25),
            hold_cap: Farads(0.5e-12),
        }
    }
}

/// A built delay line: the circuit plus its labelled access points.
#[derive(Debug, Clone)]
pub struct DelayLine {
    /// The assembled circuit.
    pub circuit: Circuit,
    /// The input node (stage 0's memory node).
    pub input: NodeId,
    /// The memory node of every stage, in order.
    pub stage_nodes: Vec<NodeId>,
    /// Name of the input current source.
    pub input_source: String,
    /// Initial node-voltage guess for the DC solver.
    pub initial_guess: Vec<f64>,
}

impl DelayLineDesign {
    /// Builds the delay line:
    ///
    /// ```text
    ///  Iin ──┬─ n0 ─φ2─ n1 ─φ1─ n2 ─φ2─ … ─ n(N−1)
    ///  Ib0 ──┤         each nk: diode-connected NMOS to ground
    ///        MN0 ╢ C0  + hold cap + per-stage bias current
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for zero stages or
    /// non-positive bias/overdrive, or netlist errors.
    pub fn build(&self) -> Result<DelayLine, AnalogError> {
        if self.stages == 0 {
            return Err(AnalogError::InvalidParameter {
                name: "stages",
                constraint: "a delay line needs at least one stage",
            });
        }
        if !(self.bias.0 > 0.0) || !(self.vov.0 > 0.0) {
            return Err(AnalogError::InvalidParameter {
                name: "design",
                constraint: "bias current and overdrive must be positive",
            });
        }
        let mut c = Circuit::new();
        let wl = 2.0 * self.bias.0 / (100e-6 * self.vov.0 * self.vov.0);
        let params = MosParams::nmos_08um(wl, 2.0);
        let mut nodes = Vec::with_capacity(self.stages);
        for k in 0..self.stages {
            let n = c.node(&format!("n{k}"));
            c.mosfet(
                &format!("MN{k}"),
                MosTerminals {
                    drain: n,
                    gate: n,
                    source: Circuit::GROUND,
                    bulk: Circuit::GROUND,
                },
                params,
            )?;
            c.capacitor(&format!("C{k}"), n, Circuit::GROUND, self.hold_cap)?;
            c.current_source(&format!("Ib{k}"), Circuit::GROUND, n, self.bias)?;
            if let Some(&prev) = nodes.last() {
                // Alternating coupling phases: the held sample of one
                // stage drives the next on the opposite clock phase.
                let phase = if k % 2 == 1 {
                    ClockPhase::Phi2
                } else {
                    ClockPhase::Phi1
                };
                c.switch(&format!("S{k}"), prev, n, Switch::on_phase(phase))?;
            }
            nodes.push(n);
        }
        c.current_source("Iin", Circuit::GROUND, nodes[0], Amps(0.0))?;

        let vgs0 = 0.8 + self.vov.0;
        let mut guess = vec![0.0; c.node_count()];
        for &n in &nodes {
            guess[n.index()] = vgs0;
        }

        Ok(DelayLine {
            circuit: c,
            input: nodes[0],
            stage_nodes: nodes,
            input_source: "Iin".to_string(),
            initial_guess: guess,
        })
    }
}

/// An N-stage [`DelayLineDesign`] with default electrical parameters — the
/// standard large-sparse-circuit generator used by the solver-backend
/// tests and benchmarks.
///
/// # Errors
///
/// Same as [`DelayLineDesign::build`].
pub fn si_cell_chain(stages: usize) -> Result<DelayLine, AnalogError> {
    DelayLineDesign {
        stages,
        ..DelayLineDesign::default()
    }
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::DcSolver;

    #[test]
    fn class_a_cell_builds_and_biases() {
        let cell = ClassACellDesign::default().build().unwrap();
        let sol = DcSolver::new()
            .with_initial_guess(cell.initial_guess.clone())
            .solve(&cell.circuit)
            .unwrap();
        // Diode-connected memory transistor settles near VT + Vov.
        let v = sol.voltage(cell.input).0;
        assert!((0.8..1.4).contains(&v), "memory node at {v} V");
    }

    #[test]
    fn class_a_rejects_bad_design() {
        let d = ClassACellDesign {
            bias: Amps(0.0),
            ..ClassACellDesign::default()
        };
        assert!(d.build().is_err());
    }

    #[test]
    fn class_ab_cell_builds_and_biases() {
        let cell = ClassAbCellDesign::default().build().unwrap();
        let sol = DcSolver::new()
            .with_initial_guess(cell.cell.initial_guess.clone())
            .solve(&cell.cell.circuit)
            .unwrap();
        let vx = sol.voltage(cell.cell.input).0;
        // The GGA regulates the input node near the designed level.
        assert!(
            (vx - 0.65).abs() < 0.2,
            "input node at {vx} V, designed 0.65 V"
        );
        // The memory gate sits near VT + Vov.
        let vg = sol.voltage(cell.cell.gate).0;
        assert!((0.7..1.5).contains(&vg), "gate at {vg} V");
    }

    #[test]
    fn class_ab_rejects_bad_design() {
        let d = ClassAbCellDesign {
            vov_memory: Volts(0.0),
            ..ClassAbCellDesign::default()
        };
        assert!(d.build().is_err());
        let d = ClassAbCellDesign {
            j_bias: Amps(-1e-6),
            ..ClassAbCellDesign::default()
        };
        assert!(d.build().is_err());
    }

    #[test]
    fn cmff_cancels_common_mode() {
        // Channel-length modulation gives the mirrors a small systematic
        // gain error that shows up as a constant offset in the residual;
        // the CMFF claim is about *signal* common mode, so measure the
        // incremental rejection: d(residual)/d(icm).
        let mut net = CmffDesign::default().build().unwrap();
        net.drive(Amps(0.0), Amps(0.0)).unwrap();
        let base = net.residual_common_mode().unwrap();
        net.drive(Amps(0.0), Amps(2e-6)).unwrap();
        let with_cm = net.residual_common_mode().unwrap();
        let cm_gain = (with_cm.0 - base.0) / 2e-6;
        assert!(
            cm_gain.abs() < 0.15,
            "incremental common-mode gain {cm_gain} (should be ≪ 1)"
        );
    }

    #[test]
    fn cmff_static_offset_is_small_fraction_of_bias() {
        let mut net = CmffDesign::default().build().unwrap();
        net.drive(Amps(0.0), Amps(0.0)).unwrap();
        let base = net.residual_common_mode().unwrap();
        assert!(
            base.0.abs() < 0.15 * net.design.bias.0,
            "static mirror offset {} A vs bias {} A",
            base.0,
            net.design.bias.0
        );
    }

    #[test]
    fn cmff_preserves_differential_signal() {
        let mut net = CmffDesign::default().build().unwrap();
        net.drive(Amps(5e-6), Amps(0.0)).unwrap();
        let (ip, in_) = net.output_currents().unwrap();
        let id_out = 0.5 * (ip.0 - in_.0);
        assert!(
            (id_out - 5e-6).abs() < 0.5e-6,
            "differential output {id_out} A for 5 µA drive"
        );
    }

    #[test]
    fn cmff_rejects_bad_design() {
        let d = CmffDesign {
            vov: Volts(-1.0),
            ..CmffDesign::default()
        };
        assert!(d.build().is_err());
    }

    #[test]
    fn delay_line_builds_and_biases_every_stage() {
        let line = si_cell_chain(40).unwrap();
        assert_eq!(line.circuit.mna_dimension(), 40);
        let sol = DcSolver::new()
            .with_initial_guess(line.initial_guess.clone())
            .solve(&line.circuit)
            .unwrap();
        for (k, &n) in line.stage_nodes.iter().enumerate() {
            let v = sol.voltage(n).0;
            assert!((0.8..1.4).contains(&v), "stage {k} memory node at {v} V");
        }
    }

    #[test]
    fn delay_line_rejects_bad_design() {
        assert!(si_cell_chain(0).is_err());
        let d = DelayLineDesign {
            bias: Amps(0.0),
            ..DelayLineDesign::default()
        };
        assert!(d.build().is_err());
    }
}
