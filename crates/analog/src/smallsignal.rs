//! Small-signal analyses on the circuit linearized at an operating point.
//!
//! The paper's central cell-level quantity is the **input conductance** of
//! the class-AB memory cell: "the input conductance is increased by the
//! voltage gain of the grounded-gate transistor TG. This provides a
//! 'virtual ground' at the input". [`port_conductance`] measures exactly
//! that — it injects a unit small-signal current into a node of the
//! linearized circuit and reads the voltage perturbation.

use crate::engine::{Analysis, EngineWorkspace};
use crate::mna::{Solution, StampContext};
use crate::netlist::{Circuit, NodeId};
use crate::units::Siemens;
use crate::AnalogError;

/// Options for small-signal analyses.
#[derive(Debug, Clone, Copy)]
pub struct SmallSignal {
    /// φ1 switch state during the analysis.
    pub phi1_high: bool,
    /// φ2 switch state during the analysis.
    pub phi2_high: bool,
    /// gmin used in the linearized matrix.
    pub gmin: f64,
}

impl Default for SmallSignal {
    fn default() -> Self {
        SmallSignal {
            phi1_high: true,
            phi2_high: false,
            gmin: 1e-12,
        }
    }
}

impl SmallSignal {
    /// Linearizes the circuit at `op` and leaves the factored system in
    /// the workspace, ready for repeated right-hand sides.
    fn linearize_into(
        &self,
        circuit: &Circuit,
        op: &Solution,
        ws: &mut EngineWorkspace,
    ) -> Result<(), AnalogError> {
        let voltages = op.node_voltages();
        let ctx = StampContext {
            node_voltages: &voltages,
            time: None,
            clock: None,
            phi1_high: self.phi1_high,
            phi2_high: self.phi2_high,
            gmin: self.gmin,
            cap_step: None,
        };
        ws.factorize(circuit, &ctx)
    }

    /// The small-signal conductance looking into `node` (to ground): inject
    /// a 1 A test current, read the node's voltage response `ΔV`, return
    /// `1/ΔV`.
    ///
    /// Independent sources are zeroed by the linearization (the Jacobian
    /// contains only conductances; the RHS is replaced by the test
    /// injection), which is the definition of small-signal analysis.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] when `node` is ground, plus
    /// any assembly/factorization error.
    pub fn port_conductance(
        &self,
        circuit: &Circuit,
        op: &Solution,
        node: NodeId,
    ) -> Result<Siemens, AnalogError> {
        let mut ws = EngineWorkspace::for_circuit(circuit);
        self.port_conductance_with(circuit, op, node, &mut ws)
    }

    /// Workspace-reusing variant of [`SmallSignal::port_conductance`].
    ///
    /// # Errors
    ///
    /// Same as [`SmallSignal::port_conductance`].
    pub fn port_conductance_with(
        &self,
        circuit: &Circuit,
        op: &Solution,
        node: NodeId,
        ws: &mut EngineWorkspace,
    ) -> Result<Siemens, AnalogError> {
        if node.is_ground() {
            return Err(AnalogError::InvalidParameter {
                name: "node",
                constraint: "cannot measure conductance into ground",
            });
        }
        self.linearize_into(circuit, op, ws)?;
        let idx = node.index() - 1;
        let x = ws.solve_factored(|rhs| rhs[idx] = 1.0)?;
        Ok(Siemens(1.0 / x[idx]))
    }

    /// The small-signal transresistance from a current injected into
    /// `input` to the voltage at `output`: `ΔV(output) / ΔI(input)` in ohms.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] when `input` is ground.
    pub fn transresistance(
        &self,
        circuit: &Circuit,
        op: &Solution,
        input: NodeId,
        output: NodeId,
    ) -> Result<crate::units::Ohms, AnalogError> {
        let mut ws = EngineWorkspace::for_circuit(circuit);
        self.transresistance_with(circuit, op, input, output, &mut ws)
    }

    /// Workspace-reusing variant of [`SmallSignal::transresistance`].
    ///
    /// # Errors
    ///
    /// Same as [`SmallSignal::transresistance`].
    pub fn transresistance_with(
        &self,
        circuit: &Circuit,
        op: &Solution,
        input: NodeId,
        output: NodeId,
        ws: &mut EngineWorkspace,
    ) -> Result<crate::units::Ohms, AnalogError> {
        if input.is_ground() {
            return Err(AnalogError::InvalidParameter {
                name: "input",
                constraint: "cannot inject into ground",
            });
        }
        self.linearize_into(circuit, op, ws)?;
        let idx = input.index() - 1;
        let x = ws.solve_factored(|rhs| rhs[idx] = 1.0)?;
        let dv = if output.is_ground() {
            0.0
        } else {
            x[output.index() - 1]
        };
        Ok(crate::units::Ohms(dv))
    }

    /// The small-signal current gain from a current injected into `input`
    /// to the current through the named ammeter (0 V voltage source).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::UnknownElement`] if `ammeter` is not a voltage
    /// source, or [`AnalogError::InvalidParameter`] when `input` is ground.
    pub fn current_gain(
        &self,
        circuit: &Circuit,
        op: &Solution,
        input: NodeId,
        ammeter: &str,
    ) -> Result<f64, AnalogError> {
        let mut ws = EngineWorkspace::for_circuit(circuit);
        self.current_gain_with(circuit, op, input, ammeter, &mut ws)
    }

    /// Workspace-reusing variant of [`SmallSignal::current_gain`].
    ///
    /// # Errors
    ///
    /// Same as [`SmallSignal::current_gain`].
    pub fn current_gain_with(
        &self,
        circuit: &Circuit,
        op: &Solution,
        input: NodeId,
        ammeter: &str,
        ws: &mut EngineWorkspace,
    ) -> Result<f64, AnalogError> {
        if input.is_ground() {
            return Err(AnalogError::InvalidParameter {
                name: "input",
                constraint: "cannot inject into ground",
            });
        }
        let branch = circuit.branch_of(ammeter)?;
        self.linearize_into(circuit, op, ws)?;
        let idx = input.index() - 1;
        let x = ws.solve_factored(|rhs| rhs[idx] = 1.0)?;
        Ok(x[circuit.node_count() - 1 + branch])
    }

    /// The small-signal voltage at `node` in response to wiggling the named
    /// voltage source by 1 V (all other sources zeroed).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::UnknownElement`] if `source` is not a voltage
    /// source.
    pub fn voltage_gain(
        &self,
        circuit: &Circuit,
        op: &Solution,
        source: &str,
        node: NodeId,
    ) -> Result<f64, AnalogError> {
        let mut ws = EngineWorkspace::for_circuit(circuit);
        self.voltage_gain_with(circuit, op, source, node, &mut ws)
    }

    /// Workspace-reusing variant of [`SmallSignal::voltage_gain`].
    ///
    /// # Errors
    ///
    /// Same as [`SmallSignal::voltage_gain`].
    pub fn voltage_gain_with(
        &self,
        circuit: &Circuit,
        op: &Solution,
        source: &str,
        node: NodeId,
        ws: &mut EngineWorkspace,
    ) -> Result<f64, AnalogError> {
        let branch = circuit.branch_of(source)?;
        self.linearize_into(circuit, op, ws)?;
        let idx = circuit.node_count() - 1 + branch;
        let x = ws.solve_factored(|rhs| rhs[idx] = 1.0)?;
        let dv = if node.is_ground() {
            0.0
        } else {
            x[node.index() - 1]
        };
        Ok(dv)
    }
}

/// [`Analysis`] job measuring the conductance looking into one node of the
/// circuit linearized at a given operating point.
#[derive(Debug, Clone)]
pub struct PortConductanceJob<'a> {
    /// Small-signal options (phases, gmin).
    pub options: SmallSignal,
    /// The operating point to linearize at.
    pub op: &'a Solution,
    /// The port node.
    pub node: NodeId,
}

impl Analysis for PortConductanceJob<'_> {
    type Output = Siemens;

    fn run_with(
        &self,
        circuit: &Circuit,
        ws: &mut EngineWorkspace,
    ) -> Result<Siemens, AnalogError> {
        self.options
            .port_conductance_with(circuit, self.op, self.node, ws)
    }
}

/// Convenience: measures the conductance looking into `node` with default
/// small-signal options.
///
/// # Errors
///
/// See [`SmallSignal::port_conductance`].
pub fn port_conductance(
    circuit: &Circuit,
    op: &Solution,
    node: NodeId,
) -> Result<Siemens, AnalogError> {
    SmallSignal::default().port_conductance(circuit, op, node)
}

/// The small-signal voltage across two nodes per ampere injected
/// differentially (into `pos`, out of `neg`).
///
/// # Errors
///
/// Returns assembly/factorization errors; either node may be ground.
pub fn differential_port_resistance(
    circuit: &Circuit,
    op: &Solution,
    pos: NodeId,
    neg: NodeId,
    options: &SmallSignal,
) -> Result<crate::units::Ohms, AnalogError> {
    let mut ws = EngineWorkspace::for_circuit(circuit);
    differential_port_resistance_with(circuit, op, pos, neg, options, &mut ws)
}

/// Workspace-reusing variant of [`differential_port_resistance`].
///
/// # Errors
///
/// Same as [`differential_port_resistance`].
pub fn differential_port_resistance_with(
    circuit: &Circuit,
    op: &Solution,
    pos: NodeId,
    neg: NodeId,
    options: &SmallSignal,
    ws: &mut EngineWorkspace,
) -> Result<crate::units::Ohms, AnalogError> {
    options.linearize_into(circuit, op, ws)?;
    let x = ws.solve_factored(|rhs| {
        if !pos.is_ground() {
            rhs[pos.index() - 1] = 1.0;
        }
        if !neg.is_ground() {
            rhs[neg.index() - 1] = -1.0;
        }
    })?;
    let vp = if pos.is_ground() {
        0.0
    } else {
        x[pos.index() - 1]
    };
    let vn = if neg.is_ground() {
        0.0
    } else {
        x[neg.index() - 1]
    };
    Ok(crate::units::Ohms(vp - vn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::DcSolver;
    use crate::device::mos::MosParams;
    use crate::netlist::MosTerminals;
    use crate::units::Volts;
    use crate::units::{Amps, Ohms};

    #[test]
    fn resistor_port_conductance() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.resistor("R", n, Circuit::GROUND, Ohms(1e3)).unwrap();
        // Add a trivial source so the op solve has something to do.
        c.current_source("I0", Circuit::GROUND, n, Amps(0.0))
            .unwrap();
        let op = DcSolver::new().solve(&c).unwrap();
        let g = port_conductance(&c, &op, n).unwrap();
        assert!((g.0 - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn parallel_resistors_add_conductance() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.resistor("R1", n, Circuit::GROUND, Ohms(1e3)).unwrap();
        c.resistor("R2", n, Circuit::GROUND, Ohms(1e3)).unwrap();
        c.current_source("I0", Circuit::GROUND, n, Amps(0.0))
            .unwrap();
        let op = DcSolver::new().solve(&c).unwrap();
        let g = port_conductance(&c, &op, n).unwrap();
        assert!((g.0 - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn diode_connected_mos_conductance_is_gm() {
        let mut c = Circuit::new();
        let d = c.node("d");
        let ib = Amps(50e-6);
        c.current_source("Ib", Circuit::GROUND, d, ib).unwrap();
        let m = MosParams::nmos_08um(20.0, 2.0).with_lambda(0.0);
        c.mosfet(
            "M1",
            MosTerminals {
                drain: d,
                gate: d,
                source: Circuit::GROUND,
                bulk: Circuit::GROUND,
            },
            m,
        )
        .unwrap();
        let op = DcSolver::new().solve(&c).unwrap();
        let g = port_conductance(&c, &op, d).unwrap();
        let gm = m.gm_at(ib).0;
        assert!(
            (g.0 - gm).abs() / gm < 1e-4,
            "port conductance {} vs gm {gm}",
            g.0
        );
    }

    /// Builds a grounded-source NMOS biased through a holding voltage
    /// source, optionally with a cascode on top, and measures the
    /// small-signal conductance looking into the output node with the hold
    /// replaced by a zero-valued current source.
    fn output_conductance(cascode: bool) -> f64 {
        let m = MosParams::nmos_08um(20.0, 2.0);
        // First find the bias by holding the output at 2.8 V.
        let build = |hold: bool| {
            let mut c = Circuit::new();
            let out = c.node("out");
            let vb1 = c.node("vb1");
            c.voltage_source("Vb1", vb1, Circuit::GROUND, Volts(1.2))
                .unwrap();
            if cascode {
                let mid = c.node("mid");
                let vb2 = c.node("vb2");
                c.voltage_source("Vb2", vb2, Circuit::GROUND, Volts(2.0))
                    .unwrap();
                c.mosfet(
                    "M1",
                    MosTerminals {
                        drain: mid,
                        gate: vb1,
                        source: Circuit::GROUND,
                        bulk: Circuit::GROUND,
                    },
                    m,
                )
                .unwrap();
                c.mosfet(
                    "M2",
                    MosTerminals {
                        drain: out,
                        gate: vb2,
                        source: mid,
                        bulk: Circuit::GROUND,
                    },
                    m,
                )
                .unwrap();
            } else {
                c.mosfet(
                    "M1",
                    MosTerminals {
                        drain: out,
                        gate: vb1,
                        source: Circuit::GROUND,
                        bulk: Circuit::GROUND,
                    },
                    m,
                )
                .unwrap();
            }
            if hold {
                c.voltage_source("Vh", out, Circuit::GROUND, Volts(2.8))
                    .unwrap();
            } else {
                // Placeholder value; replaced with the held branch current.
                c.current_source("Ih", Circuit::GROUND, out, Amps(0.0))
                    .unwrap();
            }
            (c, out)
        };
        let (held, out) = build(true);
        let op_held = DcSolver::new().solve(&held).unwrap();
        // The hold source absorbs the stage current; feed exactly that
        // current back in its place so the free circuit biases identically.
        let i_stage = -op_held.branch_current(held.branch_of("Vh").unwrap()).0;
        let (mut free, out_free) = build(false);
        crate::dc::set_current_source(&mut free, "Ih", Amps(i_stage)).unwrap();
        let op = DcSolver::new()
            .with_initial_guess(op_held.node_voltages())
            .solve(&free)
            .unwrap();
        assert!(
            (op.voltage(out_free).0 - op_held.voltage(out).0).abs() < 0.3,
            "free output drifted to {} V from held {} V",
            op.voltage(out_free).0,
            op_held.voltage(out).0
        );
        port_conductance(&free, &op, out_free).unwrap().0
    }

    #[test]
    fn cascode_raises_output_resistance() {
        let g_simple = output_conductance(false);
        let g_cascode = output_conductance(true);
        // The cascode divides the output conductance by roughly gm/gds — two
        // orders of magnitude for this geometry.
        assert!(
            g_simple > 20.0 * g_cascode,
            "simple {g_simple} vs cascode {g_cascode}"
        );
        // And the simple stage's conductance is close to the device gds.
        let m = MosParams::nmos_08um(20.0, 2.0);
        let e = m.evaluate(Volts(1.2), Volts(2.8), Volts(0.0));
        assert!(
            (g_simple - e.gds).abs() / e.gds < 0.2,
            "simple stage conductance {g_simple} vs gds {}",
            e.gds
        );
    }

    #[test]
    fn ground_port_is_rejected() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.resistor("R", n, Circuit::GROUND, Ohms(1.0)).unwrap();
        c.current_source("I0", Circuit::GROUND, n, Amps(0.0))
            .unwrap();
        let op = DcSolver::new().solve(&c).unwrap();
        assert!(port_conductance(&c, &op, Circuit::GROUND).is_err());
    }

    #[test]
    fn current_gain_through_ammeter() {
        // Injected current into a node with a single path to ground through
        // an ammeter has gain −1 (flows pos→neg through the meter).
        let mut c = Circuit::new();
        let n = c.node("n");
        c.ammeter("Am", n, Circuit::GROUND).unwrap();
        c.current_source("I0", Circuit::GROUND, n, Amps(0.0))
            .unwrap();
        let op = DcSolver::new().solve(&c).unwrap();
        let gain = SmallSignal::default()
            .current_gain(&c, &op, n, "Am")
            .unwrap();
        assert!((gain - 1.0).abs() < 1e-9, "gain {gain}");
    }

    #[test]
    fn voltage_gain_of_divider() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let mid = c.node("mid");
        c.voltage_source("Vs", a, Circuit::GROUND, Volts(1.0))
            .unwrap();
        c.resistor("R1", a, mid, Ohms(1e3)).unwrap();
        c.resistor("R2", mid, Circuit::GROUND, Ohms(3e3)).unwrap();
        let op = DcSolver::new().solve(&c).unwrap();
        let g = SmallSignal::default()
            .voltage_gain(&c, &op, "Vs", mid)
            .unwrap();
        assert!((g - 0.75).abs() < 1e-9);
    }

    #[test]
    fn differential_port_resistance_of_series_resistors() {
        // Two nodes joined by R2, each tied to ground through R1: the
        // differential resistance between them is R2 ∥ (R1 + R1).
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.resistor("R1a", a, Circuit::GROUND, Ohms(1e3)).unwrap();
        c.resistor("R1b", b, Circuit::GROUND, Ohms(1e3)).unwrap();
        c.resistor("R2", a, b, Ohms(2e3)).unwrap();
        c.current_source("I0", Circuit::GROUND, a, Amps(0.0))
            .unwrap();
        let op = DcSolver::new().solve(&c).unwrap();
        let r = differential_port_resistance(&c, &op, a, b, &SmallSignal::default()).unwrap();
        let expected = 1.0 / (1.0 / 2e3 + 1.0 / 2e3); // 2k ∥ 2k = 1k
        assert!((r.0 - expected).abs() < 1.0, "r {} vs {expected}", r.0);
    }

    #[test]
    fn differential_port_resistance_with_one_grounded_node() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R", a, Circuit::GROUND, Ohms(5e3)).unwrap();
        c.current_source("I0", Circuit::GROUND, a, Amps(0.0))
            .unwrap();
        let op = DcSolver::new().solve(&c).unwrap();
        let r = differential_port_resistance(&c, &op, a, Circuit::GROUND, &SmallSignal::default())
            .unwrap();
        assert!((r.0 - 5e3).abs() < 1.0);
    }

    #[test]
    fn transresistance_into_resistor() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.resistor("R", n, Circuit::GROUND, Ohms(5e3)).unwrap();
        c.current_source("I0", Circuit::GROUND, n, Amps(0.0))
            .unwrap();
        let op = DcSolver::new().solve(&c).unwrap();
        let r = SmallSignal::default()
            .transresistance(&c, &op, n, n)
            .unwrap();
        assert!((r.0 - 5e3).abs() < 1.0);
    }
}
