//! Unit newtypes for physical quantities.
//!
//! All public APIs in the workspace take and return these wrappers rather
//! than bare `f64`s, so a current can never be passed where a voltage is
//! expected (C-NEWTYPE). Arithmetic that stays within a unit is provided;
//! cross-unit products that have a physical meaning (V·A = W, V/A = Ω, …)
//! are provided explicitly.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $symbol:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// The magnitude of the quantity.
            #[must_use]
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// The larger of two quantities.
            #[must_use]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// The smaller of two quantities.
            #[must_use]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Whether the underlying value is finite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                iter.fold($name::ZERO, |a, b| a + b)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $symbol)
            }
        }

        impl From<f64> for $name {
            fn from(v: f64) -> $name {
                $name(v)
            }
        }
    };
}

unit!(
    /// Electrical potential in volts.
    Volts,
    "V"
);
unit!(
    /// Electrical current in amperes.
    Amps,
    "A"
);
unit!(
    /// Resistance in ohms.
    Ohms,
    "Ω"
);
unit!(
    /// Conductance in siemens.
    Siemens,
    "S"
);
unit!(
    /// Capacitance in farads.
    Farads,
    "F"
);
unit!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
unit!(
    /// Time in seconds.
    Seconds,
    "s"
);
unit!(
    /// Power in watts.
    Watts,
    "W"
);

impl Volts {
    /// Ohm's law: `V / R = I`.
    #[must_use]
    pub fn over(self, r: Ohms) -> Amps {
        Amps(self.0 / r.0)
    }
}

impl Mul<Amps> for Volts {
    /// Electrical power `P = V·I`.
    type Output = Watts;
    fn mul(self, rhs: Amps) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Volts> for Amps {
    /// Electrical power `P = I·V`.
    type Output = Watts;
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Volts> for Siemens {
    /// Conductance law `I = G·V`.
    type Output = Amps;
    fn mul(self, rhs: Volts) -> Amps {
        Amps(self.0 * rhs.0)
    }
}

impl Mul<Ohms> for Amps {
    /// Ohm's law `V = I·R`.
    type Output = Volts;
    fn mul(self, rhs: Ohms) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

impl Div<Volts> for Amps {
    /// Conductance `G = I/V`.
    type Output = Siemens;
    fn div(self, rhs: Volts) -> Siemens {
        Siemens(self.0 / rhs.0)
    }
}

impl Div<Amps> for Volts {
    /// Resistance `R = V/I`.
    type Output = Ohms;
    fn div(self, rhs: Amps) -> Ohms {
        Ohms(self.0 / rhs.0)
    }
}

impl Ohms {
    /// The reciprocal conductance.
    #[must_use]
    pub fn to_siemens(self) -> Siemens {
        Siemens(1.0 / self.0)
    }
}

impl Siemens {
    /// The reciprocal resistance.
    #[must_use]
    pub fn to_ohms(self) -> Ohms {
        Ohms(1.0 / self.0)
    }
}

impl Hertz {
    /// The period `1/f`.
    #[must_use]
    pub fn period(self) -> Seconds {
        Seconds(1.0 / self.0)
    }
}

impl Seconds {
    /// The frequency `1/T`.
    #[must_use]
    pub fn to_hertz(self) -> Hertz {
        Hertz(1.0 / self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_within_a_unit() {
        let a = Volts(2.0) + Volts(0.5) - Volts(1.0);
        assert_eq!(a, Volts(1.5));
        assert_eq!(-a, Volts(-1.5));
        assert_eq!(a * 2.0, Volts(3.0));
        assert_eq!(2.0 * a, Volts(3.0));
        assert_eq!(a / 3.0, Volts(0.5));
        assert_eq!(Volts(3.0) / Volts(1.5), 2.0);
    }

    #[test]
    fn cross_unit_products() {
        assert_eq!(Volts(3.3) * Amps(2.0), Watts(6.6));
        assert_eq!(Amps(2.0) * Volts(3.3), Watts(6.6));
        assert_eq!(Siemens(0.5) * Volts(4.0), Amps(2.0));
        assert_eq!(Amps(2.0) * Ohms(3.0), Volts(6.0));
        assert_eq!(Amps(1.0) / Volts(2.0), Siemens(0.5));
        assert_eq!(Volts(6.0) / Amps(2.0), Ohms(3.0));
        assert_eq!(Volts(6.0).over(Ohms(2.0)), Amps(3.0));
    }

    #[test]
    fn reciprocal_conversions() {
        assert_eq!(Ohms(4.0).to_siemens(), Siemens(0.25));
        assert_eq!(Siemens(0.25).to_ohms(), Ohms(4.0));
        assert_eq!(Hertz(1e6).period(), Seconds(1e-6));
        assert_eq!(Seconds(1e-3).to_hertz(), Hertz(1e3));
    }

    #[test]
    fn helpers() {
        assert_eq!(Amps(-3.0).abs(), Amps(3.0));
        assert_eq!(Amps(1.0).max(Amps(2.0)), Amps(2.0));
        assert_eq!(Amps(1.0).min(Amps(2.0)), Amps(1.0));
        assert!(Amps(1.0).is_finite());
        assert!(!Amps(f64::NAN).is_finite());
        let total: Amps = [Amps(1.0), Amps(2.0)].into_iter().sum();
        assert_eq!(total, Amps(3.0));
    }

    #[test]
    fn display_includes_symbol() {
        assert_eq!(Volts(3.3).to_string(), "3.3 V");
        assert_eq!(Siemens(0.1).to_string(), "0.1 S");
    }

    #[test]
    fn accumulation_operators() {
        let mut v = Volts(1.0);
        v += Volts(0.5);
        v -= Volts(0.25);
        assert_eq!(v, Volts(1.25));
    }
}
