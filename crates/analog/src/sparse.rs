//! Sparse linear algebra for modified nodal analysis.
//!
//! SI netlists produce MNA matrices that are overwhelmingly structural
//! zeros — a current-copier chain couples each node only to its clocked
//! neighbours — and whose *sparsity pattern never changes* for the life of
//! a circuit: Newton iterations, gmin rungs, transient steps, and sweep
//! points restamp new values into the same positions. This module exploits
//! both facts:
//!
//! * [`SparsityPattern`] / [`CscMatrix`] — compressed-sparse-column
//!   storage over a fixed position set, with binary-search stamping so MNA
//!   assembly needs no dense scratch.
//! * [`SparseLu`] — a left-looking (Gilbert–Peierls) LU factorization with
//!   partial pivoting. The first factorization performs the symbolic
//!   analysis (depth-first reachability per column, recording the fill-in
//!   pattern and pivot order); every later [`SparseLu::refactorize`]
//!   *replays* that structure numerically, skipping graph traversal and
//!   allocation entirely. Replay falls back to a full factorization when a
//!   frozen pivot degrades, so cached structure never costs robustness.
//!
//! Everything is generic over [`Scalar`] so the real (DC / transient) and
//! complex (AC / noise) solver paths share one kernel. Like
//! [`crate::linalg`], this module is self-contained: no external numerics
//! dependency.

use crate::complexmat::C64;
use crate::AnalogError;

/// The field a sparse kernel operates over: `f64` for the real MNA path,
/// [`C64`] for AC and noise.
pub trait Scalar:
    Copy
    + std::fmt::Debug
    + Default
    + PartialEq
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
    + Send
    + Sync
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;

    /// The magnitude used for pivot selection.
    fn modulus(self) -> f64;

    /// Whether every component is finite.
    fn is_finite_scalar(self) -> bool;
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;

    fn modulus(self) -> f64 {
        self.abs()
    }

    fn is_finite_scalar(self) -> bool {
        self.is_finite()
    }
}

impl Scalar for C64 {
    const ZERO: C64 = C64::ZERO;
    const ONE: C64 = C64::ONE;

    fn modulus(self) -> f64 {
        self.abs()
    }

    fn is_finite_scalar(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

/// The fixed structural-nonzero position set of a sparse matrix, in
/// compressed-sparse-column form. Rows within each column are sorted and
/// deduplicated, so position lookup is a binary search over a short slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    n: usize,
    col_ptr: Vec<usize>,
    rows: Vec<usize>,
}

impl SparsityPattern {
    /// Builds a pattern for an `n × n` matrix from `(row, col)` positions.
    /// Duplicates are merged; order is irrelevant.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range — position sets come from the
    /// netlist walker, so a bad index is a programming error.
    #[must_use]
    pub fn from_entries(n: usize, entries: &[(usize, usize)]) -> Self {
        let mut per_col: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(r, c) in entries {
            assert!(r < n && c < n, "pattern entry ({r},{c}) out of range");
            per_col[c].push(r);
        }
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut rows = Vec::with_capacity(entries.len());
        col_ptr.push(0);
        for col in &mut per_col {
            col.sort_unstable();
            col.dedup();
            rows.extend_from_slice(col);
            col_ptr.push(rows.len());
        }
        SparsityPattern { n, col_ptr, rows }
    }

    /// The matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of structural nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Fraction of the dense position count that is structurally nonzero.
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.n as f64 * self.n as f64)
    }

    /// Sorted row indices of column `col`.
    #[must_use]
    pub fn column(&self, col: usize) -> &[usize] {
        &self.rows[self.col_ptr[col]..self.col_ptr[col + 1]]
    }

    /// The value-slot index of position `(row, col)`, if it is in the
    /// pattern.
    #[must_use]
    pub fn index_of(&self, row: usize, col: usize) -> Option<usize> {
        let start = self.col_ptr[col];
        let slice = &self.rows[start..self.col_ptr[col + 1]];
        slice.binary_search(&row).ok().map(|k| start + k)
    }
}

/// A sparse matrix over a fixed [`SparsityPattern`]: the pattern is the
/// symbolic half, `values` the numeric half. Restamping a new linearization
/// touches only `values`, which is what lets [`SparseLu`] cache its
/// symbolic analysis across solves.
#[derive(Debug, Clone)]
pub struct CscMatrix<S: Scalar> {
    pattern: SparsityPattern,
    values: Vec<S>,
}

impl<S: Scalar> CscMatrix<S> {
    /// An all-zero matrix over `pattern`.
    #[must_use]
    pub fn from_pattern(pattern: SparsityPattern) -> Self {
        let values = vec![S::ZERO; pattern.nnz()];
        CscMatrix { pattern, values }
    }

    /// The matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.pattern.n
    }

    /// The structural pattern.
    #[must_use]
    pub fn pattern(&self) -> &SparsityPattern {
        &self.pattern
    }

    /// Sets every value back to zero, keeping the structure.
    pub fn clear(&mut self) {
        self.values.iter_mut().for_each(|v| *v = S::ZERO);
    }

    /// Adds `value` to entry `(i, j)` — the MNA "stamp" primitive.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is not a structural nonzero: the assembly pattern
    /// is built as a superset of every position any analysis stamps, so a
    /// miss is a programming error, exactly like a dense out-of-range stamp.
    pub fn stamp(&mut self, i: usize, j: usize, value: S) {
        let slot = self
            .pattern
            .index_of(i, j)
            .unwrap_or_else(|| panic!("stamp ({i},{j}) outside sparsity pattern"));
        self.values[slot] += value;
    }

    /// Reads entry `(i, j)`; zero when outside the pattern.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> S {
        self.pattern
            .index_of(i, j)
            .map_or(S::ZERO, |slot| self.values[slot])
    }

    /// Matrix–vector product `A·x`, for residual checks in tests.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] on a dimension mismatch.
    pub fn mul_vec(&self, x: &[S]) -> Result<Vec<S>, AnalogError> {
        if x.len() != self.pattern.n {
            return Err(AnalogError::InvalidParameter {
                name: "x",
                constraint: "vector length must equal matrix dimension",
            });
        }
        let mut y = vec![S::ZERO; self.pattern.n];
        for (col, &xc) in x.iter().enumerate() {
            for k in self.pattern.col_ptr[col]..self.pattern.col_ptr[col + 1] {
                y[self.pattern.rows[k]] += self.values[k] * xc;
            }
        }
        Ok(y)
    }
}

/// How many right-hand sides a panel solve processes per pass over the
/// factors. Each pass streams `L` and `U` once while the block's columns
/// stay cache-resident, which is where the batched speedup comes from.
pub const PANEL_BLOCK: usize = 8;

/// A panel of right-hand sides (or solutions) in structure-of-arrays
/// form: scenario `s` occupies the contiguous slice `[s·n, (s+1)·n)`.
/// This is the batch currency of the solve stack — one allocation for a
/// whole scenario family, handed to [`SparseLu::solve_panel_into`] and the
/// backend dispatchers in [`crate::solver`].
#[derive(Debug, Clone, Default)]
pub struct RhsPanel<S: Scalar> {
    n: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: Scalar> RhsPanel<S> {
    /// An all-zero `n × cols` panel.
    #[must_use]
    pub fn zeros(n: usize, cols: usize) -> Self {
        RhsPanel {
            n,
            cols,
            data: vec![S::ZERO; n * cols],
        }
    }

    /// Builds a panel from per-scenario vectors, which must all have the
    /// same length.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] when column lengths
    /// disagree.
    pub fn from_columns(columns: &[Vec<S>]) -> Result<Self, AnalogError> {
        let n = columns.first().map_or(0, Vec::len);
        if columns.iter().any(|c| c.len() != n) {
            return Err(AnalogError::InvalidParameter {
                name: "columns",
                constraint: "every panel column must have the same length",
            });
        }
        let mut data = Vec::with_capacity(n * columns.len());
        for c in columns {
            data.extend_from_slice(c);
        }
        Ok(RhsPanel {
            n,
            cols: columns.len(),
            data,
        })
    }

    /// Rows per scenario (the matrix dimension).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of scenarios in the panel.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Scenario `s` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics when `s` is out of range.
    #[must_use]
    pub fn col(&self, s: usize) -> &[S] {
        &self.data[s * self.n..(s + 1) * self.n]
    }

    /// Mutable view of scenario `s`.
    ///
    /// # Panics
    ///
    /// Panics when `s` is out of range.
    pub fn col_mut(&mut self, s: usize) -> &mut [S] {
        &mut self.data[s * self.n..(s + 1) * self.n]
    }

    /// Resizes to `n × cols` and zeroes every value, reusing the
    /// allocation when it suffices.
    pub fn reset(&mut self, n: usize, cols: usize) {
        self.n = n;
        self.cols = cols;
        self.data.clear();
        self.data.resize(n * cols, S::ZERO);
    }
}

/// One triangular factor in compressed-sparse-column form, with row
/// indices in the *pivot-permuted* space. `L` columns are sorted ascending
/// with the unit diagonal first; `U` columns are sorted ascending with the
/// diagonal last. Both orders are valid elimination orders, which is what
/// lets [`SparseLu::refactorize`] replay them without re-deriving a
/// topological order.
#[derive(Debug, Clone, Default)]
struct Factor<S: Scalar> {
    col_ptr: Vec<usize>,
    rows: Vec<usize>,
    vals: Vec<S>,
}

impl<S: Scalar> Factor<S> {
    fn clear(&mut self) {
        self.col_ptr.clear();
        self.rows.clear();
        self.vals.clear();
    }

    fn column(&self, k: usize) -> (&[usize], &[S]) {
        let range = self.col_ptr[k]..self.col_ptr[k + 1];
        (&self.rows[range.clone()], &self.vals[range])
    }
}

/// A sparse LU factorization `P·A = L·U` with cached symbolic structure.
///
/// [`SparseLu::factorize`] performs the full Gilbert–Peierls left-looking
/// factorization with partial pivoting: per column, a depth-first search
/// over the partially built `L` discovers the fill-in pattern, a sparse
/// triangular solve computes the numeric column, and the largest remaining
/// entry is chosen as pivot. The resulting pivot order and `L`/`U`
/// patterns are retained; [`SparseLu::refactorize`] then updates only the
/// numeric values for a matrix with the same pattern — no graph traversal,
/// no allocation — which is the per-Newton-iteration / per-timestep /
/// per-frequency fast path.
#[derive(Debug, Clone, Default)]
pub struct SparseLu<S: Scalar> {
    n: usize,
    /// `perm[k]` = original row chosen as the pivot of column `k`.
    perm: Vec<usize>,
    /// `pinv[orig_row]` = pivot column, i.e. the permuted row index.
    pinv: Vec<usize>,
    lower: Factor<S>,
    upper: Factor<S>,
    /// Dense numeric workspace, `n` long, zero outside the active column.
    x: Vec<S>,
    /// DFS node stack (full factorization only).
    dfs_stack: Vec<usize>,
    /// DFS per-node child cursor, parallel to `dfs_stack`.
    dfs_cursor: Vec<usize>,
    /// Visited marks for the DFS, reset per column via the reach list.
    marked: Vec<bool>,
    /// Topological order output of the reach computation.
    reach: Vec<usize>,
    /// Whether a factorization (and hence the cached structure) exists.
    has_symbolic: bool,
}

/// Sentinel for "row not yet pivotal" during factorization.
const UNPIVOTED: usize = usize::MAX;

impl<S: Scalar> SparseLu<S> {
    /// Pivot magnitudes below this are treated as singular (the dense
    /// kernels use the same threshold).
    const PIVOT_EPS: f64 = 1e-300;

    /// A frozen pivot smaller than this fraction of the largest candidate
    /// in its column forces replay to fall back to a full refactorization
    /// with fresh pivoting.
    const PIVOT_DEGRADE: f64 = 1e-10;

    /// An empty factorization; call [`Self::factorize`] before solving.
    #[must_use]
    pub fn new() -> Self {
        SparseLu::default()
    }

    /// Whether a cached symbolic structure is available for replay.
    #[must_use]
    pub fn has_symbolic(&self) -> bool {
        self.has_symbolic
    }

    /// Nonzeros in the computed factors (`L` strictly below the diagonal
    /// plus all of `U`), the fill-in telemetry number.
    #[must_use]
    pub fn factor_nnz(&self) -> usize {
        if !self.has_symbolic {
            return 0;
        }
        // L stores the unit diagonal explicitly; don't count it twice
        // against U's diagonal.
        self.lower.rows.len() - self.n + self.upper.rows.len()
    }

    /// Full Gilbert–Peierls factorization of `a`, rebuilding the symbolic
    /// structure from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::SingularMatrix`] when a column has no usable
    /// pivot.
    pub fn factorize(&mut self, a: &CscMatrix<S>) -> Result<(), AnalogError> {
        let n = a.dim();
        self.n = n;
        self.has_symbolic = false;
        self.perm.clear();
        self.perm.resize(n, 0);
        self.pinv.clear();
        self.pinv.resize(n, UNPIVOTED);
        self.lower.clear();
        self.upper.clear();
        self.lower.col_ptr.push(0);
        self.upper.col_ptr.push(0);
        self.x.clear();
        self.x.resize(n, S::ZERO);
        self.marked.clear();
        self.marked.resize(n, false);
        self.reach.clear();
        self.reach.reserve(n);

        for k in 0..n {
            // Symbolic step: the nonzero pattern of L⁻¹·(A column k) is the
            // set of rows reachable from A's entries through the graph of
            // the already-built L columns. Depth-first search emits them in
            // reverse topological order.
            self.reach.clear();
            let (a_rows, a_vals) = {
                let p = &a.pattern;
                let range = p.col_ptr[k]..p.col_ptr[k + 1];
                (&p.rows[range.clone()], &a.values[range])
            };
            for &row in a_rows {
                if !self.marked[row] {
                    self.dfs_from(row);
                }
            }
            // `reach` is in reverse topological order; process back to
            // front for the numeric solve.

            // Numeric step: sparse triangular solve x = L⁻¹·(A column k).
            for &row in self.reach.iter() {
                self.x[row] = S::ZERO;
            }
            for (&row, &val) in a_rows.iter().zip(a_vals) {
                self.x[row] = val;
            }
            for idx in (0..self.reach.len()).rev() {
                let j = self.reach[idx];
                let jnew = self.pinv[j];
                if jnew == UNPIVOTED {
                    continue;
                }
                let xj = self.x[j];
                let (l_rows, l_vals) = self.lower.column(jnew);
                // Entry 0 is the pivot row itself (unit diagonal).
                for (&row, &lv) in l_rows.iter().zip(l_vals).skip(1) {
                    self.x[row] -= lv * xj;
                }
            }

            // Pivot: the largest-magnitude entry among not-yet-pivotal rows.
            let mut pivot_row = UNPIVOTED;
            let mut pivot_mag = -1.0;
            for &row in self.reach.iter() {
                if self.pinv[row] != UNPIVOTED {
                    continue;
                }
                let mag = self.x[row].modulus();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = row;
                }
            }
            if pivot_row == UNPIVOTED || pivot_mag < Self::PIVOT_EPS || !pivot_mag.is_finite() {
                self.reset_after_failure();
                return Err(AnalogError::SingularMatrix { row: k });
            }
            let pivot = self.x[pivot_row];

            // Record U column k: pivotal rows (permuted index < k) plus the
            // diagonal, and L column k: unit diagonal plus the scaled
            // remainder. Row order within a column is fixed up after the
            // loop, once every pivot is known.
            for &row in self.reach.iter() {
                let rnew = self.pinv[row];
                if rnew != UNPIVOTED {
                    self.upper.rows.push(rnew);
                    self.upper.vals.push(self.x[row]);
                }
            }
            self.upper.rows.push(k);
            self.upper.vals.push(pivot);
            self.upper.col_ptr.push(self.upper.rows.len());

            self.lower.rows.push(pivot_row);
            self.lower.vals.push(S::ONE);
            for &row in self.reach.iter() {
                if self.pinv[row] != UNPIVOTED || row == pivot_row {
                    continue;
                }
                self.lower.rows.push(row);
                self.lower.vals.push(self.x[row] / pivot);
            }
            self.lower.col_ptr.push(self.lower.rows.len());

            self.pinv[pivot_row] = k;
            self.perm[k] = pivot_row;

            // Reset the scatter workspace and DFS marks.
            for &row in self.reach.iter() {
                self.x[row] = S::ZERO;
                self.marked[row] = false;
            }
        }

        self.finalize_structure();
        self.has_symbolic = true;
        Ok(())
    }

    /// Numeric-only replay of the cached structure for a matrix with the
    /// same sparsity pattern. Returns `Ok(true)` when the replay was used,
    /// `Ok(false)` when a degraded or vanished pivot forced a fall back to
    /// a full [`Self::factorize`] (fresh pivoting) — callers count the
    /// latter as a symbolic-cache miss.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::SingularMatrix`] if even the fallback cannot
    /// factor the matrix.
    pub fn refactorize(&mut self, a: &CscMatrix<S>) -> Result<bool, AnalogError> {
        if !self.has_symbolic || self.n != a.dim() {
            self.factorize(a)?;
            return Ok(false);
        }
        let n = self.n;
        for k in 0..n {
            // Scatter A's column k into permuted row space. Positions
            // touched are exactly the cached U rows (pivotal) and L rows
            // (non-pivotal) of this column, so clearing those afterwards
            // restores the all-zero invariant.
            let (a_rows, a_vals) = {
                let p = &a.pattern;
                let range = p.col_ptr[k]..p.col_ptr[k + 1];
                (&p.rows[range.clone()], &a.values[range])
            };
            for (&row, &val) in a_rows.iter().zip(a_vals) {
                self.x[self.pinv[row]] = val;
            }

            // Replay the elimination in ascending U-row order: every update
            // feeding x[j] comes from a column j' < j, so ascending order
            // is a valid topological order of the cached dependency graph.
            let u_range = self.upper.col_ptr[k]..self.upper.col_ptr[k + 1];
            for uidx in u_range.clone() {
                let j = self.upper.rows[uidx];
                if j == k {
                    break; // the diagonal is last; its value is x[k] itself
                }
                let xj = self.x[j];
                let (l_rows, l_vals) = self.lower.column(j);
                for (&row, &lv) in l_rows.iter().zip(l_vals).skip(1) {
                    self.x[row] -= lv * xj;
                }
            }

            // Pivot health: the frozen pivot must stay usable relative to
            // the entries it eliminates, else replay would silently lose
            // accuracy — refactor fully with fresh pivoting instead.
            let pivot = self.x[k];
            let pivot_mag = pivot.modulus();
            let l_range = self.lower.col_ptr[k]..self.lower.col_ptr[k + 1];
            let mut col_max = pivot_mag;
            for lidx in l_range.clone().skip(1) {
                col_max = col_max.max(self.x[self.lower.rows[lidx]].modulus());
            }
            if pivot_mag < Self::PIVOT_EPS
                || !pivot_mag.is_finite()
                || pivot_mag < Self::PIVOT_DEGRADE * col_max
            {
                // Clear the scatter workspace before handing off.
                for uidx in u_range {
                    self.x[self.upper.rows[uidx]] = S::ZERO;
                }
                for lidx in l_range {
                    self.x[self.lower.rows[lidx]] = S::ZERO;
                }
                self.factorize(a)?;
                return Ok(false);
            }

            // Gather the new numeric values into the cached structure and
            // clear the workspace.
            for uidx in u_range {
                let row = self.upper.rows[uidx];
                self.upper.vals[uidx] = self.x[row];
                self.x[row] = S::ZERO;
            }
            for lidx in l_range {
                let row = self.lower.rows[lidx];
                if row == k {
                    self.lower.vals[lidx] = S::ONE;
                } else {
                    self.lower.vals[lidx] = self.x[row] / pivot;
                    self.x[row] = S::ZERO;
                }
            }
        }
        Ok(true)
    }

    /// Solves `A·x = b` using the current factors, allocating nothing when
    /// `x`'s capacity suffices.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] on a length mismatch or if
    /// no factorization exists.
    pub fn solve_into(&self, b: &[S], x: &mut Vec<S>) -> Result<(), AnalogError> {
        if !self.has_symbolic || b.len() != self.n {
            return Err(AnalogError::InvalidParameter {
                name: "b",
                constraint: "vector length must equal factored matrix dimension",
            });
        }
        let n = self.n;
        // x = P·b.
        x.clear();
        x.resize(n, S::ZERO);
        for (i, &bi) in b.iter().enumerate() {
            x[self.pinv[i]] = bi;
        }
        // Forward substitution: L has an explicit unit diagonal first.
        for k in 0..n {
            let xk = x[k];
            let (l_rows, l_vals) = self.lower.column(k);
            for (&row, &lv) in l_rows.iter().zip(l_vals).skip(1) {
                x[row] -= lv * xk;
            }
        }
        // Back substitution: U columns hold the diagonal last.
        for k in (0..n).rev() {
            let (u_rows, u_vals) = self.upper.column(k);
            let last = u_rows.len() - 1;
            debug_assert_eq!(u_rows[last], k);
            let xk = x[k] / u_vals[last];
            x[k] = xk;
            for (&row, &uv) in u_rows[..last].iter().zip(&u_vals[..last]) {
                x[row] -= uv * xk;
            }
        }
        Ok(())
    }

    /// Solves `A·X = B` for a whole panel of right-hand sides with one
    /// factorization, streaming the factors once per [`PANEL_BLOCK`]
    /// scenarios instead of once per scenario.
    ///
    /// Per scenario the arithmetic — operand values and evaluation order —
    /// is exactly that of [`Self::solve_into`], so the panel result is
    /// bit-identical to solving each column separately; only the memory
    /// traffic over `L`/`U` is amortized across the block.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] on a dimension mismatch or
    /// if no factorization exists.
    pub fn solve_panel_into(
        &self,
        b: &RhsPanel<S>,
        x: &mut RhsPanel<S>,
    ) -> Result<(), AnalogError> {
        if !self.has_symbolic || b.dim() != self.n {
            return Err(AnalogError::InvalidParameter {
                name: "b",
                constraint: "panel row count must equal factored matrix dimension",
            });
        }
        let n = self.n;
        x.reset(n, b.cols());
        for block_start in (0..b.cols()).step_by(PANEL_BLOCK) {
            let block = block_start..(block_start + PANEL_BLOCK).min(b.cols());
            // X = P·B, column by column (pinv is a bijection, so every
            // position of each x column is written).
            for s in block.clone() {
                let bcol = b.col(s);
                let xcol = x.col_mut(s);
                for (i, &bi) in bcol.iter().enumerate() {
                    xcol[self.pinv[i]] = bi;
                }
            }
            // Forward substitution: each L column is fetched once and
            // applied to every scenario in the block.
            for k in 0..n {
                let (l_rows, l_vals) = self.lower.column(k);
                for s in block.clone() {
                    let xcol = x.col_mut(s);
                    let xk = xcol[k];
                    for (&row, &lv) in l_rows.iter().zip(l_vals).skip(1) {
                        xcol[row] -= lv * xk;
                    }
                }
            }
            // Back substitution, same blocking.
            for k in (0..n).rev() {
                let (u_rows, u_vals) = self.upper.column(k);
                let last = u_rows.len() - 1;
                debug_assert_eq!(u_rows[last], k);
                for s in block.clone() {
                    let xcol = x.col_mut(s);
                    let xk = xcol[k] / u_vals[last];
                    xcol[k] = xk;
                    for (&row, &uv) in u_rows[..last].iter().zip(&u_vals[..last]) {
                        xcol[row] -= uv * xk;
                    }
                }
            }
        }
        Ok(())
    }

    /// Iterative depth-first search from original row `start` over the
    /// graph of built L columns, appending finished nodes to `self.reach`
    /// (reverse topological order).
    fn dfs_from(&mut self, start: usize) {
        self.dfs_stack.clear();
        self.dfs_cursor.clear();
        self.dfs_stack.push(start);
        self.dfs_cursor.push(0);
        self.marked[start] = true;
        while let Some(&node) = self.dfs_stack.last() {
            let cursor = *self.dfs_cursor.last().expect("cursor parallel to stack");
            let jnew = self.pinv[node];
            let next_child = if jnew == UNPIVOTED {
                None
            } else {
                let (l_rows, _) = self.lower.column(jnew);
                l_rows[cursor..]
                    .iter()
                    .position(|&r| !self.marked[r])
                    .map(|offset| (cursor + offset, l_rows[cursor + offset]))
            };
            match next_child {
                Some((child_idx, child)) => {
                    *self.dfs_cursor.last_mut().expect("cursor") = child_idx + 1;
                    self.marked[child] = true;
                    self.dfs_stack.push(child);
                    self.dfs_cursor.push(0);
                }
                None => {
                    self.dfs_stack.pop();
                    self.dfs_cursor.pop();
                    self.reach.push(node);
                }
            }
        }
    }

    /// Post-factorization fix-up: remap L's row indices into pivot space
    /// and sort every column ascending, establishing the invariants replay
    /// and solve rely on (L diagonal first, U diagonal last).
    fn finalize_structure(&mut self) {
        for row in &mut self.lower.rows {
            *row = self.pinv[*row];
        }
        for k in 0..self.n {
            Self::sort_column(&mut self.lower, k);
            Self::sort_column(&mut self.upper, k);
        }
    }

    fn sort_column(f: &mut Factor<S>, k: usize) {
        let range = f.col_ptr[k]..f.col_ptr[k + 1];
        let rows = &mut f.rows[range.clone()];
        let vals = &mut f.vals[range];
        // Insertion sort on parallel slices — columns are short and nearly
        // sorted already.
        for i in 1..rows.len() {
            let mut j = i;
            while j > 0 && rows[j - 1] > rows[j] {
                rows.swap(j - 1, j);
                vals.swap(j - 1, j);
                j -= 1;
            }
        }
    }

    /// Restores the all-zero / unmarked workspace invariant after a
    /// mid-factorization failure, so the next call starts clean.
    fn reset_after_failure(&mut self) {
        for &row in self.reach.iter() {
            self.x[row] = S::ZERO;
            self.marked[row] = false;
        }
        self.reach.clear();
        self.has_symbolic = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Matrix;

    /// A deterministic xorshift for reproducible random fills.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 as f64 / u64::MAX as f64) * 2.0 - 1.0
        }
    }

    fn tridiagonal_pattern(n: usize) -> SparsityPattern {
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i));
            if i + 1 < n {
                entries.push((i, i + 1));
                entries.push((i + 1, i));
            }
        }
        SparsityPattern::from_entries(n, &entries)
    }

    fn random_tridiagonal(n: usize, rng: &mut Rng) -> CscMatrix<f64> {
        let mut m = CscMatrix::from_pattern(tridiagonal_pattern(n));
        for i in 0..n {
            m.stamp(i, i, 4.0 + rng.next());
            if i + 1 < n {
                m.stamp(i, i + 1, rng.next());
                m.stamp(i + 1, i, rng.next());
            }
        }
        m
    }

    fn to_dense(a: &CscMatrix<f64>) -> Matrix {
        let n = a.dim();
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = a.get(i, j);
            }
        }
        m
    }

    #[test]
    fn pattern_dedupes_and_sorts() {
        let p = SparsityPattern::from_entries(3, &[(2, 0), (0, 0), (2, 0), (1, 2)]);
        assert_eq!(p.nnz(), 3);
        assert_eq!(p.column(0), &[0, 2]);
        assert_eq!(p.column(1), &[] as &[usize]);
        assert_eq!(p.column(2), &[1]);
        assert!(p.index_of(2, 0).is_some());
        assert!(p.index_of(1, 0).is_none());
        assert!((p.density() - 3.0 / 9.0).abs() < 1e-15);
    }

    #[test]
    fn stamp_accumulates_and_clear_resets() {
        let p = SparsityPattern::from_entries(2, &[(0, 0), (1, 1)]);
        let mut m = CscMatrix::<f64>::from_pattern(p);
        m.stamp(0, 0, 1.5);
        m.stamp(0, 0, 2.5);
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.get(0, 1), 0.0);
        m.clear();
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside sparsity pattern")]
    fn stamp_outside_pattern_panics() {
        let p = SparsityPattern::from_entries(2, &[(0, 0)]);
        let mut m = CscMatrix::<f64>::from_pattern(p);
        m.stamp(1, 0, 1.0);
    }

    #[test]
    fn solves_match_dense_on_random_tridiagonals() {
        let mut rng = Rng(0x9E3779B97F4A7C15);
        for n in [1, 2, 5, 17, 40] {
            let a = random_tridiagonal(n, &mut rng);
            let b: Vec<f64> = (0..n).map(|_| rng.next()).collect();
            let mut lu = SparseLu::new();
            lu.factorize(&a).unwrap();
            let mut x = Vec::new();
            lu.solve_into(&b, &mut x).unwrap();
            let dense_x = to_dense(&a).solve(&b).unwrap();
            for (u, v) in x.iter().zip(&dense_x) {
                assert!((u - v).abs() < 1e-10, "n={n}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let p = SparsityPattern::from_entries(2, &[(0, 1), (1, 0)]);
        let mut m = CscMatrix::from_pattern(p);
        m.stamp(0, 1, 1.0);
        m.stamp(1, 0, 1.0);
        let mut lu = SparseLu::new();
        lu.factorize(&m).unwrap();
        let mut x = Vec::new();
        lu.solve_into(&[2.0, 3.0], &mut x).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_is_reported_and_recoverable() {
        let p = SparsityPattern::from_entries(2, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
        let mut m = CscMatrix::from_pattern(p);
        m.stamp(0, 0, 1.0);
        m.stamp(0, 1, 2.0);
        m.stamp(1, 0, 2.0);
        m.stamp(1, 1, 4.0);
        let mut lu = SparseLu::new();
        assert!(matches!(
            lu.factorize(&m),
            Err(AnalogError::SingularMatrix { .. })
        ));
        // The workspace must be clean enough to factor a good matrix next.
        m.clear();
        m.stamp(0, 0, 1.0);
        m.stamp(1, 1, 1.0);
        lu.factorize(&m).unwrap();
        let mut x = Vec::new();
        lu.solve_into(&[5.0, -3.0], &mut x).unwrap();
        assert_eq!(x, vec![5.0, -3.0]);
    }

    #[test]
    fn refactorize_replays_cached_structure() {
        let mut rng = Rng(0xDEADBEEFCAFE1234);
        let n = 25;
        let mut a = random_tridiagonal(n, &mut rng);
        let mut lu = SparseLu::new();
        lu.factorize(&a).unwrap();
        let nnz_before = lu.factor_nnz();
        assert!(nnz_before > 0);

        // New values, same structure: replay must be used and agree with
        // the dense solve of the *new* matrix.
        for trial in 0..5 {
            a.clear();
            for i in 0..n {
                a.stamp(i, i, 5.0 + rng.next() + trial as f64);
                if i + 1 < n {
                    a.stamp(i, i + 1, rng.next());
                    a.stamp(i + 1, i, rng.next());
                }
            }
            assert!(lu.refactorize(&a).unwrap(), "replay path expected");
            assert_eq!(lu.factor_nnz(), nnz_before, "structure must not grow");
            let b: Vec<f64> = (0..n).map(|_| rng.next()).collect();
            let mut x = Vec::new();
            lu.solve_into(&b, &mut x).unwrap();
            let dense_x = to_dense(&a).solve(&b).unwrap();
            for (u, v) in x.iter().zip(&dense_x) {
                assert!((u - v).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn refactorize_falls_back_on_degraded_pivot() {
        // Factor with a dominant diagonal, then hand replay a matrix whose
        // frozen pivot has collapsed: it must fall back (returning false)
        // and still solve correctly.
        let p = SparsityPattern::from_entries(2, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
        let mut m = CscMatrix::from_pattern(p);
        m.stamp(0, 0, 10.0);
        m.stamp(0, 1, 1.0);
        m.stamp(1, 0, 1.0);
        m.stamp(1, 1, 10.0);
        let mut lu = SparseLu::new();
        lu.factorize(&m).unwrap();

        m.clear();
        m.stamp(0, 0, 1e-14);
        m.stamp(0, 1, 1.0);
        m.stamp(1, 0, 1.0);
        m.stamp(1, 1, 1e-14);
        assert!(!lu.refactorize(&m).unwrap(), "fallback expected");
        let mut x = Vec::new();
        lu.solve_into(&[1.0, 2.0], &mut x).unwrap();
        let r = m.mul_vec(&x).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-10 && (r[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn refactorize_without_factorize_does_full_factorization() {
        let mut rng = Rng(42);
        let a = random_tridiagonal(6, &mut rng);
        let mut lu = SparseLu::new();
        assert!(!lu.refactorize(&a).unwrap());
        assert!(lu.has_symbolic());
    }

    #[test]
    fn complex_solve_matches_dense_cmatrix() {
        use crate::complexmat::CMatrix;
        let n = 12;
        let mut rng = Rng(0x1234_5678_9ABC_DEF0);
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i));
            if i + 1 < n {
                entries.push((i, i + 1));
                entries.push((i + 1, i));
            }
        }
        let p = SparsityPattern::from_entries(n, &entries);
        let mut a = CscMatrix::<C64>::from_pattern(p);
        let mut dense = CMatrix::zeros(n);
        for i in 0..n {
            let d = C64::new(4.0 + rng.next(), rng.next());
            a.stamp(i, i, d);
            dense.stamp(i, i, d);
            if i + 1 < n {
                let u = C64::new(rng.next(), rng.next());
                let l = C64::new(rng.next(), rng.next());
                a.stamp(i, i + 1, u);
                dense.stamp(i, i + 1, u);
                a.stamp(i + 1, i, l);
                dense.stamp(i + 1, i, l);
            }
        }
        let b: Vec<C64> = (0..n).map(|_| C64::new(rng.next(), rng.next())).collect();
        let mut lu = SparseLu::new();
        lu.factorize(&a).unwrap();
        let mut x = Vec::new();
        lu.solve_into(&b, &mut x).unwrap();
        let dense_x = dense.solve(&b).unwrap();
        for (u, v) in x.iter().zip(&dense_x) {
            assert!((*u - *v).abs() < 1e-10);
        }
    }

    #[test]
    fn panel_solve_is_bit_identical_to_sequential_solves() {
        let mut rng = Rng(0x5151_5151_DADA_0001);
        for n in [1, 3, 9, 33] {
            // More scenarios than one block, plus a ragged tail.
            for cols in [1, 7, 8, 19] {
                let a = random_tridiagonal(n, &mut rng);
                let mut lu = SparseLu::new();
                lu.factorize(&a).unwrap();
                let columns: Vec<Vec<f64>> = (0..cols)
                    .map(|_| (0..n).map(|_| rng.next()).collect())
                    .collect();
                let b = RhsPanel::from_columns(&columns).unwrap();
                let mut x = RhsPanel::default();
                lu.solve_panel_into(&b, &mut x).unwrap();
                for (s, column) in columns.iter().enumerate() {
                    let mut seq = Vec::new();
                    lu.solve_into(column, &mut seq).unwrap();
                    for (u, v) in x.col(s).iter().zip(&seq) {
                        assert_eq!(
                            u.to_bits(),
                            v.to_bits(),
                            "n={n} cols={cols} scenario {s}: panel {u} vs sequential {v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn panel_rejects_mismatched_columns() {
        assert!(RhsPanel::from_columns(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        let lu = SparseLu::<f64>::new();
        let b = RhsPanel::zeros(2, 2);
        let mut x = RhsPanel::default();
        assert!(lu.solve_panel_into(&b, &mut x).is_err());
    }

    #[test]
    fn fill_in_is_recorded() {
        // An arrowhead matrix fills in completely under natural order; the
        // factor nonzero count must reflect whatever fill the pivot order
        // produced, bounded below by the input nonzeros.
        let n = 8;
        let mut entries = vec![(0usize, 0usize)];
        for i in 1..n {
            entries.push((i, i));
            entries.push((0, i));
            entries.push((i, 0));
        }
        let p = SparsityPattern::from_entries(n, &entries);
        let mut a = CscMatrix::from_pattern(p);
        a.stamp(0, 0, 10.0);
        for i in 1..n {
            a.stamp(i, i, 4.0 + i as f64);
            a.stamp(0, i, 1.0);
            a.stamp(i, 0, 1.0);
        }
        let mut lu = SparseLu::new();
        lu.factorize(&a).unwrap();
        assert!(lu.factor_nnz() >= a.pattern().nnz());
        let mut x = Vec::new();
        lu.solve_into(&vec![1.0; n], &mut x).unwrap();
        let r = a.mul_vec(&x).unwrap();
        for ri in r {
            assert!((ri - 1.0).abs() < 1e-10);
        }
    }
}
