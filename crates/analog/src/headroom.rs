//! Minimum supply-voltage analysis — the paper's Eqs. (1) and (2).
//!
//! "To ensure proper operation, every transistor should be in its saturation
//! region" — the minimum supply voltage of the class-AB cell is set by two
//! stacked-voltage budgets:
//!
//! * **Eq. (1), the GGA bias branch:** the saturation voltages of the bias
//!   transistor `TP`, grounded-gate transistor `TG`, cascode `TC` and bottom
//!   bias `TN` must stack, plus the memory-gate swing
//!   `(√(1+mᵢ) + 1)·(V_gs − V_T)` driven by the peak class-AB current,
//! * **Eq. (2), the memory branch:** the two memory-transistor thresholds
//!   plus both gate overdrives at peak current,
//!   `|V_T|_MP + V_T_MN + 2·√(1+mᵢ)·(V_gs − V_T)`.
//!
//! The printed equations in the available copy of the paper are partially
//! garbled by OCR; the forms above are reconstructed from the circuit of
//! Fig. 1 and reproduce the paper's stated conclusion — a 3.3 V supply
//! suffices "given the threshold voltages around 1 V, even with large input
//! currents" (modulation index above 1). The key structural facts preserved:
//! the class-AB overdrive grows as `√(1+mᵢ)` (device current at the signal
//! peak is `(1+mᵢ)·I_Q`), and the supply must cover both branches.
//!
//! For the class-A baseline the signal current may not exceed the bias
//! (`mᵢ ≤ 1`), so handling the same peak current requires a quiescent
//! current at least equal to the peak — the power comparison behind the
//! paper's "more power efficient realization" claim, quantified in
//! [`HeadroomBudget::class_a_equivalent_bias`].

use crate::units::{Amps, Volts};
use crate::AnalogError;

/// Saturation-voltage budget of the class-AB cell of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadroomBudget {
    /// Overdrive of the PMOS bias transistor `TP`.
    pub vov_tp: Volts,
    /// Overdrive of the grounded-gate transistor `TG`.
    pub vov_tg: Volts,
    /// Overdrive of the cascode transistor `TC`.
    pub vov_tc: Volts,
    /// Overdrive of the bottom bias transistor `TN`.
    pub vov_tn: Volts,
    /// Quiescent overdrive of the memory transistors `MN`/`MP`.
    pub vov_memory: Volts,
    /// Magnitude of the PMOS memory transistor threshold.
    pub vt_mp: Volts,
    /// NMOS memory transistor threshold.
    pub vt_mn: Volts,
}

impl HeadroomBudget {
    /// A budget representative of the paper's 0.8 µm, 3.3 V design:
    /// |VT| ≈ 0.9/0.8 V, bias overdrives of 0.2 V, memory overdrive 0.25 V.
    #[must_use]
    pub fn paper_08um() -> Self {
        HeadroomBudget {
            vov_tp: Volts(0.2),
            vov_tg: Volts(0.2),
            vov_tc: Volts(0.2),
            vov_tn: Volts(0.2),
            vov_memory: Volts(0.25),
            vt_mp: Volts(0.9),
            vt_mn: Volts(0.8),
        }
    }

    /// Validates that every entry is positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] otherwise.
    pub fn validate(&self) -> Result<(), AnalogError> {
        let entries = [
            self.vov_tp,
            self.vov_tg,
            self.vov_tc,
            self.vov_tn,
            self.vov_memory,
            self.vt_mp,
            self.vt_mn,
        ];
        if entries.iter().any(|v| !(v.0 > 0.0) || !v.0.is_finite()) {
            return Err(AnalogError::InvalidParameter {
                name: "budget",
                constraint: "all overdrives and thresholds must be positive and finite",
            });
        }
        Ok(())
    }

    /// Eq. (1): minimum supply demanded by the GGA bias branch at signal
    /// modulation index `mi` (peak signal current over quiescent current).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a negative `mi` or an
    /// invalid budget.
    pub fn vdd_min_bias_branch(&self, mi: f64) -> Result<Volts, AnalogError> {
        self.validate()?;
        check_mi(mi)?;
        let swing = ((1.0 + mi).sqrt() + 1.0) * self.vov_memory.0;
        Ok(Volts(
            self.vov_tp.0 + self.vov_tg.0 + self.vov_tc.0 + self.vov_tn.0 + swing,
        ))
    }

    /// Eq. (2): minimum supply demanded by the memory branch at modulation
    /// index `mi` — both thresholds plus both peak overdrives.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for a negative `mi` or an
    /// invalid budget.
    pub fn vdd_min_memory_branch(&self, mi: f64) -> Result<Volts, AnalogError> {
        self.validate()?;
        check_mi(mi)?;
        let peak_ov = (1.0 + mi).sqrt() * self.vov_memory.0;
        Ok(Volts(self.vt_mp.0 + self.vt_mn.0 + 2.0 * peak_ov))
    }

    /// The overall minimum supply: the larger of Eqs. (1) and (2).
    ///
    /// # Errors
    ///
    /// See [`HeadroomBudget::vdd_min_bias_branch`].
    pub fn vdd_min(&self, mi: f64) -> Result<Volts, AnalogError> {
        Ok(self
            .vdd_min_bias_branch(mi)?
            .max(self.vdd_min_memory_branch(mi)?))
    }

    /// Whether the cell operates at supply `vdd` and modulation index `mi`.
    ///
    /// # Errors
    ///
    /// See [`HeadroomBudget::vdd_min_bias_branch`].
    pub fn is_feasible(&self, vdd: Volts, mi: f64) -> Result<bool, AnalogError> {
        Ok(self.vdd_min(mi)?.0 <= vdd.0)
    }

    /// The largest modulation index sustainable at supply `vdd`, found by
    /// bisection (0 if even `mi = 0` does not fit; capped at 100).
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidParameter`] for an invalid budget.
    pub fn max_modulation_index(&self, vdd: Volts) -> Result<f64, AnalogError> {
        self.validate()?;
        if !self.is_feasible(vdd, 0.0)? {
            return Ok(0.0);
        }
        let (mut lo, mut hi) = (0.0f64, 100.0f64);
        if self.is_feasible(vdd, hi)? {
            return Ok(hi);
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.is_feasible(vdd, mid)? {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// The quiescent bias a **class-A** cell needs to handle the same peak
    /// signal current `i_peak`: class A requires `I_bias ≥ i_peak`, whereas
    /// the class-AB cell handles it with `I_Q = i_peak / mi`. The ratio of
    /// the two is the paper's power-efficiency argument.
    #[must_use]
    pub fn class_a_equivalent_bias(i_peak: Amps) -> Amps {
        i_peak.abs()
    }
}

fn check_mi(mi: f64) -> Result<(), AnalogError> {
    if !(mi >= 0.0) || !mi.is_finite() {
        return Err(AnalogError::InvalidParameter {
            name: "mi",
            constraint: "modulation index must be finite and non-negative",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budget_fits_3v3_with_large_signals() {
        // The paper's claim: 3.3 V works with thresholds around 1 V even
        // with input currents exceeding the bias (mi > 1).
        let b = HeadroomBudget::paper_08um();
        assert!(b.is_feasible(Volts(3.3), 1.0).unwrap());
        assert!(b.is_feasible(Volts(3.3), 2.0).unwrap());
        let max_mi = b.max_modulation_index(Volts(3.3)).unwrap();
        assert!(max_mi > 1.0, "max mi {max_mi}");
    }

    #[test]
    fn lower_supply_reduces_max_modulation_index() {
        let b = HeadroomBudget::paper_08um();
        let at_3v3 = b.max_modulation_index(Volts(3.3)).unwrap();
        let at_2v7 = b.max_modulation_index(Volts(2.7)).unwrap();
        assert!(at_3v3 > at_2v7);
    }

    #[test]
    fn infeasible_supply_gives_zero_index() {
        let b = HeadroomBudget::paper_08um();
        assert_eq!(b.max_modulation_index(Volts(1.0)).unwrap(), 0.0);
    }

    #[test]
    fn vdd_min_grows_with_sqrt_of_modulation() {
        let b = HeadroomBudget::paper_08um();
        let v0 = b.vdd_min_memory_branch(0.0).unwrap().0;
        let v3 = b.vdd_min_memory_branch(3.0).unwrap().0;
        // Overdrive term doubles: 2·Vov·(√4 − √1) = 2·0.25 = 0.5 V more.
        assert!((v3 - v0 - 0.5).abs() < 1e-12, "delta {}", v3 - v0);
    }

    #[test]
    fn overall_min_is_max_of_branches() {
        let b = HeadroomBudget::paper_08um();
        let mi = 1.5;
        let v = b.vdd_min(mi).unwrap();
        assert_eq!(
            v,
            b.vdd_min_bias_branch(mi)
                .unwrap()
                .max(b.vdd_min_memory_branch(mi).unwrap())
        );
    }

    #[test]
    fn invalid_inputs_rejected() {
        let b = HeadroomBudget::paper_08um();
        assert!(b.vdd_min(-1.0).is_err());
        assert!(b.vdd_min(f64::NAN).is_err());
        let mut bad = b;
        bad.vov_tg = Volts(0.0);
        assert!(bad.vdd_min(1.0).is_err());
    }

    #[test]
    fn class_a_needs_bias_at_least_peak() {
        let i_peak = Amps(30e-6);
        let class_a = HeadroomBudget::class_a_equivalent_bias(i_peak);
        assert_eq!(class_a, i_peak);
        // Class AB at mi = 3 gets away with a quarter of the bias.
        let class_ab_bias = Amps(i_peak.0 / 3.0);
        assert!(class_ab_bias.0 < class_a.0);
    }

    #[test]
    fn max_modulation_index_is_consistent_with_feasibility() {
        let b = HeadroomBudget::paper_08um();
        let vdd = Volts(3.3);
        let mi = b.max_modulation_index(vdd).unwrap();
        assert!(b.is_feasible(vdd, mi * 0.999).unwrap());
        assert!(!b.is_feasible(vdd, mi * 1.01 + 0.01).unwrap());
    }
}
