//! Transistor-level noise analysis: per-device thermal sources propagated
//! through the linearized network.
//!
//! Every MOSFET contributes a white drain-current noise source of PSD
//! `4·k·T·γ·g_m` (γ = 2/3 in saturation) between drain and source; every
//! resistor contributes `4·k·T/R`. For each device the AC system is solved
//! with a unit injection across that device and the probe's response
//! accumulates as `Σ Sᵢ·|Hᵢ(f)|²`. Integrating the output PSD over
//! frequency yields the rms noise — the netlist-level derivation of the
//! number the paper (and `si_core::noise`) obtains from the `kT/C`
//! shortcut.

use crate::ac::{AcAnalysis, AcProbe};
use crate::complexmat::C64;
use crate::engine::{Analysis, EngineWorkspace};
use crate::mna::Solution;
use crate::netlist::{Circuit, ElementKind, NodeId};
use crate::units::Volts;
use crate::AnalogError;
use crate::BOLTZMANN;

/// Noise-analysis configuration.
///
/// ```
/// use si_analog::ac::AcProbe;
/// use si_analog::acnoise::NoiseAnalysis;
/// use si_analog::dc::DcSolver;
/// use si_analog::parse::parse_netlist;
///
/// # fn main() -> Result<(), si_analog::AnalogError> {
/// // kT/C noise of an RC: ≈ 64 µV for 1 pF, independent of R.
/// let ckt = parse_netlist("I1 0 n 0\nR1 n 0 10k\nC1 n 0 1p\n")?;
/// let op = DcSolver::new().solve(&ckt)?;
/// let mut lookup = ckt.clone();
/// let n = lookup.node("n");
/// let noise = NoiseAnalysis::default()
///     .output_noise(&ckt, &op, &AcProbe::NodeVoltage(n), 1e2, 1e11, 300)?;
/// assert!((noise.total_rms - 64.3e-6).abs() < 5e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NoiseAnalysis {
    /// The underlying AC setup (switch phases, gmin, device caps).
    pub ac: AcAnalysis,
    /// Channel thermal-noise factor γ (2/3 for long-channel saturation).
    pub gamma: f64,
    /// Temperature in kelvin.
    pub temperature: f64,
}

impl Default for NoiseAnalysis {
    fn default() -> Self {
        NoiseAnalysis {
            ac: AcAnalysis::default(),
            gamma: 2.0 / 3.0,
            temperature: crate::ROOM_TEMPERATURE,
        }
    }
}

/// One identified noise source in the circuit.
#[derive(Debug, Clone)]
struct NoiseSource {
    /// Injection terminals (current flows from `from` to `to` externally).
    from: NodeId,
    to: NodeId,
    /// White PSD in A²/Hz.
    psd: f64,
    /// Element name, for per-contributor reporting.
    name: String,
}

/// The result of a noise integration.
#[derive(Debug, Clone)]
pub struct NoiseResult {
    /// The analysis grid in hertz.
    pub freqs_hz: Vec<f64>,
    /// Total output PSD at each grid frequency. Units: A²/Hz for a branch
    /// probe, V²/Hz for a node probe.
    pub psd: Vec<f64>,
    /// The rms noise integrated over the grid (A or V).
    pub total_rms: f64,
    /// Per-element integrated contributions `(name, rms)`, largest first.
    pub contributors: Vec<(String, f64)>,
}

impl NoiseAnalysis {
    fn collect_sources(&self, circuit: &Circuit, op: &[f64]) -> Vec<NoiseSource> {
        let mut sources = Vec::new();
        let four_kt = 4.0 * BOLTZMANN * self.temperature;
        for element in circuit.elements() {
            match element.kind() {
                ElementKind::Resistor { a, b, device } => {
                    sources.push(NoiseSource {
                        from: *a,
                        to: *b,
                        psd: four_kt / device.r.0,
                        name: element.name().to_string(),
                    });
                }
                ElementKind::Mosfet { terminals, params } => {
                    let eval = params.evaluate(
                        Volts(op[terminals.gate.index()] - op[terminals.source.index()]),
                        Volts(op[terminals.drain.index()] - op[terminals.source.index()]),
                        Volts(op[terminals.bulk.index()] - op[terminals.source.index()]),
                    );
                    let gm = eval.gm.abs().max(eval.gds.abs());
                    if gm > 0.0 {
                        sources.push(NoiseSource {
                            from: terminals.drain,
                            to: terminals.source,
                            psd: four_kt * self.gamma * gm,
                            name: element.name().to_string(),
                        });
                    }
                }
                _ => {}
            }
        }
        sources
    }

    /// Integrates the output noise at `probe` over a log grid from `f_lo`
    /// to `f_hi` with `points` frequencies.
    ///
    /// # Errors
    ///
    /// Propagates grid and solve errors.
    pub fn output_noise(
        &self,
        circuit: &Circuit,
        op: &Solution,
        probe: &AcProbe,
        f_lo: f64,
        f_hi: f64,
        points: usize,
    ) -> Result<NoiseResult, AnalogError> {
        let mut ws = EngineWorkspace::new();
        self.output_noise_with(circuit, op, probe, f_lo, f_hi, points, &mut ws)
    }

    /// Workspace-reusing variant of [`NoiseAnalysis::output_noise`]. The
    /// complex system is assembled and factored once per frequency (not
    /// once per source, as the allocating path used to) and every source's
    /// injection reuses the held factors and right-hand-side buffer.
    ///
    /// # Errors
    ///
    /// Same as [`NoiseAnalysis::output_noise`].
    #[allow(clippy::too_many_arguments)]
    pub fn output_noise_with(
        &self,
        circuit: &Circuit,
        op: &Solution,
        probe: &AcProbe,
        f_lo: f64,
        f_hi: f64,
        points: usize,
        ws: &mut EngineWorkspace,
    ) -> Result<NoiseResult, AnalogError> {
        let freqs = crate::ac::log_frequencies(f_lo, f_hi, points)?;
        let voltages = op.node_voltages();
        let sources = self.collect_sources(circuit, &voltages);
        let dim = circuit.mna_dimension();
        let n_nodes = circuit.node_count();

        let mut psd = vec![0.0; freqs.len()];
        let mut per_source = vec![vec![0.0; freqs.len()]; sources.len()];

        for (fi, &f) in freqs.iter().enumerate() {
            let omega = 2.0 * std::f64::consts::PI * f;
            ws.complex_factorize(circuit, |target| {
                self.ac.assemble_into(circuit, &voltages, omega, target)
            })?;
            for (si, src) in sources.iter().enumerate() {
                ws.crhs.clear();
                ws.crhs.resize(dim, C64::ZERO);
                if !src.to.is_ground() {
                    ws.crhs[src.to.index() - 1] += C64::ONE;
                }
                if !src.from.is_ground() {
                    ws.crhs[src.from.index() - 1] -= C64::ONE;
                }
                let x = ws.complex_solve_own_rhs()?;
                let h = match probe {
                    AcProbe::NodeVoltage(node) => {
                        if node.is_ground() {
                            C64::ZERO
                        } else {
                            x[node.index() - 1]
                        }
                    }
                    AcProbe::BranchCurrent(name) => {
                        let branch = circuit.branch_of(name)?;
                        x[n_nodes - 1 + branch]
                    }
                };
                let contribution = src.psd * h.norm_sqr();
                psd[fi] += contribution;
                per_source[si][fi] = contribution;
            }
        }

        // Trapezoidal integration over the (linear-frequency) grid.
        let integrate = |s: &[f64]| -> f64 {
            let mut acc = 0.0;
            for k in 1..freqs.len() {
                acc += 0.5 * (s[k] + s[k - 1]) * (freqs[k] - freqs[k - 1]);
            }
            acc.sqrt()
        };
        let total_rms = integrate(&psd);
        let mut contributors: Vec<(String, f64)> = sources
            .iter()
            .zip(&per_source)
            .map(|(src, s)| (src.name.clone(), integrate(s)))
            .collect();
        contributors.sort_by(|a, b| b.1.total_cmp(&a.1));

        Ok(NoiseResult {
            freqs_hz: freqs,
            psd,
            total_rms,
            contributors,
        })
    }
}

/// [`Analysis`] job: an integrated output-noise measurement (probe and
/// frequency span bundled with the analysis options and operating point).
#[derive(Debug, Clone)]
pub struct NoiseJob<'a> {
    /// Noise-analysis options.
    pub analysis: NoiseAnalysis,
    /// The operating point to linearize at.
    pub op: &'a Solution,
    /// What is read out.
    pub probe: AcProbe,
    /// Lower integration bound in hertz.
    pub f_lo: f64,
    /// Upper integration bound in hertz.
    pub f_hi: f64,
    /// Number of log-spaced grid points.
    pub points: usize,
}

impl Analysis for NoiseJob<'_> {
    type Output = NoiseResult;

    fn run_with(
        &self,
        circuit: &Circuit,
        ws: &mut EngineWorkspace,
    ) -> Result<NoiseResult, AnalogError> {
        self.analysis.output_noise_with(
            circuit,
            self.op,
            &self.probe,
            self.f_lo,
            self.f_hi,
            self.points,
            ws,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::DcSolver;
    use crate::units::{Amps, Farads, Ohms};

    #[test]
    fn resistor_kt_c_noise_is_recovered() {
        // An RC in parallel: integrated output voltage noise = sqrt(kT/C),
        // independent of R — the classic sanity check for a noise engine.
        let mut c = Circuit::new();
        let n = c.node("n");
        c.current_source("I0", Circuit::GROUND, n, Amps(0.0))
            .unwrap();
        c.resistor("R", n, Circuit::GROUND, Ohms(10e3)).unwrap();
        c.capacitor("C", n, Circuit::GROUND, Farads(1e-12)).unwrap();
        let op = DcSolver::new().solve(&c).unwrap();
        // Pole at 1/(2πRC) ≈ 15.9 MHz; integrate well past it.
        let result = NoiseAnalysis::default()
            .output_noise(&c, &op, &AcProbe::NodeVoltage(n), 1e2, 1e11, 600)
            .unwrap();
        let expected = (BOLTZMANN * 300.0 / 1e-12).sqrt(); // 64.3 µV
        assert!(
            (result.total_rms - expected).abs() / expected < 0.05,
            "measured {} V vs kT/C {} V",
            result.total_rms,
            expected
        );
        assert_eq!(result.contributors.len(), 1);
        assert_eq!(result.contributors[0].0, "R");
    }

    #[test]
    fn kt_c_noise_is_independent_of_resistance() {
        let build = |r: f64| {
            let mut c = Circuit::new();
            let n = c.node("n");
            c.current_source("I0", Circuit::GROUND, n, Amps(0.0))
                .unwrap();
            c.resistor("R", n, Circuit::GROUND, Ohms(r)).unwrap();
            c.capacitor("C", n, Circuit::GROUND, Farads(1e-12)).unwrap();
            let op = DcSolver::new().solve(&c).unwrap();
            NoiseAnalysis::default()
                .output_noise(&c, &op, &AcProbe::NodeVoltage(n), 1e2, 1e12, 800)
                .unwrap()
                .total_rms
        };
        let a = build(1e3);
        let b = build(100e3);
        assert!((a - b).abs() / a < 0.05, "kT/C violated: {a} vs {b}");
    }

    #[test]
    fn mos_device_noise_appears_at_diode_node() {
        // Diode-connected NMOS: output voltage noise PSD at low f is
        // 4kTγ·gm / gm² = 4kTγ/gm.
        let mut c = Circuit::new();
        let d = c.node("d");
        c.current_source("Ib", Circuit::GROUND, d, Amps(50e-6))
            .unwrap();
        let m = crate::device::MosParams::nmos_08um(20.0, 2.0).with_lambda(0.0);
        c.mosfet(
            "M1",
            crate::netlist::MosTerminals {
                drain: d,
                gate: d,
                source: Circuit::GROUND,
                bulk: Circuit::GROUND,
            },
            m,
        )
        .unwrap();
        let op = DcSolver::new().solve(&c).unwrap();
        let na = NoiseAnalysis::default();
        let result = na
            .output_noise(&c, &op, &AcProbe::NodeVoltage(d), 1e3, 1e4, 4)
            .unwrap();
        let gm = m.gm_at(Amps(50e-6)).0;
        let expected_psd = 4.0 * BOLTZMANN * 300.0 * (2.0 / 3.0) / gm;
        let measured_psd = result.psd[0];
        assert!(
            (measured_psd - expected_psd).abs() / expected_psd < 0.1,
            "psd {measured_psd} vs expected {expected_psd}"
        );
    }

    #[test]
    fn class_ab_cell_noise_is_in_the_budget_class() {
        // Integrate the memory-gate voltage noise of the Fig. 1 netlist and
        // refer it to current through the memory gm: it must land in the
        // same class as the kT/C budget (tens of nA), the paper's 33 nA
        // figure being the two-cell system total.
        let design = crate::cells::ClassAbCellDesign {
            hold_cap: Farads(0.1e-12),
            ..crate::cells::ClassAbCellDesign::default()
        };
        let cell = design.build().unwrap();
        let op = DcSolver::new()
            .with_initial_guess(cell.cell.initial_guess.clone())
            .solve(&cell.cell.circuit)
            .unwrap();
        let na = NoiseAnalysis::default();
        let result = na
            .output_noise(
                &cell.cell.circuit,
                &op,
                &AcProbe::NodeVoltage(cell.cell.gate),
                1e3,
                1e11,
                400,
            )
            .unwrap();
        // Refer gate-voltage noise to drain current via the memory gm.
        let gm_mem = 2.0 * design.iq.0 / design.vov_memory.0;
        let i_n = result.total_rms * gm_mem;
        assert!(
            (5e-9..150e-9).contains(&i_n),
            "cell noise current {} A outside the tens-of-nA class",
            i_n
        );
    }
}
