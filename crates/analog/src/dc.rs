//! DC operating-point analysis: damped Newton–Raphson with gmin stepping.
//!
//! The solver iterates the MNA system linearized at the current guess,
//! limiting per-iteration node-voltage moves (square-law devices diverge
//! under full Newton steps from a cold start). If plain Newton fails, gmin
//! stepping retries from a heavily-conducting circuit and relaxes the added
//! conductance decade by decade — enough robustness for the tens-of-devices
//! cells this workspace simulates.

use crate::engine::{Analysis, EngineWorkspace, NewtonSettings, StampSpec};
use crate::mna::Solution;
use crate::netlist::Circuit;
use crate::units::Volts;
use crate::AnalogError;

/// Configuration for the Newton operating-point solver.
///
/// ```
/// use si_analog::dc::DcSolver;
///
/// let solver = DcSolver::new().with_max_iterations(200);
/// ```
#[derive(Debug, Clone)]
pub struct DcSolver {
    max_iterations: usize,
    vtol: f64,
    max_step: f64,
    gmin: f64,
    phi1_high: bool,
    phi2_high: bool,
    initial: Option<Vec<f64>>,
}

impl Default for DcSolver {
    fn default() -> Self {
        DcSolver::new()
    }
}

impl DcSolver {
    /// A solver with typical settings: 100 iterations, 1 µV tolerance,
    /// 0.5 V damping limit, 1 pS gmin, φ1 closed.
    #[must_use]
    pub fn new() -> Self {
        DcSolver {
            max_iterations: 100,
            vtol: 1e-6,
            max_step: 0.5,
            gmin: 1e-12,
            phi1_high: true,
            phi2_high: false,
            initial: None,
        }
    }

    /// Sets the iteration budget.
    #[must_use]
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Sets the convergence tolerance on node-voltage updates, in volts.
    #[must_use]
    pub fn with_tolerance(mut self, vtol: f64) -> Self {
        self.vtol = vtol;
        self
    }

    /// Sets the DC clock-phase state seen by φ1/φ2 switches.
    #[must_use]
    pub fn with_phases(mut self, phi1_high: bool, phi2_high: bool) -> Self {
        self.phi1_high = phi1_high;
        self.phi2_high = phi2_high;
        self
    }

    /// Supplies an initial guess for all node voltages (index 0 = ground,
    /// which must be 0).
    #[must_use]
    pub fn with_initial_guess(mut self, node_voltages: Vec<f64>) -> Self {
        self.initial = Some(node_voltages);
        self
    }

    fn newton_settings(&self) -> NewtonSettings {
        NewtonSettings {
            max_iterations: self.max_iterations,
            vtol: self.vtol,
            max_step: self.max_step,
        }
    }

    fn stamp_spec(&self) -> StampSpec<'static> {
        StampSpec {
            phi1_high: self.phi1_high,
            phi2_high: self.phi2_high,
            ..StampSpec::default()
        }
    }

    /// Solves for the operating point.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::NoConvergence`] if Newton and gmin stepping
    /// both fail, [`AnalogError::SingularMatrix`] for structurally singular
    /// circuits, or parameter errors from assembly.
    pub fn solve(&self, circuit: &Circuit) -> Result<Solution, AnalogError> {
        let mut ws = EngineWorkspace::for_circuit(circuit);
        self.solve_with(circuit, &mut ws)
    }

    /// Solves for the operating point, reusing the caller's workspace
    /// buffers — the allocation-free entry point for tight loops.
    ///
    /// # Errors
    ///
    /// Same as [`DcSolver::solve`].
    pub fn solve_with(
        &self,
        circuit: &Circuit,
        ws: &mut EngineWorkspace,
    ) -> Result<Solution, AnalogError> {
        match &self.initial {
            Some(guess) => self.solve_from_with(circuit, guess, ws),
            None => {
                let start = vec![0.0; circuit.node_count()];
                self.solve_from_with(circuit, &start, ws)
            }
        }
    }

    /// Solves for the operating point from an explicit starting guess
    /// (full node-voltage vector, ground at index 0), reusing the caller's
    /// workspace. Sweeps call this to warm-start each point from the
    /// previous solution without cloning the solver.
    ///
    /// # Errors
    ///
    /// Same as [`DcSolver::solve`], plus
    /// [`AnalogError::InvalidParameter`] for a wrong-length guess.
    pub fn solve_from_with(
        &self,
        circuit: &Circuit,
        start: &[f64],
        ws: &mut EngineWorkspace,
    ) -> Result<Solution, AnalogError> {
        if start.len() != circuit.node_count() {
            return Err(AnalogError::InvalidParameter {
                name: "initial",
                constraint: "guess length must equal circuit node count",
            });
        }
        let settings = self.newton_settings();
        let spec = self.stamp_spec();

        // Plain Newton first.
        match ws.newton(circuit, &spec, &settings, self.gmin, start) {
            Ok(()) => return Ok(ws.solution()),
            Err(AnalogError::NoConvergence { .. }) | Err(AnalogError::SingularMatrix { .. }) => {}
            Err(e) => return Err(e),
        }

        // gmin stepping: converge an easy (leaky) circuit, then tighten.
        let mut guess = start.to_vec();
        let mut gmin = 1e-2;
        let mut last_err = AnalogError::NoConvergence {
            iterations: 0,
            residual: f64::INFINITY,
            gmin: self.gmin,
            residual_history: Vec::new(),
        };
        while gmin >= self.gmin * 0.99 {
            ws.probe_event(|p| p.gmin_level(gmin));
            match ws.newton(circuit, &spec, &settings, gmin, &guess) {
                Ok(()) => {
                    guess.clear();
                    guess.extend_from_slice(ws.node_voltages());
                    if gmin <= self.gmin * 1.01 {
                        return Ok(ws.solution());
                    }
                }
                Err(e) => last_err = e,
            }
            gmin = (gmin / 10.0).max(self.gmin);
            if gmin == self.gmin {
                // One final attempt at the target gmin. This branch must
                // fire for *every* failure kind: a matrix that stays
                // exactly singular at all gmin levels (e.g. duplicate
                // voltage-source branch rows) would otherwise pin the
                // ladder at the floor and spin forever.
                ws.probe_event(|p| p.gmin_level(gmin));
                ws.newton(circuit, &spec, &settings, gmin, &guess)?;
                return Ok(ws.solution());
            }
        }
        Err(last_err)
    }
}

impl Analysis for DcSolver {
    type Output = Solution;

    fn run_with(
        &self,
        circuit: &Circuit,
        ws: &mut EngineWorkspace,
    ) -> Result<Solution, AnalogError> {
        self.solve_with(circuit, ws)
    }
}

/// Sweeps the DC value of one current source and records an output quantity
/// at each point, reusing each solution as the next initial guess.
///
/// `read` receives the converged solution for every sweep value; its returns
/// are collected in order. The circuit is cloned once, the solver is built
/// once, and every point after the first warm-starts from the previous
/// solution inside one reused [`EngineWorkspace`] — no per-point cloning.
///
/// A point whose warm start diverges is retried from the cold start (the
/// solver's initial guess, or all zeros) and the rejection is recorded on
/// the workspace probe as `warm_start_rejected` — a stale seed never fails
/// the whole sweep. Only a point that also fails from cold propagates its
/// error.
///
/// # Errors
///
/// Propagates solver errors; the sweep stops at the first point that fails
/// from both the warm and the cold start.
pub fn sweep_current_source<T>(
    circuit: &Circuit,
    source_name: &str,
    values: &[crate::units::Amps],
    solver: &DcSolver,
    mut read: impl FnMut(&Solution) -> T,
) -> Result<Vec<T>, AnalogError> {
    let mut ws = EngineWorkspace::for_circuit(circuit);
    sweep_current_source_with(circuit, source_name, values, solver, &mut ws, &mut read)
}

/// [`sweep_current_source`] against a caller-provided workspace, so sweeps
/// compose with an installed telemetry probe and with outer batch drivers.
///
/// # Errors
///
/// As [`sweep_current_source`].
pub fn sweep_current_source_with<T>(
    circuit: &Circuit,
    source_name: &str,
    values: &[crate::units::Amps],
    solver: &DcSolver,
    ws: &mut EngineWorkspace,
    read: &mut impl FnMut(&Solution) -> T,
) -> Result<Vec<T>, AnalogError> {
    let mut out = Vec::with_capacity(values.len());
    let mut ckt = circuit.clone();
    let cold = match &solver.initial {
        Some(g) => g.clone(),
        None => vec![0.0; circuit.node_count()],
    };
    let mut guess = cold.clone();
    for (k, &value) in values.iter().enumerate() {
        set_current_source(&mut ckt, source_name, value)?;
        if k > 0 {
            ws.probe_event(crate::telemetry::Probe::warm_start);
        }
        let sol = match solver.solve_from_with(&ckt, &guess, ws) {
            Ok(sol) => sol,
            Err(AnalogError::NoConvergence { .. } | AnalogError::SingularMatrix { .. })
                if k > 0 =>
            {
                // The previous point's solution was a bad seed here; retry
                // from cold rather than failing the sweep.
                ws.probe_event(crate::telemetry::Probe::warm_start_rejected);
                solver.solve_from_with(&ckt, &cold, ws)?
            }
            Err(e) => return Err(e),
        };
        guess.clear();
        guess.extend_from_slice(ws.node_voltages());
        out.push(read(&sol));
    }
    Ok(out)
}

/// Replaces the DC value of a named current source in place.
///
/// # Errors
///
/// Returns [`AnalogError::UnknownElement`] if the element is missing or not
/// a current source.
pub fn set_current_source(
    circuit: &mut Circuit,
    name: &str,
    value: crate::units::Amps,
) -> Result<(), AnalogError> {
    circuit.update_current_source(name, crate::device::Waveform::Dc(value.0))
}

/// Measures the voltage difference between two nodes of a solution.
#[must_use]
pub fn differential_voltage(
    sol: &Solution,
    pos: crate::netlist::NodeId,
    neg: crate::netlist::NodeId,
) -> Volts {
    sol.voltage(pos) - sol.voltage(neg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::mos::MosParams;
    use crate::netlist::MosTerminals;
    use crate::units::{Amps, Ohms};

    #[test]
    fn linear_circuit_converges_in_one_step() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.voltage_source("V", a, Circuit::GROUND, Volts(2.0))
            .unwrap();
        c.resistor("R", a, Circuit::GROUND, Ohms(1e3)).unwrap();
        let sol = DcSolver::new().solve(&c).unwrap();
        assert!((sol.voltage(a).0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn diode_connected_nmos_settles_at_vgs_for_bias() {
        // Current source pushes 50 µA into a diode-connected NMOS.
        let mut c = Circuit::new();
        let d = c.node("d");
        c.current_source("Ib", Circuit::GROUND, d, Amps(50e-6))
            .unwrap();
        let m = MosParams::nmos_08um(20.0, 2.0).with_lambda(0.0);
        c.mosfet(
            "M1",
            MosTerminals {
                drain: d,
                gate: d,
                source: Circuit::GROUND,
                bulk: Circuit::GROUND,
            },
            m,
        )
        .unwrap();
        let sol = DcSolver::new().solve(&c).unwrap();
        let expected = m.vt0.0 + m.saturation_overdrive(Amps(50e-6)).0;
        assert!(
            (sol.voltage(d).0 - expected).abs() < 1e-4,
            "vgs {} vs expected {expected}",
            sol.voltage(d)
        );
    }

    #[test]
    fn nmos_common_source_amplifier_operating_point() {
        // Vdd - R - drain, gate driven at fixed bias: check Id·R drop.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let d = c.node("d");
        let g = c.node("g");
        c.voltage_source("Vdd", vdd, Circuit::GROUND, Volts(3.3))
            .unwrap();
        c.voltage_source("Vg", g, Circuit::GROUND, Volts(1.2))
            .unwrap();
        c.resistor("Rd", vdd, d, Ohms(10e3)).unwrap();
        let m = MosParams::nmos_08um(10.0, 1.0).with_lambda(0.0);
        c.mosfet(
            "M1",
            MosTerminals {
                drain: d,
                gate: g,
                source: Circuit::GROUND,
                bulk: Circuit::GROUND,
            },
            m,
        )
        .unwrap();
        let sol = DcSolver::new().solve(&c).unwrap();
        // id = β/2 (1.2-0.8)² = 0.5e-3·0.16 = 80 µA ⇒ vd = 3.3 − 0.8 = 2.5 V.
        let id = m.beta() / 2.0 * 0.4 * 0.4;
        let expected = 3.3 - id * 10e3;
        assert!(
            (sol.voltage(d).0 - expected).abs() < 1e-3,
            "vd {} vs expected {expected}",
            sol.voltage(d)
        );
    }

    #[test]
    fn pmos_current_mirror_copies_current() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let ref_node = c.node("ref");
        let out = c.node("out");
        c.voltage_source("Vdd", vdd, Circuit::GROUND, Volts(3.3))
            .unwrap();
        // Reference branch pulls 20 µA out of the diode-connected PMOS.
        c.current_source("Iref", ref_node, Circuit::GROUND, Amps(20e-6))
            .unwrap();
        let p = MosParams::pmos_08um(40.0, 2.0).with_lambda(0.0);
        c.mosfet(
            "Mp1",
            MosTerminals {
                drain: ref_node,
                gate: ref_node,
                source: vdd,
                bulk: vdd,
            },
            p,
        )
        .unwrap();
        c.mosfet(
            "Mp2",
            MosTerminals {
                drain: out,
                gate: ref_node,
                source: vdd,
                bulk: vdd,
            },
            p,
        )
        .unwrap();
        // Output branch: ammeter into a 1 V hold keeps Mp2 saturated.
        let sink = c.node("sink");
        c.ammeter("Am", out, sink).unwrap();
        c.voltage_source("Vh", sink, Circuit::GROUND, Volts(1.0))
            .unwrap();
        let sol = DcSolver::new().solve(&c).unwrap();
        let i_out = sol.branch_current(c.branch_of("Am").unwrap());
        assert!(
            (i_out.0 - 20e-6).abs() < 0.2e-6,
            "mirror output {} A",
            i_out.0
        );
    }

    #[test]
    fn no_convergence_is_reported_for_absurd_budget() {
        let mut c = Circuit::new();
        let d = c.node("d");
        c.current_source("I", Circuit::GROUND, d, Amps(1e-3))
            .unwrap();
        let m = MosParams::nmos_08um(10.0, 1.0);
        c.mosfet(
            "M1",
            MosTerminals {
                drain: d,
                gate: d,
                source: Circuit::GROUND,
                bulk: Circuit::GROUND,
            },
            m,
        )
        .unwrap();
        let r = DcSolver::new().with_max_iterations(1).solve(&c);
        assert!(matches!(r, Err(AnalogError::NoConvergence { .. })));
    }

    #[test]
    fn exactly_singular_system_terminates_with_an_error() {
        // Two identical voltage sources in parallel: the branch rows stay
        // exactly singular at every gmin level, so no amount of stepping
        // can help. The ladder must report the failure, not spin forever
        // (regression: the floor-gmin escape only fired for
        // `NoConvergence`, and `SingularMatrix` looped).
        let mut c = Circuit::new();
        let a = c.node("a");
        c.voltage_source("V1", a, Circuit::GROUND, Volts(3.3))
            .unwrap();
        c.voltage_source("V2", a, Circuit::GROUND, Volts(3.3))
            .unwrap();
        let r = DcSolver::new().solve(&c);
        assert!(
            matches!(r, Err(AnalogError::SingularMatrix { .. })),
            "{r:?}"
        );
    }

    #[test]
    fn bad_initial_guess_length_is_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R", a, Circuit::GROUND, Ohms(1.0)).unwrap();
        let r = DcSolver::new().with_initial_guess(vec![0.0]).solve(&c);
        assert!(matches!(r, Err(AnalogError::InvalidParameter { .. })));
    }

    #[test]
    fn sweep_reuses_previous_solution() {
        let mut c = Circuit::new();
        let d = c.node("d");
        c.current_source("Ib", Circuit::GROUND, d, Amps(10e-6))
            .unwrap();
        let m = MosParams::nmos_08um(20.0, 2.0).with_lambda(0.0);
        c.mosfet(
            "M1",
            MosTerminals {
                drain: d,
                gate: d,
                source: Circuit::GROUND,
                bulk: Circuit::GROUND,
            },
            m,
        )
        .unwrap();
        let values: Vec<Amps> = (1..=5).map(|k| Amps(k as f64 * 10e-6)).collect();
        let vgs = sweep_current_source(&c, "Ib", &values, &DcSolver::new(), |sol| sol.voltage(d).0)
            .unwrap();
        // Monotonically increasing vgs with current.
        for w in vgs.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Square-law check at the last point.
        let expected = m.vt0.0 + m.saturation_overdrive(Amps(50e-6)).0;
        assert!((vgs[4] - expected).abs() < 1e-3);
    }

    fn diode_cell() -> (Circuit, crate::netlist::NodeId) {
        let mut c = Circuit::new();
        let d = c.node("d");
        c.current_source("Ib", Circuit::GROUND, d, Amps(10e-6))
            .unwrap();
        let m = MosParams::nmos_08um(20.0, 2.0).with_lambda(0.0);
        c.mosfet(
            "M1",
            MosTerminals {
                drain: d,
                gate: d,
                source: Circuit::GROUND,
                bulk: Circuit::GROUND,
            },
            m,
        )
        .unwrap();
        (c, d)
    }

    #[test]
    fn sweep_records_warm_start_telemetry() {
        let (c, d) = diode_cell();
        let values: Vec<Amps> = (1..=5).map(|k| Amps(k as f64 * 10e-6)).collect();
        let mut ws = EngineWorkspace::for_circuit(&c);
        ws.enable_stats();
        let vgs = sweep_current_source_with(
            &c,
            "Ib",
            &values,
            &DcSolver::new(),
            &mut ws,
            &mut |sol: &Solution| sol.voltage(d).0,
        )
        .unwrap();
        assert_eq!(vgs.len(), 5);
        let stats = ws.stats().unwrap();
        assert_eq!(stats.warm_starts, 4, "every point after the first is warm");
        assert_eq!(stats.warm_start_rejected, 0);
        // Identical to the workspace-free entry point.
        let plain =
            sweep_current_source(&c, "Ib", &values, &DcSolver::new(), |sol| sol.voltage(d).0)
                .unwrap();
        for (a, b) in vgs.iter().zip(&plain) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn sweep_retries_rejected_warm_start_from_cold_before_failing() {
        // Point 2 pulls current *out* of the diode-connected NMOS: no DC
        // solution exists, so the warm attempt diverges, the sweep records
        // the rejection, retries from cold, and only then propagates the
        // cold failure.
        let (c, d) = diode_cell();
        let values = [Amps(10e-6), Amps(-10e-6)];
        let mut ws = EngineWorkspace::for_circuit(&c);
        ws.enable_stats();
        let solver = DcSolver::new().with_max_iterations(20);
        let r = sweep_current_source_with(
            &c,
            "Ib",
            &values,
            &solver,
            &mut ws,
            &mut |sol: &Solution| sol.voltage(d).0,
        );
        assert!(matches!(r, Err(AnalogError::NoConvergence { .. })));
        let stats = ws.stats().unwrap();
        assert_eq!(stats.warm_starts, 1);
        assert_eq!(
            stats.warm_start_rejected, 1,
            "divergent warm start must be recorded before the cold retry"
        );
    }
}
