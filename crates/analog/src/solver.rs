//! The solver backend layer: one abstraction over the dense and sparse
//! linear-algebra paths, real and complex.
//!
//! Every analysis assembles an MNA system and factors it; *how* is a
//! per-circuit decision this module owns. Tiny circuits (the paper's
//! individual cells are a dozen unknowns) keep the dense LU fast path,
//! whose numerics are untouched — the engine's bit-identity contract with
//! the pre-backend implementation rides on the dense arms of
//! [`RealTarget`] / [`ComplexTarget`] calling the *same* dense kernels in
//! the same order. Large, sparse circuits (delay lines, modulators, cell
//! arrays) switch to [`crate::sparse::SparseLu`] with its cached symbolic
//! structure: the first factorization of a topology pays for the symbolic
//! analysis, and every later Newton iteration, gmin rung, transient step,
//! sweep point, or frequency point replays it numerically.
//!
//! The cutover is governed by [`BackendPolicy`]: automatic by dimension
//! and structural density, or forced either way (benchmarks and
//! equivalence tests force both and compare).

use crate::complexmat::{CMatrix, C64};
use crate::linalg::Matrix;
use crate::mna::{assemble_into_target, mna_pattern, StampContext};
use crate::netlist::Circuit;
use crate::sparse::{CscMatrix, RhsPanel, Scalar, SparseLu};
use crate::telemetry::{BackendKind, Probe};
use crate::AnalogError;

/// How the backend is selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum BackendMode {
    /// Choose by system dimension and structural density (the default).
    #[default]
    Auto,
    /// Always use the dense LU path.
    ForceDense,
    /// Always use the sparse structure-caching path.
    ForceSparse,
}

/// The backend-selection policy of a workspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendPolicy {
    /// Selection mode.
    pub mode: BackendMode,
    /// In [`BackendMode::Auto`], systems of this dimension or smaller stay
    /// dense — below roughly this size the dense kernel's tight loops beat
    /// any sparse bookkeeping, and every single-cell paper circuit falls
    /// here.
    pub dense_dim_cutoff: usize,
    /// In [`BackendMode::Auto`], larger systems go sparse only when the
    /// structural density (nonzeros over n²) is at or below this value.
    pub max_density: f64,
}

impl Default for BackendPolicy {
    fn default() -> Self {
        BackendPolicy {
            mode: BackendMode::Auto,
            dense_dim_cutoff: 32,
            max_density: 0.25,
        }
    }
}

/// Which backend a solver last factored with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ActiveBackend {
    /// Dense LU.
    #[default]
    Dense,
    /// Sparse LU with cached structure.
    Sparse,
}

/// Assembly destination for the real MNA system: the stamping code in
/// [`crate::mna`] is written once against this enum, and static dispatch
/// keeps the dense arm's operations identical to the pre-backend code.
#[derive(Debug)]
pub enum RealTarget<'a> {
    /// Stamp into a dense matrix.
    Dense(&'a mut Matrix),
    /// Stamp into a sparse matrix over a fixed pattern.
    Sparse(&'a mut CscMatrix<f64>),
}

impl RealTarget<'_> {
    /// Reshapes/zeroes the target for a `dim × dim` assembly.
    pub fn reset(&mut self, dim: usize) {
        match self {
            RealTarget::Dense(m) => m.resize_zeroed(dim, dim),
            RealTarget::Sparse(m) => {
                debug_assert_eq!(m.dim(), dim, "sparse pattern dimension mismatch");
                m.clear();
            }
        }
    }

    /// Adds `value` at `(i, j)`.
    #[inline]
    pub fn stamp(&mut self, i: usize, j: usize, value: f64) {
        match self {
            RealTarget::Dense(m) => m.stamp(i, j, value),
            RealTarget::Sparse(m) => m.stamp(i, j, value),
        }
    }
}

/// Assembly destination for the complex (AC / noise) MNA system.
#[derive(Debug)]
pub enum ComplexTarget<'a> {
    /// Stamp into a dense complex matrix.
    Dense(&'a mut CMatrix),
    /// Stamp into a sparse complex matrix over a fixed pattern.
    Sparse(&'a mut CscMatrix<C64>),
}

impl ComplexTarget<'_> {
    /// Reshapes/zeroes the target for a `dim × dim` assembly.
    pub fn reset(&mut self, dim: usize) {
        match self {
            ComplexTarget::Dense(m) => m.resize_zeroed(dim),
            ComplexTarget::Sparse(m) => {
                debug_assert_eq!(m.dim(), dim, "sparse pattern dimension mismatch");
                m.clear();
            }
        }
    }

    /// Adds `value` at `(i, j)`.
    #[inline]
    pub fn stamp(&mut self, i: usize, j: usize, value: C64) {
        match self {
            ComplexTarget::Dense(m) => m.stamp(i, j, value),
            ComplexTarget::Sparse(m) => m.stamp(i, j, value),
        }
    }
}

/// What one backend factorization did, for telemetry. Returned by the
/// solvers so the engine (which owns the probe) can report it without the
/// backend layer holding a probe reference.
#[derive(Debug, Clone, Copy)]
pub struct FactorEvent {
    /// Which backend factored.
    pub kind: BackendKind,
    /// Whether the sparse backend replayed cached structure (always false
    /// for dense).
    pub refactor: bool,
    /// Sparse symbolic-cache outcome; `None` for dense.
    pub cache: Option<bool>,
    /// `(matrix nonzeros, factor nonzeros)` for sparse; `None` for dense.
    pub structure: Option<(u64, u64)>,
}

impl FactorEvent {
    /// Reports this event to a probe.
    pub fn report(&self, p: &mut dyn Probe) {
        p.backend_factorization(self.kind, self.refactor);
        if let Some(hit) = self.cache {
            p.symbolic_cache(hit);
        }
        if let Some((nnz, factor_nnz)) = self.structure {
            p.matrix_structure(nnz, factor_nnz);
        }
    }
}

/// The sparse half of a solver: the assembled matrix over its cached
/// pattern, the factorization with its cached symbolic structure, and the
/// topology fingerprint that keys both.
#[derive(Debug, Clone)]
struct SparseState<S: Scalar> {
    fingerprint: u64,
    matrix: CscMatrix<S>,
    lu: SparseLu<S>,
}

impl<S: Scalar> SparseState<S> {
    fn for_circuit(circuit: &Circuit) -> Self {
        SparseState {
            fingerprint: circuit.structure_fingerprint(),
            matrix: CscMatrix::from_pattern(mna_pattern(circuit)),
            lu: SparseLu::new(),
        }
    }
}

/// Ensures `slot` holds sparse state for `circuit`'s topology, rebuilding
/// pattern and symbolic cache only when the fingerprint changed.
fn ensure_state<S: Scalar>(slot: &mut Option<SparseState<S>>, circuit: &Circuit) {
    let fp = circuit.structure_fingerprint();
    if slot.as_ref().is_none_or(|s| s.fingerprint != fp) {
        *slot = Some(SparseState::for_circuit(circuit));
    }
}

/// Whether `policy` sends this circuit to the sparse backend, creating or
/// refreshing the sparse state as a side effect when it does (and, for
/// [`BackendMode::Auto`], when the density check requires the pattern).
fn decide<S: Scalar>(
    slot: &mut Option<SparseState<S>>,
    circuit: &Circuit,
    dim: usize,
    policy: &BackendPolicy,
) -> bool {
    match policy.mode {
        BackendMode::ForceDense => false,
        BackendMode::ForceSparse => {
            ensure_state(slot, circuit);
            true
        }
        BackendMode::Auto => {
            if dim <= policy.dense_dim_cutoff {
                return false;
            }
            ensure_state(slot, circuit);
            let density = slot
                .as_ref()
                .expect("state ensured above")
                .matrix
                .pattern()
                .density();
            density <= policy.max_density
        }
    }
}

/// The real linear solver of a workspace: dense and sparse backends plus
/// the record of which one factored last.
#[derive(Debug, Clone)]
pub struct RealSolver {
    dense: Matrix,
    dense_perm: Vec<usize>,
    sparse: Option<SparseState<f64>>,
    active: ActiveBackend,
    dim: usize,
}

impl Default for RealSolver {
    fn default() -> Self {
        RealSolver::new()
    }
}

impl RealSolver {
    /// An empty solver.
    #[must_use]
    pub fn new() -> Self {
        RealSolver {
            dense: Matrix::zeros(0, 0),
            dense_perm: Vec::new(),
            sparse: None,
            active: ActiveBackend::Dense,
            dim: 0,
        }
    }

    /// The dimension of the last assembled system.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Which backend the last factorization used.
    #[must_use]
    pub fn active(&self) -> ActiveBackend {
        self.active
    }

    /// Pre-sizes the dense buffers for a `dim`-unknown system so the first
    /// solve allocates nothing once it starts iterating.
    pub fn reserve(&mut self, dim: usize) {
        self.dense.resize_zeroed(dim, dim);
        self.dense_perm.reserve(dim);
    }

    /// Assembles the MNA system linearized at `ctx` into the
    /// policy-selected backend and factors it, leaving the factors ready
    /// for [`Self::solve`] and the right-hand side in `rhs`.
    ///
    /// # Errors
    ///
    /// Propagates assembly and factorization errors.
    pub fn assemble_and_factor(
        &mut self,
        circuit: &Circuit,
        ctx: &StampContext<'_>,
        rhs: &mut Vec<f64>,
        policy: &BackendPolicy,
    ) -> Result<FactorEvent, AnalogError> {
        let dim = circuit.mna_dimension();
        self.dim = dim;
        if decide(&mut self.sparse, circuit, dim, policy) {
            let state = self.sparse.as_mut().expect("sparse state ensured");
            assemble_into_target(
                circuit,
                ctx,
                &mut RealTarget::Sparse(&mut state.matrix),
                rhs,
            )?;
            let replayed = state.lu.refactorize(&state.matrix)?;
            self.active = ActiveBackend::Sparse;
            Ok(FactorEvent {
                kind: BackendKind::SparseReal,
                refactor: replayed,
                cache: Some(replayed),
                structure: Some((
                    state.matrix.pattern().nnz() as u64,
                    state.lu.factor_nnz() as u64,
                )),
            })
        } else {
            assemble_into_target(circuit, ctx, &mut RealTarget::Dense(&mut self.dense), rhs)?;
            self.dense.factor_in_place(&mut self.dense_perm)?;
            self.active = ActiveBackend::Dense;
            Ok(FactorEvent {
                kind: BackendKind::DenseReal,
                refactor: false,
                cache: None,
                structure: None,
            })
        }
    }

    /// Solves the factored system for `b` into `x`.
    ///
    /// # Errors
    ///
    /// Propagates solve errors; must follow a successful
    /// [`Self::assemble_and_factor`].
    pub fn solve(&self, b: &[f64], x: &mut Vec<f64>) -> Result<(), AnalogError> {
        match self.active {
            ActiveBackend::Dense => self.dense.lu_solve_into(&self.dense_perm, b, x),
            ActiveBackend::Sparse => self
                .sparse
                .as_ref()
                .expect("sparse backend active without state")
                .lu
                .solve_into(b, x),
        }
    }

    /// Solves the factored system for a whole panel of right-hand sides —
    /// the batched counterpart of [`Self::solve`]. The sparse arm streams
    /// the factors once per block ([`crate::sparse::PANEL_BLOCK`]); the
    /// dense arm solves column by column with the same dense kernel, so
    /// either way each scenario's solution is bit-identical to a
    /// sequential [`Self::solve`] of that column.
    ///
    /// # Errors
    ///
    /// Propagates solve errors; must follow a successful
    /// [`Self::assemble_and_factor`].
    pub fn solve_panel(&self, b: &RhsPanel<f64>, x: &mut RhsPanel<f64>) -> Result<(), AnalogError> {
        match self.active {
            ActiveBackend::Dense => {
                x.reset(b.dim(), b.cols());
                let mut scratch = Vec::with_capacity(b.dim());
                for s in 0..b.cols() {
                    self.dense
                        .lu_solve_into(&self.dense_perm, b.col(s), &mut scratch)?;
                    x.col_mut(s).copy_from_slice(&scratch);
                }
                Ok(())
            }
            ActiveBackend::Sparse => self
                .sparse
                .as_ref()
                .expect("sparse backend active without state")
                .lu
                .solve_panel_into(b, x),
        }
    }
}

/// The complex linear solver of a workspace (AC / noise). Assembly is a
/// caller-supplied closure because each analysis stamps its own complex
/// system; the closure receives the policy-selected [`ComplexTarget`].
#[derive(Debug, Clone)]
pub struct ComplexSolver {
    dense: CMatrix,
    dense_perm: Vec<usize>,
    sparse: Option<SparseState<C64>>,
    active: ActiveBackend,
    dim: usize,
}

impl Default for ComplexSolver {
    fn default() -> Self {
        ComplexSolver::new()
    }
}

impl ComplexSolver {
    /// An empty solver.
    #[must_use]
    pub fn new() -> Self {
        ComplexSolver {
            dense: CMatrix::zeros(0),
            dense_perm: Vec::new(),
            sparse: None,
            active: ActiveBackend::Dense,
            dim: 0,
        }
    }

    /// The dimension of the last assembled system.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Which backend the last factorization used.
    #[must_use]
    pub fn active(&self) -> ActiveBackend {
        self.active
    }

    /// Runs `assemble` against the policy-selected backend target and
    /// factors the result, leaving the factors ready for [`Self::solve`].
    ///
    /// # Errors
    ///
    /// Propagates assembly and factorization errors.
    pub fn assemble_and_factor<F>(
        &mut self,
        circuit: &Circuit,
        policy: &BackendPolicy,
        assemble: F,
    ) -> Result<FactorEvent, AnalogError>
    where
        F: FnOnce(&mut ComplexTarget<'_>) -> Result<(), AnalogError>,
    {
        let dim = circuit.mna_dimension();
        self.dim = dim;
        if decide(&mut self.sparse, circuit, dim, policy) {
            let state = self.sparse.as_mut().expect("sparse state ensured");
            assemble(&mut ComplexTarget::Sparse(&mut state.matrix))?;
            let replayed = state.lu.refactorize(&state.matrix)?;
            self.active = ActiveBackend::Sparse;
            Ok(FactorEvent {
                kind: BackendKind::SparseComplex,
                refactor: replayed,
                cache: Some(replayed),
                structure: Some((
                    state.matrix.pattern().nnz() as u64,
                    state.lu.factor_nnz() as u64,
                )),
            })
        } else {
            assemble(&mut ComplexTarget::Dense(&mut self.dense))?;
            self.dense.factor_in_place(&mut self.dense_perm)?;
            self.active = ActiveBackend::Dense;
            Ok(FactorEvent {
                kind: BackendKind::DenseComplex,
                refactor: false,
                cache: None,
                structure: None,
            })
        }
    }

    /// Solves the factored system for `b` into `x`.
    ///
    /// # Errors
    ///
    /// Propagates solve errors; must follow a successful
    /// [`Self::assemble_and_factor`].
    pub fn solve(&self, b: &[C64], x: &mut Vec<C64>) -> Result<(), AnalogError> {
        match self.active {
            ActiveBackend::Dense => self.dense.lu_solve_into(&self.dense_perm, b, x),
            ActiveBackend::Sparse => self
                .sparse
                .as_ref()
                .expect("sparse backend active without state")
                .lu
                .solve_into(b, x),
        }
    }

    /// Panel counterpart of [`Self::solve`]; see
    /// [`RealSolver::solve_panel`] for the bit-identity contract.
    ///
    /// # Errors
    ///
    /// Propagates solve errors; must follow a successful
    /// [`Self::assemble_and_factor`].
    pub fn solve_panel(&self, b: &RhsPanel<C64>, x: &mut RhsPanel<C64>) -> Result<(), AnalogError> {
        match self.active {
            ActiveBackend::Dense => {
                x.reset(b.dim(), b.cols());
                let mut scratch = Vec::with_capacity(b.dim());
                for s in 0..b.cols() {
                    self.dense
                        .lu_solve_into(&self.dense_perm, b.col(s), &mut scratch)?;
                    x.col_mut(s).copy_from_slice(&scratch);
                }
                Ok(())
            }
            ActiveBackend::Sparse => self
                .sparse
                .as_ref()
                .expect("sparse backend active without state")
                .lu
                .solve_panel_into(b, x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Amps, Ohms};

    /// An n-stage resistive ladder driven by a current source: dimension n,
    /// tridiagonal structure.
    fn ladder(stages: usize) -> Circuit {
        let mut c = Circuit::new();
        let mut prev = Circuit::GROUND;
        for k in 0..stages {
            let n = c.node(&format!("n{k}"));
            c.resistor(&format!("R{k}"), prev, n, Ohms(1e3)).unwrap();
            c.resistor(&format!("Rg{k}"), n, Circuit::GROUND, Ohms(1e4))
                .unwrap();
            prev = n;
        }
        let n0 = c.node("n0");
        c.current_source("Iin", Circuit::GROUND, n0, Amps(1e-3))
            .unwrap();
        c
    }

    fn solve_with(policy: &BackendPolicy, circuit: &Circuit) -> (Vec<f64>, ActiveBackend) {
        let guess = vec![0.0; circuit.node_count()];
        let ctx = StampContext::dc(&guess);
        let mut solver = RealSolver::new();
        let mut rhs = Vec::new();
        solver
            .assemble_and_factor(circuit, &ctx, &mut rhs, policy)
            .unwrap();
        let mut x = Vec::new();
        solver.solve(&rhs, &mut x).unwrap();
        (x, solver.active())
    }

    #[test]
    fn auto_keeps_small_circuits_dense_and_large_sparse() {
        let policy = BackendPolicy::default();
        let (_, small_backend) = solve_with(&policy, &ladder(8));
        assert_eq!(small_backend, ActiveBackend::Dense);
        let (_, large_backend) = solve_with(&policy, &ladder(60));
        assert_eq!(large_backend, ActiveBackend::Sparse);
    }

    #[test]
    fn forced_backends_agree_on_the_solution() {
        let circuit = ladder(40);
        let (dense_x, db) = solve_with(
            &BackendPolicy {
                mode: BackendMode::ForceDense,
                ..BackendPolicy::default()
            },
            &circuit,
        );
        let (sparse_x, sb) = solve_with(
            &BackendPolicy {
                mode: BackendMode::ForceSparse,
                ..BackendPolicy::default()
            },
            &circuit,
        );
        assert_eq!(db, ActiveBackend::Dense);
        assert_eq!(sb, ActiveBackend::Sparse);
        assert_eq!(dense_x.len(), sparse_x.len());
        for (u, v) in dense_x.iter().zip(&sparse_x) {
            assert!((u - v).abs() < 1e-9 * u.abs().max(1.0), "{u} vs {v}");
        }
    }

    #[test]
    fn symbolic_cache_survives_value_changes_and_resets_on_topology_change() {
        let circuit = ladder(50);
        let guess = vec![0.0; circuit.node_count()];
        let ctx = StampContext::dc(&guess);
        let policy = BackendPolicy {
            mode: BackendMode::ForceSparse,
            ..BackendPolicy::default()
        };
        let mut solver = RealSolver::new();
        let mut rhs = Vec::new();
        let first = solver
            .assemble_and_factor(&circuit, &ctx, &mut rhs, &policy)
            .unwrap();
        assert_eq!(first.cache, Some(false), "first factorization is a miss");
        let second = solver
            .assemble_and_factor(&circuit, &ctx, &mut rhs, &policy)
            .unwrap();
        assert_eq!(second.cache, Some(true), "same topology replays");
        assert!(second.refactor);

        let other = ladder(51);
        let other_guess = vec![0.0; other.node_count()];
        let other_ctx = StampContext::dc(&other_guess);
        let third = solver
            .assemble_and_factor(&other, &other_ctx, &mut rhs, &policy)
            .unwrap();
        assert_eq!(third.cache, Some(false), "new topology is a miss");
    }

    #[test]
    fn dense_cutoff_is_respected_in_auto() {
        let circuit = ladder(60);
        let policy = BackendPolicy {
            dense_dim_cutoff: 1000,
            ..BackendPolicy::default()
        };
        let (_, backend) = solve_with(&policy, &circuit);
        assert_eq!(backend, ActiveBackend::Dense);
    }

    #[test]
    fn panel_solve_matches_sequential_on_both_backends() {
        let circuit = ladder(40);
        let guess = vec![0.0; circuit.node_count()];
        let ctx = StampContext::dc(&guess);
        for mode in [BackendMode::ForceDense, BackendMode::ForceSparse] {
            let policy = BackendPolicy {
                mode,
                ..BackendPolicy::default()
            };
            let mut solver = RealSolver::new();
            let mut rhs = Vec::new();
            solver
                .assemble_and_factor(&circuit, &ctx, &mut rhs, &policy)
                .unwrap();
            // A scenario family: the assembled RHS scaled per scenario.
            let columns: Vec<Vec<f64>> = (0..11)
                .map(|s| rhs.iter().map(|v| v * (1.0 + 0.1 * s as f64)).collect())
                .collect();
            let b = RhsPanel::from_columns(&columns).unwrap();
            let mut x = RhsPanel::default();
            solver.solve_panel(&b, &mut x).unwrap();
            for (s, column) in columns.iter().enumerate() {
                let mut seq = Vec::new();
                solver.solve(column, &mut seq).unwrap();
                for (u, v) in x.col(s).iter().zip(&seq) {
                    assert_eq!(u.to_bits(), v.to_bits(), "{mode:?} scenario {s}");
                }
            }
        }
    }

    #[test]
    fn factor_event_reports_structure() {
        let circuit = ladder(40);
        let guess = vec![0.0; circuit.node_count()];
        let ctx = StampContext::dc(&guess);
        let policy = BackendPolicy {
            mode: BackendMode::ForceSparse,
            ..BackendPolicy::default()
        };
        let mut solver = RealSolver::new();
        let mut rhs = Vec::new();
        let event = solver
            .assemble_and_factor(&circuit, &ctx, &mut rhs, &policy)
            .unwrap();
        assert_eq!(event.kind, BackendKind::SparseReal);
        let (nnz, factor_nnz) = event.structure.unwrap();
        assert!(nnz > 0 && factor_nnz >= nnz / 2);

        let mut stats = crate::telemetry::EngineStats::new();
        event.report(&mut stats);
        assert_eq!(stats.sparse_real_factorizations, 1);
        assert_eq!(stats.symbolic_cache_misses, 1);
        assert_eq!(stats.max_matrix_nonzeros, nnz);
    }
}
