//! Deterministic parallel fan-out for sweeps.
//!
//! [`parallel_map`] runs one closure per sweep point across a pool of
//! scoped worker threads ([`std::thread::scope`], no external runtime).
//! Each worker owns private per-thread state built by an `init` closure —
//! typically an [`crate::engine::EngineWorkspace`] or a freshly built
//! simulator — so no locking happens on the hot path. Results are tagged
//! with their input index and re-sorted before returning, so the output
//! order (and therefore every downstream reduction) is identical to the
//! serial path regardless of scheduling.
//!
//! Determinism contract: the closure must derive all randomness from the
//! point itself (e.g. a per-point seed), never from worker identity or
//! execution order. Under that contract `parallel_map(items, …)` is
//! byte-identical to the equivalent serial loop.
//!
//! [`parallel_map_with_stats`] additionally collects per-worker telemetry
//! (e.g. the [`crate::telemetry::EngineStats`] of each worker's workspace)
//! and merges it into one total whose value is independent of how items
//! were scheduled across workers.

use crate::telemetry::Merge;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Picks a worker count: the available parallelism, capped by the number
/// of items (no point spinning up idle threads).
fn worker_count(items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(items).max(1)
}

/// Maps `f` over `items` in parallel with deterministic output ordering.
///
/// `init` runs once per worker thread to build its private state (a
/// workspace, a simulator instance, scratch buffers); `f` receives that
/// state, the item, and the item's index. Items are dispatched dynamically
/// (an atomic cursor), so uneven point costs still balance, but results
/// are returned in input order.
///
/// # Errors
///
/// If any invocation of `f` fails, the error for the smallest failing
/// index is returned — exactly the error a serial loop would have hit
/// first.
pub fn parallel_map<T, S, R, E, I, F>(items: &[T], init: I, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T, usize) -> Result<R, E> + Sync,
{
    parallel_map_with_stats(items, init, f, |_| ()).map(|(results, ())| results)
}

/// [`parallel_map`] with deterministic telemetry collection: after a worker
/// drains its share of items, `extract` distills its private state into a
/// mergeable summary (typically the [`crate::telemetry::EngineStats`] of a
/// workspace), and the per-worker summaries are folded into one total via
/// [`Merge`].
///
/// Because [`Merge`] implementations are associative and commutative, and
/// each item contributes to exactly one worker's summary, the merged total
/// is independent of how items were scheduled across workers — the same
/// totals as the serial loop, every run.
///
/// On the single-worker (serial) path `extract` runs on the one state; the
/// behavior is `parallel_map` plus the summary.
///
/// # Errors
///
/// As [`parallel_map`]: the error for the smallest failing index wins. On
/// error the partial stats are discarded along with the partial results.
pub fn parallel_map_with_stats<T, S, R, E, St, I, F, X>(
    items: &[T],
    init: I,
    f: F,
    extract: X,
) -> Result<(Vec<R>, St), E>
where
    T: Sync,
    R: Send,
    E: Send,
    St: Merge + Default + Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T, usize) -> Result<R, E> + Sync,
    X: Fn(S) -> St + Sync,
{
    if items.is_empty() {
        return Ok((Vec::new(), St::default()));
    }
    let workers = worker_count(items.len());
    if workers == 1 {
        let mut state = init();
        let results: Result<Vec<R>, E> = items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut state, item, i))
            .collect();
        let mut total = St::default();
        let results = results?;
        total.merge(&extract(state));
        return Ok((results, total));
    }

    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
    let mut first_err: Option<(usize, E)> = None;
    let mut total = St::default();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut ok: Vec<(usize, R)> = Vec::new();
                    let mut err: Option<(usize, E)> = None;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        match f(&mut state, &items[i], i) {
                            Ok(r) => ok.push((i, r)),
                            Err(e) => {
                                err = Some((i, e));
                                break;
                            }
                        }
                    }
                    (ok, err, extract(state))
                })
            })
            .collect();
        for handle in handles {
            // A panicking worker propagates its panic here, as in serial code.
            let (ok, err, stats) = handle.join().expect("sweep worker panicked");
            tagged.extend(ok);
            total.merge(&stats);
            if let Some((i, e)) = err {
                match &first_err {
                    Some((fi, _)) if *fi <= i => {}
                    _ => first_err = Some((i, e)),
                }
            }
        }
    });

    if let Some((_, e)) = first_err {
        return Err(e);
    }
    tagged.sort_by_key(|&(i, _)| i);
    Ok((tagged.into_iter().map(|(_, r)| r).collect(), total))
}

/// Default scenario block size for [`parallel_map_batched`]: long enough to
/// amortize a block's symbolic analysis and warm-start chain, short enough
/// to load-balance across workers.
pub const DEFAULT_BLOCK: usize = 32;

/// Maps a *batched* closure over fixed-size contiguous blocks of `items`
/// in parallel, with results bit-identical to the serial block-by-block
/// loop for any worker count.
///
/// Where [`parallel_map`] hands the closure one item at a time,
/// `parallel_map_batched` hands it a whole block (`f(&mut state, block,
/// block_start)` returning one result per block item). The closure is free
/// to share work across the block — one symbolic factorization, a
/// warm-start chain seeded by a [`crate::engine::BatchRun`] — which is
/// exactly the sharing a per-item closure cannot express.
///
/// Determinism contract: block boundaries depend only on `items.len()` and
/// `block_size` — never on the worker count — and every block gets a fresh
/// `init()` state, so no block's result can depend on which worker ran it
/// or what that worker ran before. Warm-start chains are therefore
/// confined to a block by construction.
///
/// # Panics
///
/// Panics if `f` returns a result vector whose length differs from its
/// block length.
///
/// # Errors
///
/// If any block fails, the error for the smallest failing block start is
/// returned — the error the serial block loop would have hit first.
pub fn parallel_map_batched<T, S, R, E, I, F>(
    items: &[T],
    block_size: usize,
    init: I,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &[T], usize) -> Result<Vec<R>, E> + Sync,
{
    parallel_map_batched_with_stats(items, block_size, init, f, |_| ()).map(|(results, ())| results)
}

/// [`parallel_map_batched`] with deterministic telemetry collection: after
/// each block completes, `extract` distills the block's private state into
/// a mergeable summary and the per-block summaries are folded into one
/// total via [`Merge`]. Each block contributes exactly once, so the merged
/// total is independent of scheduling — identical to the serial block loop.
///
/// # Panics
///
/// As [`parallel_map_batched`].
///
/// # Errors
///
/// As [`parallel_map_batched`]; partial stats are discarded on error.
pub fn parallel_map_batched_with_stats<T, S, R, E, St, I, F, X>(
    items: &[T],
    block_size: usize,
    init: I,
    f: F,
    extract: X,
) -> Result<(Vec<R>, St), E>
where
    T: Sync,
    R: Send,
    E: Send,
    St: Merge + Default + Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &[T], usize) -> Result<Vec<R>, E> + Sync,
    X: Fn(S) -> St + Sync,
{
    if items.is_empty() {
        return Ok((Vec::new(), St::default()));
    }
    let block = block_size.max(1);
    let run_block = |start: usize| -> Result<(Vec<R>, St), E> {
        let end = (start + block).min(items.len());
        let mut state = init();
        let results = f(&mut state, &items[start..end], start)?;
        assert_eq!(
            results.len(),
            end - start,
            "batched closure must return one result per block item"
        );
        Ok((results, extract(state)))
    };
    let starts: Vec<usize> = (0..items.len()).step_by(block).collect();
    let workers = worker_count(starts.len());
    if workers == 1 {
        let mut out = Vec::with_capacity(items.len());
        let mut total = St::default();
        for &start in &starts {
            let (results, stats) = run_block(start)?;
            out.extend(results);
            total.merge(&stats);
        }
        return Ok((out, total));
    }

    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, Vec<R>)> = Vec::with_capacity(starts.len());
    let mut first_err: Option<(usize, E)> = None;
    let mut total = St::default();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut ok: Vec<(usize, Vec<R>, St)> = Vec::new();
                    let mut err: Option<(usize, E)> = None;
                    loop {
                        let b = cursor.fetch_add(1, Ordering::Relaxed);
                        if b >= starts.len() {
                            break;
                        }
                        let start = starts[b];
                        match run_block(start) {
                            Ok((results, stats)) => ok.push((start, results, stats)),
                            Err(e) => {
                                err = Some((start, e));
                                break;
                            }
                        }
                    }
                    (ok, err)
                })
            })
            .collect();
        for handle in handles {
            // A panicking worker propagates its panic here, as in serial code.
            let (ok, err) = handle.join().expect("batched sweep worker panicked");
            for (start, results, stats) in ok {
                tagged.push((start, results));
                total.merge(&stats);
            }
            if let Some((i, e)) = err {
                match &first_err {
                    Some((fi, _)) if *fi <= i => {}
                    _ => first_err = Some((i, e)),
                }
            }
        }
    });

    if let Some((_, e)) = first_err {
        return Err(e);
    }
    tagged.sort_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(items.len());
    for (_, results) in tagged {
        out.extend(results);
    }
    Ok((out, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AnalogError;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = parallel_map(
            &items,
            || 0u64,
            |_, &v, i| {
                assert_eq!(v, i);
                Ok::<usize, AnalogError>(v * v)
            },
        )
        .unwrap();
        assert_eq!(out, items.iter().map(|v| v * v).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_loop_bitwise() {
        let items: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.37).collect();
        let work = |x: f64| (x.sin() * 1e3).exp().ln_1p();
        let serial: Vec<f64> = items.iter().map(|&x| work(x)).collect();
        let par = parallel_map(&items, || (), |(), &x, _| Ok::<f64, AnalogError>(work(x))).unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn first_error_by_index_wins() {
        let items: Vec<usize> = (0..64).collect();
        let err = parallel_map(
            &items,
            || (),
            |(), &v, _| {
                if v >= 7 {
                    Err(AnalogError::NoConvergence {
                        iterations: v,
                        residual: 1.0,
                        gmin: 1e-12,
                        residual_history: vec![1.0],
                    })
                } else {
                    Ok(v)
                }
            },
        )
        .unwrap_err();
        match err {
            AnalogError::NoConvergence { iterations, .. } => assert_eq!(iterations, 7),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> =
            parallel_map(&[] as &[u8], || (), |(), &v, _| Ok::<u8, AnalogError>(v)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn with_stats_merges_per_worker_counts_to_item_total() {
        use crate::telemetry::{EngineStats, Merge};

        let items: Vec<u64> = (0..193).collect();
        // Each processed item bumps the worker's private collector once;
        // the merged total must cover every item exactly once no matter
        // how the scheduler partitioned them.
        let (out, stats) = parallel_map_with_stats(
            &items,
            EngineStats::new,
            |stats, &v, _| {
                stats.solves += 1;
                stats.newton_iterations += v;
                Ok::<u64, AnalogError>(v)
            },
            |stats| stats,
        )
        .unwrap();
        assert_eq!(out, items);
        assert_eq!(stats.solves, items.len() as u64);
        assert_eq!(stats.newton_iterations, items.iter().sum::<u64>());

        // And the total matches a serial fold of the same contributions.
        let mut serial = EngineStats::new();
        for &v in &items {
            let mut one = EngineStats::new();
            one.solves = 1;
            one.newton_iterations = v;
            serial.merge(&one);
        }
        assert_eq!(stats, serial);
    }

    #[test]
    fn with_stats_discards_stats_on_error() {
        let items: Vec<usize> = (0..16).collect();
        let err = parallel_map_with_stats(
            &items,
            || (),
            |(), &v, _| {
                if v == 3 {
                    Err(AnalogError::EmptyCircuit)
                } else {
                    Ok(v)
                }
            },
            |()| (),
        )
        .unwrap_err();
        assert_eq!(err, AnalogError::EmptyCircuit);
    }

    /// Serial reference for the batched contract: fresh state per block,
    /// blocks in order.
    fn serial_blocks<T: Clone, S, R, E>(
        items: &[T],
        block: usize,
        init: impl Fn() -> S,
        f: impl Fn(&mut S, &[T], usize) -> Result<Vec<R>, E>,
    ) -> Result<Vec<R>, E> {
        let mut out = Vec::new();
        let mut start = 0;
        while start < items.len() {
            let end = (start + block).min(items.len());
            let mut state = init();
            out.extend(f(&mut state, &items[start..end], start)?);
            start = end;
        }
        Ok(out)
    }

    #[test]
    fn batched_is_bit_identical_to_serial_block_loop() {
        // The closure's result depends on within-block state (a running
        // accumulator), so any deviation from the serial blocking — state
        // leaking across blocks, blocks out of order, boundaries moving
        // with worker count — changes the bits.
        let items: Vec<f64> = (0..271).map(|i| f64::from(i).mul_add(0.31, 0.7)).collect();
        let work = |acc: &mut f64, block: &[f64], start: usize| {
            let mut out = Vec::with_capacity(block.len());
            for (k, &x) in block.iter().enumerate() {
                *acc = (*acc + x).sin().mul_add(1e3, (start + k) as f64).sqrt();
                out.push(*acc);
            }
            Ok::<_, AnalogError>(out)
        };
        for block in [1, 7, 32, 271, 1000] {
            let serial = serial_blocks(&items, block, || 0.0f64, work).unwrap();
            let par = parallel_map_batched(&items, block, || 0.0f64, work).unwrap();
            assert_eq!(serial.len(), par.len());
            for (s, p) in serial.iter().zip(&par) {
                assert_eq!(s.to_bits(), p.to_bits(), "block size {block}");
            }
        }
    }

    #[test]
    fn batched_first_error_by_block_start_wins() {
        let items: Vec<usize> = (0..64).collect();
        let err = parallel_map_batched(
            &items,
            8,
            || (),
            |(), block: &[usize], start| {
                if start >= 16 {
                    Err(AnalogError::NoConvergence {
                        iterations: start,
                        residual: 1.0,
                        gmin: 1e-12,
                        residual_history: vec![1.0],
                    })
                } else {
                    Ok(block.to_vec())
                }
            },
        )
        .unwrap_err();
        match err {
            AnalogError::NoConvergence { iterations, .. } => assert_eq!(iterations, 16),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn batched_stats_cover_every_block_exactly_once() {
        use crate::telemetry::EngineStats;
        let items: Vec<u64> = (0..130).collect();
        let (out, stats) = parallel_map_batched_with_stats(
            &items,
            16,
            EngineStats::new,
            |stats, block: &[u64], _| {
                stats.batch_runs += 1;
                stats.batch_scenarios += block.len() as u64;
                Ok::<_, AnalogError>(block.to_vec())
            },
            |stats| stats,
        )
        .unwrap();
        assert_eq!(out, items);
        assert_eq!(stats.batch_runs, 130_u64.div_ceil(16));
        assert_eq!(stats.batch_scenarios, items.len() as u64);
    }

    #[test]
    fn batched_zero_block_size_is_clamped_and_empty_input_is_empty() {
        let items: Vec<u8> = (0..5).collect();
        let out = parallel_map_batched(
            &items,
            0,
            || (),
            |(), b: &[u8], _| Ok::<_, AnalogError>(b.to_vec()),
        )
        .unwrap();
        assert_eq!(out, items);
        let empty: Vec<u8> = parallel_map_batched(
            &[] as &[u8],
            4,
            || (),
            |(), b: &[u8], _| Ok::<_, AnalogError>(b.to_vec()),
        )
        .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "one result per block item")]
    fn batched_length_mismatch_panics() {
        let items: Vec<u8> = (0..5).collect();
        let _ = parallel_map_batched(
            &items,
            5,
            || (),
            |(), _b: &[u8], _| Ok::<Vec<u8>, AnalogError>(Vec::new()),
        );
    }

    #[test]
    fn init_runs_per_worker_state_is_private() {
        let items: Vec<usize> = (0..32).collect();
        // Each worker counts its own items; totals must cover all items.
        let out = parallel_map(
            &items,
            || 0usize,
            |count, &v, _| {
                *count += 1;
                Ok::<_, AnalogError>((v, *count))
            },
        )
        .unwrap();
        assert_eq!(out.len(), items.len());
        for (i, (v, count)) in out.iter().enumerate() {
            assert_eq!(*v, i);
            assert!(*count >= 1 && *count <= items.len());
        }
    }
}
