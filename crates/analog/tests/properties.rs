//! Property-based tests of the circuit-simulation substrate.

use proptest::prelude::*;

use si_analog::device::{MosParams, Waveform};
use si_analog::linalg::Matrix;
use si_analog::parse::{parse_netlist, parse_value};
use si_analog::units::{Seconds, Volts};

proptest! {
    /// LU solve: A·x = b within tolerance for any diagonally dominant
    /// system (the class MNA matrices with gmin belong to).
    #[test]
    fn lu_solves_diagonally_dominant_systems(
        entries in prop::collection::vec(-1.0f64..1.0, 36),
        rhs in prop::collection::vec(-10.0f64..10.0, 6),
    ) {
        let n = 6;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = entries[i * n + j];
            }
            a[(i, i)] += 4.0;
        }
        let x = a.solve(&rhs).unwrap();
        let r = a.mul_vec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&rhs) {
            prop_assert!((ri - bi).abs() < 1e-9);
        }
    }

    /// The MOS model's drain current is continuous in vgs and vds: small
    /// input changes cause proportionally small current changes (no jumps
    /// across region boundaries).
    #[test]
    fn mos_current_is_continuous(
        vgs in 0.0f64..3.3,
        vds in -3.3f64..3.3,
        vbs in -1.0f64..0.0,
    ) {
        let m = MosParams::nmos_08um(20.0, 2.0);
        let h = 1e-7;
        let i0 = m.evaluate(Volts(vgs), Volts(vds), Volts(vbs)).id.0;
        let i1 = m.evaluate(Volts(vgs + h), Volts(vds), Volts(vbs)).id.0;
        let i2 = m.evaluate(Volts(vgs), Volts(vds + h), Volts(vbs)).id.0;
        // β·V bounds the derivative scale for this geometry; the factor
        // covers the worst-case swapped-terminal composite derivative
        // (gm + gds + gmb). A true region-boundary discontinuity would be
        // µA-class, far above this bound.
        let bound = m.beta() * 100.0 * h;
        prop_assert!((i1 - i0).abs() <= bound, "jump in vgs: {} A", (i1 - i0).abs());
        prop_assert!((i2 - i0).abs() <= bound, "jump in vds: {} A", (i2 - i0).abs());
    }

    /// Drain/source symmetry: swapping the terminals negates the current
    /// for any bias (with body tied to the original source).
    #[test]
    fn mos_is_drain_source_symmetric(
        vg in 0.0f64..3.3,
        vd in 0.0f64..3.3,
        vs in 0.0f64..3.3,
    ) {
        let m = MosParams::nmos_08um(10.0, 1.0);
        let vb = 0.0;
        let fwd = m.evaluate(Volts(vg - vs), Volts(vd - vs), Volts(vb - vs)).id.0;
        let rev = m.evaluate(Volts(vg - vd), Volts(vs - vd), Volts(vb - vd)).id.0;
        prop_assert!(
            (fwd + rev).abs() < 1e-9 * (1.0 + fwd.abs()),
            "fwd {fwd} rev {rev}"
        );
    }

    /// Saturation current never decreases with vgs (monotonicity).
    #[test]
    fn mos_current_monotone_in_vgs(v1 in 0.0f64..3.0, v2 in 0.0f64..3.0) {
        let m = MosParams::nmos_08um(20.0, 2.0);
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        let i_lo = m.evaluate(Volts(lo), Volts(3.3), Volts(0.0)).id.0;
        let i_hi = m.evaluate(Volts(hi), Volts(3.3), Volts(0.0)).id.0;
        prop_assert!(i_hi >= i_lo - 1e-15);
    }

    /// PWL waveforms stay inside the convex hull of their points.
    #[test]
    fn pwl_is_bounded_by_its_points(
        points in prop::collection::vec((0.0f64..1e-3, -5.0f64..5.0), 2..8),
        t in -1e-3f64..2e-3,
    ) {
        let mut pts = points;
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        let lo = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let w = Waveform::Pwl(pts);
        let v = w.value_at(Seconds(t));
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "{v} outside [{lo}, {hi}]");
    }

    /// Sine waveforms are bounded by offset ± amplitude.
    #[test]
    fn sine_is_bounded(offset in -5.0f64..5.0, amplitude in 0.0f64..5.0, t in 0.0f64..1.0) {
        let w = Waveform::Sine { offset, amplitude, frequency: 997.0, phase: 0.3 };
        let v = w.value_at(Seconds(t));
        prop_assert!(v >= offset - amplitude - 1e-12);
        prop_assert!(v <= offset + amplitude + 1e-12);
    }

    /// Engineering-suffix parsing round-trips: formatting a value with a
    /// suffix and re-parsing recovers it.
    #[test]
    fn parse_value_round_trips(mantissa in 0.001f64..999.0, suffix_idx in 0usize..8) {
        let (suffix, mult) = [
            ("f", 1e-15), ("p", 1e-12), ("n", 1e-9), ("u", 1e-6),
            ("m", 1e-3), ("k", 1e3), ("meg", 1e6), ("g", 1e9),
        ][suffix_idx];
        let text = format!("{mantissa}{suffix}");
        let parsed = parse_value(&text).expect("valid suffix");
        let expected = mantissa * mult;
        prop_assert!((parsed - expected).abs() / expected < 1e-12,
            "{text} → {parsed} vs {expected}");
    }

    /// A generated ladder of resistors always parses and solves, and the
    /// tap voltages are monotone down the ladder.
    #[test]
    fn generated_resistor_ladders_solve(stages in 1usize..8, r_k in 1.0f64..100.0) {
        use si_analog::dc::DcSolver;
        let mut text = String::from("V1 n0 0 3.3\n");
        for k in 0..stages {
            text.push_str(&format!("R{k} n{k} n{} {r_k}k\n", k + 1));
        }
        text.push_str(&format!("Rend n{stages} 0 {r_k}k\n"));
        let ckt = parse_netlist(&text).unwrap();
        let op = DcSolver::new().solve(&ckt).unwrap();
        let mut c2 = ckt.clone();
        let mut last = 3.3f64;
        for k in 1..=stages {
            let v = op.voltage(c2.node(&format!("n{k}"))).0;
            prop_assert!(v < last + 1e-9 && v > 0.0, "tap {k}: {v} after {last}");
            last = v;
        }
    }

    /// Reusing one `EngineWorkspace` across a run of randomized circuits
    /// of varying sizes never leaks state: each solve matches a fresh
    /// solve of the same circuit bit for bit, regardless of what the
    /// workspace held before.
    #[test]
    fn workspace_reuse_never_leaks_stale_state(
        specs in prop::collection::vec((1usize..8, 1.0f64..100.0, -3.0f64..3.0), 2..6),
        // µA-scale injections keep node voltages within the damped
        // Newton's reach (max_step × max_iterations) for any r_k drawn.
    ) {
        use si_analog::dc::DcSolver;
        use si_analog::engine::EngineWorkspace;

        let mut ws = EngineWorkspace::new();
        let solver = DcSolver::new();
        for (stages, r_k, i_ua) in specs {
            let mut text = String::from("V1 n0 0 3.3\n");
            for k in 0..stages {
                text.push_str(&format!("R{k} n{k} n{} {r_k}k\n", k + 1));
            }
            text.push_str(&format!("Rend n{stages} 0 {r_k}k\n"));
            // A current injection halfway down makes the answer depend on
            // every generated parameter, not just the divider ratio.
            text.push_str(&format!("I1 0 n{} {i_ua}u\n", stages / 2 + 1));
            let ckt = parse_netlist(&text).unwrap();

            let fresh = solver.solve(&ckt).unwrap();
            let reused = solver.solve_with(&ckt, &mut ws).unwrap();
            prop_assert_eq!(fresh.raw(), reused.raw());
        }
    }
}

/// A randomized resistor ladder with a mid-ladder current injection — the
/// same family `workspace_reuse_never_leaks_stale_state` uses, shared by
/// the telemetry properties below.
fn ladder_netlist(stages: usize, r_k: f64, i_ua: f64) -> String {
    let mut text = String::from("V1 n0 0 3.3\n");
    for k in 0..stages {
        text.push_str(&format!("R{k} n{k} n{} {r_k}k\n", k + 1));
    }
    text.push_str(&format!("Rend n{stages} 0 {r_k}k\n"));
    text.push_str(&format!("I1 0 n{} {i_ua}u\n", stages / 2 + 1));
    text
}

/// A randomized but structurally valid [`EngineStats`] sample built from a
/// handful of drawn counters.
fn stats_sample(draw: (u64, u64, u64, u64, u32)) -> si_analog::telemetry::EngineStats {
    let (solves, iters, factor, gmin_steps, gmin_exp) = draw;
    si_analog::telemetry::EngineStats {
        solves,
        dc_solves: solves / 2,
        transient_steps: solves - solves / 2,
        newton_iterations: iters,
        max_newton_iterations: iters.min(40),
        factorizations: factor,
        refactorizations: iters.saturating_sub(factor),
        back_substitutions: iters,
        complex_factorizations: factor % 5,
        complex_back_substitutions: factor % 7,
        gmin_steps,
        min_gmin: if gmin_steps == 0 {
            f64::INFINITY
        } else {
            10f64.powi(-(gmin_exp as i32 % 12))
        },
        non_finite_rejections: iters % 3,
        convergence_failures: solves % 4,
        dense_real_factorizations: factor / 2,
        dense_complex_factorizations: factor % 5,
        sparse_real_factorizations: factor - factor / 2,
        sparse_real_refactorizations: iters.saturating_sub(factor),
        sparse_complex_factorizations: gmin_steps % 3,
        sparse_complex_refactorizations: gmin_steps % 5,
        symbolic_cache_hits: iters.saturating_sub(factor),
        symbolic_cache_misses: factor.min(7),
        max_matrix_nonzeros: (11 * iters) % 97,
        max_factor_nonzeros: (13 * iters) % 131,
        batch_runs: solves % 3,
        batch_scenarios: (7 * solves) % 41,
        warm_starts: iters % 11,
        warm_start_rejected: iters % 4,
        workspace_resets: solves % 2,
        solve_time: std::time::Duration::from_nanos(13 * iters),
    }
}

proptest! {
    /// Telemetry merging is associative and order-independent: folding a
    /// set of per-worker collectors left-to-right, in rotated order, and
    /// pairwise-tree-reduced all produce identical totals — the invariant
    /// `parallel_map_with_stats` relies on to make its merged stats
    /// independent of scheduling.
    #[test]
    fn telemetry_merge_is_associative_and_order_independent(
        draws in prop::collection::vec(
            (0u64..50, 0u64..200, 0u64..200, 0u64..12, 0u32..12),
            1..10,
        ),
        rot in 0usize..16,
    ) {
        use si_analog::telemetry::{EngineStats, Merge};

        let parts: Vec<EngineStats> = draws.into_iter().map(stats_sample).collect();

        // Left-to-right fold: the serial reference.
        let mut serial = EngineStats::default();
        for p in &parts {
            serial.merge(p);
        }

        // Any rotation of the fold order (a worker finishing early).
        let mut rotated = EngineStats::default();
        let n = parts.len();
        for k in 0..n {
            rotated.merge(&parts[(k + rot) % n]);
        }
        prop_assert_eq!(&rotated, &serial);

        // Pairwise tree reduction (a different parenthesization entirely).
        let mut layer = parts;
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let mut it = layer.into_iter();
            while let Some(mut a) = it.next() {
                if let Some(b) = it.next() {
                    a.merge(&b);
                }
                next.push(a);
            }
            layer = next;
        }
        prop_assert_eq!(&layer[0], &serial);
    }

    /// Per-worker stats from `parallel_map_with_stats` merge to the same
    /// totals a serial loop over the same points produces, for randomized
    /// circuit sweeps — real threads, real solves, scheduling-independent
    /// counts.
    #[test]
    fn parallel_sweep_stats_match_serial_totals(
        specs in prop::collection::vec((1usize..6, 1.0f64..100.0, -3.0f64..3.0), 1..9),
    ) {
        use si_analog::dc::DcSolver;
        use si_analog::engine::EngineWorkspace;
        use si_analog::telemetry::{EngineStats, Merge};

        let solver = DcSolver::new();
        let circuits: Vec<_> = specs
            .iter()
            .map(|&(stages, r_k, i_ua)| {
                parse_netlist(&ladder_netlist(stages, r_k, i_ua)).unwrap()
            })
            .collect();

        let (_, parallel_total) = si_analog::sweep::parallel_map_with_stats(
            &circuits,
            || {
                let mut ws = EngineWorkspace::new();
                ws.enable_stats();
                ws
            },
            |ws, ckt, _| solver.solve_with(ckt, ws).map(|op| op.raw().to_vec()),
            |mut ws| ws.take_stats().unwrap_or_default(),
        )
        .unwrap();

        let mut serial_total = EngineStats::default();
        for ckt in &circuits {
            let mut ws = EngineWorkspace::new();
            ws.enable_stats();
            solver.solve_with(ckt, &mut ws).unwrap();
            serial_total.merge(&ws.take_stats().unwrap());
        }

        // Wall-clock differs run to run; everything countable must not.
        prop_assert_eq!(parallel_total.normalized(), serial_total.normalized());
        prop_assert_eq!(parallel_total.solves, circuits.len() as u64);
    }

    /// Installing a probe never changes a solved node voltage: the stats
    /// path only observes. Solves with and without telemetry enabled are
    /// bit-for-bit identical for any generated circuit.
    #[test]
    fn probe_never_changes_solved_voltages(
        stages in 1usize..8,
        r_k in 1.0f64..100.0,
        i_ua in -3.0f64..3.0,
    ) {
        use si_analog::dc::DcSolver;
        use si_analog::engine::EngineWorkspace;

        let ckt = parse_netlist(&ladder_netlist(stages, r_k, i_ua)).unwrap();
        let solver = DcSolver::new();

        let bare = solver.solve(&ckt).unwrap();

        let mut ws = EngineWorkspace::for_circuit(&ckt);
        ws.enable_stats();
        let probed = solver.solve_with(&ckt, &mut ws).unwrap();
        prop_assert_eq!(bare.raw(), probed.raw());

        // The collector really did watch the solve it didn't perturb.
        let stats = ws.take_stats().unwrap();
        prop_assert!(stats.solves >= 1);
        prop_assert_eq!(stats.convergence_failures, 0);
        prop_assert_eq!(
            stats.back_substitutions, stats.newton_iterations,
            "one back-substitution per Newton iteration on the DC path"
        );
    }

    /// The sparse structure-caching backend and the dense backend agree to
    /// solver tolerance on any generated ladder large enough to clear the
    /// auto cutover, and the sparse run truly never factors densely.
    #[test]
    fn sparse_and_dense_backends_agree_on_randomized_ladders(
        stages in 33usize..80,
        r_k in 1.0f64..100.0,
        i_ua in -3.0f64..3.0,
    ) {
        use si_analog::dc::DcSolver;
        use si_analog::engine::EngineWorkspace;
        use si_analog::solver::{BackendMode, BackendPolicy};

        let ckt = parse_netlist(&ladder_netlist(stages, r_k, i_ua)).unwrap();
        let solver = DcSolver::new();

        let mut dense_ws = EngineWorkspace::for_circuit(&ckt);
        dense_ws.set_backend_policy(BackendPolicy {
            mode: BackendMode::ForceDense,
            ..BackendPolicy::default()
        });
        let dense = solver.solve_with(&ckt, &mut dense_ws).unwrap();

        let mut sparse_ws = EngineWorkspace::for_circuit(&ckt);
        sparse_ws.set_backend_policy(BackendPolicy {
            mode: BackendMode::ForceSparse,
            ..BackendPolicy::default()
        });
        sparse_ws.enable_stats();
        let sparse = solver.solve_with(&ckt, &mut sparse_ws).unwrap();

        for (u, v) in dense.raw().iter().zip(sparse.raw()) {
            prop_assert!(
                (u - v).abs() <= 1e-6 * u.abs().max(1.0),
                "dense {u} vs sparse {v}"
            );
        }
        let stats = sparse_ws.take_stats().unwrap();
        prop_assert_eq!(stats.dense_real_factorizations, 0);
        prop_assert!(stats.sparse_real_factorizations >= 1);
        prop_assert_eq!(
            stats.sparse_real_factorizations + stats.sparse_real_refactorizations,
            stats.newton_iterations
        );
        prop_assert_eq!(
            stats.symbolic_cache_misses, 1,
            "one topology, one symbolic analysis"
        );
    }

    /// Telemetry is inert on the sparse backend too: a ForceSparse solve
    /// with a probe installed is bit-identical to one without.
    #[test]
    fn probe_is_inert_on_the_sparse_backend(
        stages in 33usize..64,
        r_k in 1.0f64..100.0,
        i_ua in -3.0f64..3.0,
    ) {
        use si_analog::dc::DcSolver;
        use si_analog::engine::EngineWorkspace;
        use si_analog::solver::{BackendMode, BackendPolicy};

        let ckt = parse_netlist(&ladder_netlist(stages, r_k, i_ua)).unwrap();
        let solver = DcSolver::new();
        let policy = BackendPolicy {
            mode: BackendMode::ForceSparse,
            ..BackendPolicy::default()
        };

        let mut bare_ws = EngineWorkspace::for_circuit(&ckt);
        bare_ws.set_backend_policy(policy);
        let bare = solver.solve_with(&ckt, &mut bare_ws).unwrap();

        let mut probed_ws = EngineWorkspace::for_circuit(&ckt);
        probed_ws.set_backend_policy(policy);
        probed_ws.enable_stats();
        let probed = solver.solve_with(&ckt, &mut probed_ws).unwrap();

        prop_assert_eq!(bare.raw(), probed.raw());
        let stats = probed_ws.take_stats().unwrap();
        prop_assert!(stats.sparse_real_factorizations >= 1);
    }
}

proptest! {
    /// Content-addressing contract: changing any single element *value*
    /// changes the value fingerprint while leaving the structure
    /// fingerprint untouched — so caches keyed on (structure, values)
    /// distinguish every retuning but share symbolic work across them.
    #[test]
    fn value_fingerprint_separates_values_from_structure(
        r1_k in 0.1f64..100.0,
        r2_k in 0.1f64..100.0,
        i_ma in 0.01f64..10.0,
    ) {
        use si_analog::netlist::Circuit;
        use si_analog::units::{Amps, Ohms};

        let build = |r_k: f64, i_ma: f64| {
            let mut c = Circuit::new();
            let a = c.node("a");
            let b = c.node("b");
            c.resistor("R1", a, b, Ohms(r_k * 1e3)).unwrap();
            c.resistor("R2", b, Circuit::GROUND, Ohms(1e3)).unwrap();
            c.current_source("I1", Circuit::GROUND, a, Amps(i_ma * 1e-3)).unwrap();
            c
        };

        let base = build(r1_k, i_ma);
        // Deterministic: a fresh identical build hashes identically.
        prop_assert_eq!(base.value_fingerprint(), build(r1_k, i_ma).value_fingerprint());
        prop_assert_eq!(base.structure_fingerprint(), build(r1_k, i_ma).structure_fingerprint());

        // One element value differs → distinct value fingerprint, same
        // structure fingerprint.
        prop_assume!(r1_k.to_bits() != r2_k.to_bits());
        let other = build(r2_k, i_ma);
        prop_assert_ne!(base.value_fingerprint(), other.value_fingerprint());
        prop_assert_eq!(base.structure_fingerprint(), other.structure_fingerprint());
    }

    /// Retuning a source in place is invisible to the structure key: the
    /// workspace keyed on structure stays warm while the value key moves
    /// with every distinct drive level.
    #[test]
    fn retuned_sources_keep_structure_keys_stable(
        i0_ma in 0.01f64..10.0,
        i1_ma in 0.01f64..10.0,
    ) {
        use si_analog::device::Waveform;
        use si_analog::netlist::Circuit;
        use si_analog::units::{Amps, Ohms};

        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::GROUND, Ohms(1e3)).unwrap();
        c.current_source("I1", Circuit::GROUND, a, Amps(i0_ma * 1e-3)).unwrap();
        let structure0 = c.structure_fingerprint();
        let values0 = c.value_fingerprint();

        c.update_current_source("I1", Waveform::Dc(i1_ma * 1e-3)).unwrap();
        prop_assert_eq!(c.structure_fingerprint(), structure0);
        if i0_ma.to_bits() == i1_ma.to_bits() {
            prop_assert_eq!(c.value_fingerprint(), values0);
        } else {
            prop_assert_ne!(c.value_fingerprint(), values0);
        }

        // Round-trip back to the original drive restores the value key:
        // the fingerprint is a function of state, not of edit history.
        c.update_current_source("I1", Waveform::Dc(i0_ma * 1e-3)).unwrap();
        prop_assert_eq!(c.structure_fingerprint(), structure0);
        prop_assert_eq!(c.value_fingerprint(), values0);
    }
}

/// A tiny splitmix64 stream for deterministic in-test shuffles and noise,
/// seeded from a drawn u64 so proptest owns the entropy and can shrink it.
struct TextRng(u64);

impl TextRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

proptest! {
    /// Submission-text robustness: comments, blank lines, stray
    /// whitespace, and arbitrary card order are all invisible to the
    /// canonical parse. Two texts describing the same circuit produce
    /// identical structure *and* value fingerprints — the property the
    /// service's content-addressed cache relies on to coalesce
    /// independently formatted user submissions of one design.
    #[test]
    fn canonical_fingerprints_ignore_formatting_and_card_order(
        stages in 1usize..12,
        r_k in 0.1f64..100.0,
        i_ua in -5.0f64..5.0,
        seed in 0u64..u64::MAX,
    ) {
        use si_analog::parse::parse_netlist_canonical;

        let clean = ladder_netlist(stages, r_k, i_ua);
        let mut rng = TextRng(seed);

        // Shuffle the card lines (Fisher–Yates), then interleave noise:
        // full-line comments, inline `; comment` tails, blank lines, and
        // leading/trailing whitespace.
        let mut lines: Vec<String> = clean.lines().map(str::to_string).collect();
        for i in (1..lines.len()).rev() {
            let j = rng.below(i + 1);
            lines.swap(i, j);
        }
        let mut noisy = String::from("* fuzzed formatting variant\n");
        for mut line in lines {
            if rng.below(3) == 0 {
                noisy.push_str("* interleaved comment\n\n");
            }
            if rng.below(3) == 0 {
                line = format!("  {line}\t ");
            }
            if rng.below(3) == 0 {
                line.push_str(" ; inline tail");
            }
            noisy.push_str(&line);
            noisy.push('\n');
        }

        let base = parse_netlist_canonical(&clean).unwrap();
        let mangled = parse_netlist_canonical(&noisy).unwrap();
        prop_assert_eq!(
            base.structure_fingerprint(),
            mangled.structure_fingerprint(),
            "formatting noise changed the structure key"
        );
        prop_assert_eq!(
            base.value_fingerprint(),
            mangled.value_fingerprint(),
            "formatting noise changed the value key"
        );
    }

    /// Emitter round trip: any circuit built through the typed API can be
    /// rendered to dialect text and parsed back into a circuit with the
    /// same fingerprints, the same node ordering, and a bit-identical DC
    /// solution — so a netlist twin of a generator job is literally the
    /// same cache entry.
    #[test]
    fn to_netlist_round_trips_bit_identically(
        stages in 1usize..10,
        r_k in 0.1f64..100.0,
        i_ua in -5.0f64..5.0,
    ) {
        use si_analog::dc::DcSolver;
        use si_analog::parse::to_netlist;

        let built = parse_netlist(&ladder_netlist(stages, r_k, i_ua)).unwrap();
        let text = to_netlist(&built).unwrap();
        let reparsed = parse_netlist(&text).unwrap();

        prop_assert_eq!(built.structure_fingerprint(), reparsed.structure_fingerprint());
        prop_assert_eq!(built.value_fingerprint(), reparsed.value_fingerprint());
        prop_assert_eq!(built.node_count(), reparsed.node_count());

        let solver = DcSolver::new();
        let a = solver.solve(&built).unwrap();
        let b = solver.solve(&reparsed).unwrap();
        prop_assert_eq!(a.raw(), b.raw(), "round-tripped solve is not bit-identical");
    }

    /// The emitter round trip holds for generated SI cells too, not just
    /// hand-written ladders: a delay-line chain from the cell library
    /// survives `to_netlist` → `parse_netlist` with identical fingerprints
    /// and a bit-identical solve from the design's own initial guess.
    #[test]
    fn cell_chain_netlist_twin_is_bit_identical(stages in 1usize..6) {
        use si_analog::cells::si_cell_chain;
        use si_analog::dc::DcSolver;
        use si_analog::parse::to_netlist;

        let line = si_cell_chain(stages).unwrap();
        let text = to_netlist(&line.circuit).unwrap();
        let twin = parse_netlist(&text).unwrap();

        prop_assert_eq!(
            line.circuit.structure_fingerprint(),
            twin.structure_fingerprint()
        );
        prop_assert_eq!(line.circuit.value_fingerprint(), twin.value_fingerprint());

        let solver = DcSolver::new().with_initial_guess(line.initial_guess.clone());
        let a = solver.solve(&line.circuit).unwrap();
        let b = solver.solve(&twin).unwrap();
        prop_assert_eq!(a.raw(), b.raw(), "cell-chain twin solve is not bit-identical");
    }
}
