//! Job specifications: what a client asks the service to simulate.
//!
//! A [`JobSpec`] is a *value* — plain numbers, no handles — so two
//! requests describing the same simulation are equal and hash to the same
//! [`JobSpec::job_key`]. The key is the content address of the result:
//! it folds the built circuit's structure fingerprint (MNA sparsity) and
//! value fingerprint (element values, waveforms) together with the
//! analysis parameters through the same process-stable FNV-1a used by
//! [`si_analog::netlist::Circuit::structure_fingerprint`], so identical
//! jobs coalesce across clients and runs while a one-ULP change to any
//! parameter yields a different key.

use si_analog::ac::{AcAnalysis, AcProbe, AcStimulus};
use si_analog::cells::DelayLineDesign;
use si_analog::dc::{set_current_source, DcSolver};
use si_analog::device::switch::TwoPhaseClock;
use si_analog::engine::{BatchRun, EngineWorkspace};
use si_analog::mna::Solution;
use si_analog::parse::parse_netlist_canonical;
use si_analog::tran::{self, TranParams};
use si_analog::units::{Amps, Farads, Seconds, Volts};
use si_dsp::welch::WelchAccumulator;
use si_dsp::window::Window;
use si_modulator::arch::SecondOrderTopology;
use si_modulator::ideal::IdealModulator;
use si_modulator::measure::MeasurementConfig;
use si_modulator::sweep::sndr_sweep;

use crate::budget::{price_circuit, CircuitCost};
use crate::error::ServiceError;
use crate::json::Json;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a hasher matching the netlist fingerprint constants.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv1a::default()
    }

    /// Mixes a `u64` byte by byte (little-endian).
    pub fn mix_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mixes a float through its bit pattern, so `-0.0 ≠ 0.0` and every
    /// ULP counts — exactly the value-fingerprint convention.
    pub fn mix_f64(&mut self, v: f64) {
        self.mix_u64(v.to_bits());
    }

    /// Mixes raw bytes, one at a time — plain FNV-1a over a byte string.
    pub fn mix_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The accumulated hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The analyses the service can run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum JobSpec {
    /// DC operating point of an N-stage SI delay line with a given input
    /// current.
    DelayLineDc {
        /// Number of memory stages.
        stages: usize,
        /// Per-stage bias current, µA.
        bias_ua: f64,
        /// Input current, µA.
        input_ua: f64,
    },
    /// Clocked transient of the delay line.
    DelayLineTran {
        /// Number of memory stages.
        stages: usize,
        /// Per-stage bias current, µA.
        bias_ua: f64,
        /// Input current, µA.
        input_ua: f64,
        /// Number of fixed time steps.
        steps: usize,
        /// Step size, ns.
        dt_ns: f64,
        /// Switch clock frequency, Hz.
        clock_hz: f64,
    },
    /// Small-signal transimpedance of the delay line input stage over a
    /// log frequency grid.
    DelayLineAc {
        /// Number of memory stages.
        stages: usize,
        /// Per-stage bias current, µA.
        bias_ua: f64,
        /// Input current (bias point), µA.
        input_ua: f64,
        /// Grid start, Hz.
        f_lo_hz: f64,
        /// Grid stop, Hz.
        f_hi_hz: f64,
        /// Number of log-spaced points.
        points: usize,
    },
    /// SNDR-vs-level sweep of the ideal second-order ΔΣ modulator.
    SndrSweep {
        /// Full-scale input current, µA.
        full_scale_ua: f64,
        /// Input levels, dB relative to full scale.
        levels_db: Vec<f64>,
    },
    /// Batched DC operating points of one delay-line topology: N input
    /// currents solved as one job through a [`si_analog::engine::BatchRun`],
    /// sharing a single symbolic factorization and warm-starting each
    /// scenario from its nearest-input converged neighbour. One submission,
    /// one job key, one admission decision; per-scenario results come back
    /// concatenated in [`JobOutput::values`] (scenario-major,
    /// `values_per_scenario` voltages each).
    DelayLineDcBatch {
        /// Number of memory stages.
        stages: usize,
        /// Per-stage bias current, µA.
        bias_ua: f64,
        /// One input current per scenario, µA.
        inputs_ua: Vec<f64>,
    },
    /// DC operating point of a *user-submitted* circuit, given as netlist
    /// dialect v1 text ([`si_analog::parse`]).
    ///
    /// The text is parsed **canonically**
    /// ([`parse_netlist_canonical`]): cards are sorted into a
    /// deterministic order first, so two netlists differing only in
    /// comments, whitespace, or card order build literally the same
    /// [`si_analog::netlist::Circuit`] — same job key, same cache slot,
    /// and (because the executed circuit is the canonical one) the exact
    /// same solve. Submissions that fail the strict parse are rejected
    /// with [`ServiceError::NetlistRejected`] (`422`); circuit size is
    /// priced against the service's
    /// [`AdmissionBudget`](crate::budget::AdmissionBudget) before any
    /// factorization runs (`413`).
    Netlist {
        /// Netlist dialect-v1 source text.
        netlist: String,
    },
    /// Streaming clocked transient of the delay line: executed in
    /// fixed-size chunks whose output-stage samples feed an incremental
    /// Welch estimator ([`si_dsp::welch::WelchAccumulator`], Hann
    /// window). The job's value vector is the final averaged spectrum
    /// (bin powers), not the waveform, and the service checkpoints the
    /// end-of-chunk state so a mid-run crash resumes from the last
    /// chunk boundary instead of rerunning — bit-identical either way.
    TranStream {
        /// Number of memory stages.
        stages: usize,
        /// Per-stage bias current, µA.
        bias_ua: f64,
        /// Input current, µA.
        input_ua: f64,
        /// Number of fixed time steps (the waveform has `steps + 1`
        /// samples including `t = 0`).
        steps: usize,
        /// Step size, ns.
        dt_ns: f64,
        /// Switch clock frequency, Hz.
        clock_hz: f64,
        /// Steps per chunk; checkpoints land at chunk boundaries.
        chunk_steps: usize,
        /// Welch segment length (a power of two).
        seg_len: usize,
    },
}

/// The computed result of a job: a value vector (what was solved) and a
/// list of named scalar metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput {
    /// Raw solved values — node voltages, |H(f)|, or per-level SINAD,
    /// depending on the job kind. Bit-exact across identical runs.
    pub values: Vec<f64>,
    /// Named summary metrics, in a stable order.
    pub metrics: Vec<(String, f64)>,
}

impl JobSpec {
    /// Validates ranges that the constructors of the underlying analyses
    /// would reject anyway, but with a service-level error message that
    /// maps to HTTP 400 instead of 422.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidSpec`] naming the offending field.
    pub fn validate(&self) -> Result<(), ServiceError> {
        let bad = |msg: &str| Err(ServiceError::InvalidSpec(msg.to_string()));
        match self {
            JobSpec::DelayLineDc {
                stages, bias_ua, ..
            } => {
                if *stages == 0 || *stages > 4096 {
                    return bad("stages must be in 1..=4096");
                }
                if !(*bias_ua > 0.0) {
                    return bad("bias_ua must be positive");
                }
            }
            JobSpec::DelayLineTran {
                stages,
                bias_ua,
                steps,
                dt_ns,
                clock_hz,
                ..
            } => {
                if *stages == 0 || *stages > 4096 {
                    return bad("stages must be in 1..=4096");
                }
                if !(*bias_ua > 0.0) {
                    return bad("bias_ua must be positive");
                }
                if *steps == 0 || *steps > 100_000 {
                    return bad("steps must be in 1..=100000");
                }
                if !(*dt_ns > 0.0) {
                    return bad("dt_ns must be positive");
                }
                if !(*clock_hz > 0.0) {
                    return bad("clock_hz must be positive");
                }
            }
            JobSpec::DelayLineAc {
                stages,
                bias_ua,
                f_lo_hz,
                f_hi_hz,
                points,
                ..
            } => {
                if *stages == 0 || *stages > 4096 {
                    return bad("stages must be in 1..=4096");
                }
                if !(*bias_ua > 0.0) {
                    return bad("bias_ua must be positive");
                }
                if !(*f_lo_hz > 0.0) || !(*f_hi_hz > *f_lo_hz) {
                    return bad("need 0 < f_lo_hz < f_hi_hz");
                }
                if *points < 2 || *points > 10_000 {
                    return bad("points must be in 2..=10000");
                }
            }
            JobSpec::SndrSweep {
                full_scale_ua,
                levels_db,
            } => {
                if !(*full_scale_ua > 0.0) {
                    return bad("full_scale_ua must be positive");
                }
                if levels_db.len() < 2 || levels_db.len() > 256 {
                    return bad("levels_db needs 2..=256 entries");
                }
                if levels_db.iter().any(|l| !l.is_finite()) {
                    return bad("levels_db entries must be finite");
                }
            }
            JobSpec::DelayLineDcBatch {
                stages,
                bias_ua,
                inputs_ua,
            } => {
                if *stages == 0 || *stages > 4096 {
                    return bad("stages must be in 1..=4096");
                }
                if !(*bias_ua > 0.0) {
                    return bad("bias_ua must be positive");
                }
                if inputs_ua.is_empty() || inputs_ua.len() > 1024 {
                    return bad("inputs_ua needs 1..=1024 entries");
                }
                if inputs_ua.iter().any(|i| !i.is_finite()) {
                    return bad("inputs_ua entries must be finite");
                }
            }
            JobSpec::Netlist { netlist } => {
                // The strict parse *is* the validation: any malformed
                // card, bad value, or unbuildable circuit comes back as a
                // typed line/column error. Unlike the canned kinds, this
                // maps to NetlistRejected (HTTP 422), not InvalidSpec —
                // the request shape was fine, the circuit was not.
                let circuit = parse_netlist_canonical(netlist)
                    .map_err(|e| ServiceError::NetlistRejected(e.to_string()))?;
                if circuit.elements().is_empty() {
                    return Err(ServiceError::NetlistRejected(
                        "netlist defines no elements".to_string(),
                    ));
                }
            }
            JobSpec::TranStream {
                stages,
                bias_ua,
                steps,
                dt_ns,
                clock_hz,
                chunk_steps,
                seg_len,
                ..
            } => {
                if *stages == 0 || *stages > 4096 {
                    return bad("stages must be in 1..=4096");
                }
                if !(*bias_ua > 0.0) {
                    return bad("bias_ua must be positive");
                }
                // Streaming exists for runs too long for one deadline, so
                // the step cap is far above DelayLineTran's.
                if *steps == 0 || *steps > 1_048_576 {
                    return bad("steps must be in 1..=1048576");
                }
                if !(*dt_ns > 0.0) {
                    return bad("dt_ns must be positive");
                }
                if !(*clock_hz > 0.0) {
                    return bad("clock_hz must be positive");
                }
                if *chunk_steps == 0 || *chunk_steps > *steps {
                    return bad("chunk_steps must be in 1..=steps");
                }
                if *seg_len < 2 || *seg_len > 65_536 || !seg_len.is_power_of_two() {
                    return bad("seg_len must be a power of two in 2..=65536");
                }
                if *seg_len > *steps + 1 {
                    return bad(
                        "seg_len must not exceed steps + 1 (no complete segment would fit)",
                    );
                }
            }
        }
        Ok(())
    }

    /// What this spec will cost to solve, priced *before* any
    /// factorization or Newton iteration: `Some` for user-submitted
    /// netlists (a parse plus a sparsity-pattern walk), `None` for the
    /// canned kinds whose size is already bounded by [`JobSpec::validate`].
    ///
    /// # Errors
    ///
    /// [`ServiceError::NetlistRejected`] when the netlist does not parse.
    pub fn admission_cost(&self) -> Result<Option<CircuitCost>, ServiceError> {
        match self {
            JobSpec::Netlist { netlist } => {
                let circuit = parse_netlist_canonical(netlist)
                    .map_err(|e| ServiceError::NetlistRejected(e.to_string()))?;
                Ok(Some(price_circuit(&circuit)))
            }
            _ => Ok(None),
        }
    }

    /// The job's content address: identical specs — and only identical
    /// specs — share a key.
    ///
    /// For circuit-backed jobs the key folds the built circuit's
    /// structure *and* value fingerprints, so it inherits their
    /// guarantees: retuning one element value moves the key, renaming a
    /// node does not. Analysis parameters that are not part of the
    /// netlist (step counts, frequency grids, deadlines excluded) are
    /// mixed in afterwards.
    #[must_use]
    pub fn job_key(&self) -> u64 {
        let mut h = Fnv1a::new();
        match self {
            JobSpec::DelayLineDc {
                stages,
                bias_ua,
                input_ua,
            } => {
                h.mix_u64(1);
                if let Ok(line) = build_line(*stages, *bias_ua, *input_ua) {
                    h.mix_u64(line.circuit.structure_fingerprint());
                    h.mix_u64(line.circuit.value_fingerprint());
                } else {
                    // Invalid specs still need a stable (never-cached) key.
                    h.mix_u64(*stages as u64);
                    h.mix_f64(*bias_ua);
                    h.mix_f64(*input_ua);
                }
            }
            JobSpec::DelayLineTran {
                stages,
                bias_ua,
                input_ua,
                steps,
                dt_ns,
                clock_hz,
            } => {
                h.mix_u64(2);
                if let Ok(line) = build_line(*stages, *bias_ua, *input_ua) {
                    h.mix_u64(line.circuit.structure_fingerprint());
                    h.mix_u64(line.circuit.value_fingerprint());
                } else {
                    h.mix_u64(*stages as u64);
                    h.mix_f64(*bias_ua);
                    h.mix_f64(*input_ua);
                }
                h.mix_u64(*steps as u64);
                h.mix_f64(*dt_ns);
                h.mix_f64(*clock_hz);
            }
            JobSpec::DelayLineAc {
                stages,
                bias_ua,
                input_ua,
                f_lo_hz,
                f_hi_hz,
                points,
            } => {
                h.mix_u64(3);
                if let Ok(line) = build_line(*stages, *bias_ua, *input_ua) {
                    h.mix_u64(line.circuit.structure_fingerprint());
                    h.mix_u64(line.circuit.value_fingerprint());
                } else {
                    h.mix_u64(*stages as u64);
                    h.mix_f64(*bias_ua);
                    h.mix_f64(*input_ua);
                }
                h.mix_f64(*f_lo_hz);
                h.mix_f64(*f_hi_hz);
                h.mix_u64(*points as u64);
            }
            JobSpec::SndrSweep {
                full_scale_ua,
                levels_db,
            } => {
                h.mix_u64(4);
                h.mix_f64(*full_scale_ua);
                h.mix_u64(levels_db.len() as u64);
                for &l in levels_db {
                    h.mix_f64(l);
                }
            }
            JobSpec::DelayLineDcBatch {
                stages,
                bias_ua,
                inputs_ua,
            } => {
                h.mix_u64(5);
                // Fingerprint the shared topology once (input source at
                // zero), then mix the per-scenario inputs explicitly.
                if let Ok(line) = build_line(*stages, *bias_ua, 0.0) {
                    h.mix_u64(line.circuit.structure_fingerprint());
                    h.mix_u64(line.circuit.value_fingerprint());
                } else {
                    h.mix_u64(*stages as u64);
                    h.mix_f64(*bias_ua);
                }
                h.mix_u64(inputs_ua.len() as u64);
                for &i in inputs_ua {
                    h.mix_f64(i);
                }
            }
            JobSpec::Netlist { netlist } => {
                h.mix_u64(6);
                // The canonical parse makes the key text-representation
                // independent: permuting cards or editing comments lands
                // in the same cache slot, and run() executes the same
                // canonical circuit, so sharing the slot is sound.
                if let Ok(circuit) = parse_netlist_canonical(netlist) {
                    h.mix_u64(circuit.structure_fingerprint());
                    h.mix_u64(circuit.value_fingerprint());
                } else {
                    // Unparsable text still needs a stable (never-cached)
                    // key; hash the raw bytes.
                    h.mix_u64(netlist.len() as u64);
                    h.mix_bytes(netlist.as_bytes());
                }
            }
            JobSpec::TranStream {
                stages,
                bias_ua,
                input_ua,
                steps,
                dt_ns,
                clock_hz,
                chunk_steps,
                seg_len,
            } => {
                h.mix_u64(7);
                if let Ok(line) = build_line(*stages, *bias_ua, *input_ua) {
                    h.mix_u64(line.circuit.structure_fingerprint());
                    h.mix_u64(line.circuit.value_fingerprint());
                } else {
                    h.mix_u64(*stages as u64);
                    h.mix_f64(*bias_ua);
                    h.mix_f64(*input_ua);
                }
                h.mix_u64(*steps as u64);
                h.mix_f64(*dt_ns);
                h.mix_f64(*clock_hz);
                h.mix_u64(*chunk_steps as u64);
                h.mix_u64(*seg_len as u64);
            }
        }
        h.finish()
    }

    /// The disk-tier key a streaming job's checkpoint lives under:
    /// derived from the job key through a tagged FNV-1a, so it can never
    /// collide with any result key (those hash spec contents, this
    /// hashes a tag plus the finished result key).
    #[must_use]
    pub fn checkpoint_key(job_key: u64) -> u64 {
        let mut h = Fnv1a::new();
        h.mix_bytes(b"tran-stream-checkpoint");
        h.mix_u64(job_key);
        h.finish()
    }

    /// The job's *topology* address: specs that share a circuit structure
    /// — and only those — share this fingerprint, regardless of element
    /// values or analysis parameters.
    ///
    /// This is the sharding key for the `si-router` ring: every job over
    /// the same topology lands on the same replica, so that replica's
    /// symbolic-factorization cache (one factorization per structure)
    /// specializes for its slice of the circuit families. Netlist jobs
    /// hash the canonical-parse structure fingerprint, so a netlist twin
    /// of a generator-built delay line keys to the same structure as any
    /// other netlist with that topology, independent of the text
    /// representation.
    ///
    /// Invalid specs (unbuildable lines, unparsable netlists) still get a
    /// stable fingerprint from their raw parameters so the router can
    /// place them deterministically; they never reach a solver cache.
    #[must_use]
    pub fn structure_fingerprint(&self) -> u64 {
        // Generator-built circuits are fingerprinted through the same
        // canonical netlist round trip as user submissions: emit the
        // circuit, re-parse it canonically, fingerprint that. Without
        // the round trip the generator's element order would hash
        // differently from the canonical card order, and a netlist twin
        // would land on a different shard than its generator job.
        let canonical = |circuit: &si_analog::netlist::Circuit| {
            si_analog::parse::to_netlist(circuit)
                .ok()
                .and_then(|text| parse_netlist_canonical(&text).ok())
                .map_or_else(
                    || circuit.structure_fingerprint(),
                    |canon| canon.structure_fingerprint(),
                )
        };
        let mut h = Fnv1a::new();
        match self {
            JobSpec::DelayLineDc {
                stages,
                bias_ua,
                input_ua,
            } => {
                if let Ok(line) = build_line(*stages, *bias_ua, *input_ua) {
                    h.mix_u64(canonical(&line.circuit));
                } else {
                    h.mix_u64(1);
                    h.mix_u64(*stages as u64);
                }
            }
            JobSpec::DelayLineTran {
                stages,
                bias_ua,
                input_ua,
                ..
            } => {
                if let Ok(line) = build_line(*stages, *bias_ua, *input_ua) {
                    h.mix_u64(canonical(&line.circuit));
                } else {
                    h.mix_u64(2);
                    h.mix_u64(*stages as u64);
                }
            }
            JobSpec::DelayLineAc {
                stages,
                bias_ua,
                input_ua,
                ..
            } => {
                if let Ok(line) = build_line(*stages, *bias_ua, *input_ua) {
                    h.mix_u64(canonical(&line.circuit));
                } else {
                    h.mix_u64(3);
                    h.mix_u64(*stages as u64);
                }
            }
            JobSpec::SndrSweep { .. } => {
                // No circuit behind it; all sweeps share one "structure".
                h.mix_u64(4);
            }
            JobSpec::DelayLineDcBatch {
                stages, bias_ua, ..
            } => {
                if let Ok(line) = build_line(*stages, *bias_ua, 0.0) {
                    h.mix_u64(canonical(&line.circuit));
                } else {
                    h.mix_u64(5);
                    h.mix_u64(*stages as u64);
                }
            }
            JobSpec::Netlist { netlist } => {
                if let Ok(circuit) = parse_netlist_canonical(netlist) {
                    h.mix_u64(circuit.structure_fingerprint());
                } else {
                    h.mix_u64(6);
                    h.mix_u64(netlist.len() as u64);
                    h.mix_bytes(netlist.as_bytes());
                }
            }
            JobSpec::TranStream {
                stages,
                bias_ua,
                input_ua,
                ..
            } => {
                if let Ok(line) = build_line(*stages, *bias_ua, *input_ua) {
                    h.mix_u64(canonical(&line.circuit));
                } else {
                    h.mix_u64(7);
                    h.mix_u64(*stages as u64);
                }
            }
        }
        h.finish()
    }

    /// The kind tag used on the wire.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::DelayLineDc { .. } => "delay_line_dc",
            JobSpec::DelayLineTran { .. } => "delay_line_tran",
            JobSpec::DelayLineAc { .. } => "delay_line_ac",
            JobSpec::SndrSweep { .. } => "sndr_sweep",
            JobSpec::DelayLineDcBatch { .. } => "delay_line_dc_batch",
            JobSpec::Netlist { .. } => "netlist",
            JobSpec::TranStream { .. } => "tran_stream",
        }
    }

    /// Whether this spec runs as a streaming job: chunked execution,
    /// per-chunk checkpoints, resumable after a crash.
    #[must_use]
    pub fn is_stream(&self) -> bool {
        matches!(self, JobSpec::TranStream { .. })
    }

    /// Total chunk count of a streaming spec (`None` for every other
    /// kind): `ceil(steps / chunk_steps)`.
    #[must_use]
    pub fn stream_chunk_count(&self) -> Option<usize> {
        match self {
            JobSpec::TranStream {
                steps, chunk_steps, ..
            } => Some(steps.div_ceil(*chunk_steps)),
            _ => None,
        }
    }

    /// Number of scenarios this spec fans out to: 1 for every single-shot
    /// analysis, the input count for a batch. Admission control prices a
    /// batch as one job; `/metrics` counts its scenarios through this.
    #[must_use]
    pub fn scenario_count(&self) -> usize {
        match self {
            JobSpec::DelayLineDcBatch { inputs_ua, .. } => inputs_ua.len(),
            _ => 1,
        }
    }

    /// Parses a spec from the `POST /v1/jobs` request body.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidSpec`] for unknown kinds, missing fields, or
    /// out-of-range values (via [`JobSpec::validate`]).
    pub fn from_json(v: &Json) -> Result<JobSpec, ServiceError> {
        let invalid = |msg: String| ServiceError::InvalidSpec(msg);
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| invalid("missing \"kind\"".to_string()))?;
        let num = |key: &str| -> Result<f64, ServiceError> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| invalid(format!("missing numeric \"{key}\"")))
        };
        let int = |key: &str| -> Result<usize, ServiceError> {
            let n = num(key)?;
            if n < 0.0 || n.fract() != 0.0 || n > 9e15 {
                return Err(invalid(format!("\"{key}\" must be a non-negative integer")));
            }
            Ok(n as usize)
        };
        let spec = match kind {
            "delay_line_dc" => JobSpec::DelayLineDc {
                stages: int("stages")?,
                bias_ua: num("bias_ua")?,
                input_ua: num("input_ua")?,
            },
            "delay_line_tran" => JobSpec::DelayLineTran {
                stages: int("stages")?,
                bias_ua: num("bias_ua")?,
                input_ua: num("input_ua")?,
                steps: int("steps")?,
                dt_ns: num("dt_ns")?,
                clock_hz: num("clock_hz")?,
            },
            "delay_line_ac" => JobSpec::DelayLineAc {
                stages: int("stages")?,
                bias_ua: num("bias_ua")?,
                input_ua: num("input_ua")?,
                f_lo_hz: num("f_lo_hz")?,
                f_hi_hz: num("f_hi_hz")?,
                points: int("points")?,
            },
            "sndr_sweep" => {
                let levels = v
                    .get("levels_db")
                    .and_then(Json::as_array)
                    .ok_or_else(|| invalid("missing array \"levels_db\"".to_string()))?;
                let levels_db = levels
                    .iter()
                    .map(|l| {
                        l.as_f64()
                            .ok_or_else(|| invalid("levels_db entries must be numbers".to_string()))
                    })
                    .collect::<Result<Vec<f64>, _>>()?;
                JobSpec::SndrSweep {
                    full_scale_ua: num("full_scale_ua")?,
                    levels_db,
                }
            }
            "delay_line_dc_batch" => {
                let inputs = v
                    .get("inputs_ua")
                    .and_then(Json::as_array)
                    .ok_or_else(|| invalid("missing array \"inputs_ua\"".to_string()))?;
                let inputs_ua = inputs
                    .iter()
                    .map(|l| {
                        l.as_f64()
                            .ok_or_else(|| invalid("inputs_ua entries must be numbers".to_string()))
                    })
                    .collect::<Result<Vec<f64>, _>>()?;
                JobSpec::DelayLineDcBatch {
                    stages: int("stages")?,
                    bias_ua: num("bias_ua")?,
                    inputs_ua,
                }
            }
            "netlist" => {
                let text = v
                    .get("netlist")
                    .and_then(Json::as_str)
                    .ok_or_else(|| invalid("missing string \"netlist\"".to_string()))?;
                JobSpec::Netlist {
                    netlist: text.to_string(),
                }
            }
            "tran_stream" => JobSpec::TranStream {
                stages: int("stages")?,
                bias_ua: num("bias_ua")?,
                input_ua: num("input_ua")?,
                steps: int("steps")?,
                dt_ns: num("dt_ns")?,
                clock_hz: num("clock_hz")?,
                chunk_steps: int("chunk_steps")?,
                seg_len: int("seg_len")?,
            },
            other => return Err(invalid(format!("unknown kind {other:?}"))),
        };
        // Canned kinds are validated eagerly so a bad wire document is a
        // `400` before it ever reaches the service. Netlist specs are NOT:
        // the admission gauntlet in `submit_once` must see the raw text
        // first — the byte cap has to refuse oversized text *before* any
        // parse, and the netlist telemetry counters live behind it.
        if !matches!(spec, JobSpec::Netlist { .. }) {
            spec.validate()?;
        }
        Ok(spec)
    }

    /// Serializes the spec back to its wire form.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("kind".to_string(), Json::String(self.kind().to_string()))];
        match self {
            JobSpec::DelayLineDc {
                stages,
                bias_ua,
                input_ua,
            } => {
                pairs.push(("stages".to_string(), Json::Number(*stages as f64)));
                pairs.push(("bias_ua".to_string(), Json::Number(*bias_ua)));
                pairs.push(("input_ua".to_string(), Json::Number(*input_ua)));
            }
            JobSpec::DelayLineTran {
                stages,
                bias_ua,
                input_ua,
                steps,
                dt_ns,
                clock_hz,
            } => {
                pairs.push(("stages".to_string(), Json::Number(*stages as f64)));
                pairs.push(("bias_ua".to_string(), Json::Number(*bias_ua)));
                pairs.push(("input_ua".to_string(), Json::Number(*input_ua)));
                pairs.push(("steps".to_string(), Json::Number(*steps as f64)));
                pairs.push(("dt_ns".to_string(), Json::Number(*dt_ns)));
                pairs.push(("clock_hz".to_string(), Json::Number(*clock_hz)));
            }
            JobSpec::DelayLineAc {
                stages,
                bias_ua,
                input_ua,
                f_lo_hz,
                f_hi_hz,
                points,
            } => {
                pairs.push(("stages".to_string(), Json::Number(*stages as f64)));
                pairs.push(("bias_ua".to_string(), Json::Number(*bias_ua)));
                pairs.push(("input_ua".to_string(), Json::Number(*input_ua)));
                pairs.push(("f_lo_hz".to_string(), Json::Number(*f_lo_hz)));
                pairs.push(("f_hi_hz".to_string(), Json::Number(*f_hi_hz)));
                pairs.push(("points".to_string(), Json::Number(*points as f64)));
            }
            JobSpec::SndrSweep {
                full_scale_ua,
                levels_db,
            } => {
                pairs.push(("full_scale_ua".to_string(), Json::Number(*full_scale_ua)));
                pairs.push((
                    "levels_db".to_string(),
                    Json::Array(levels_db.iter().map(|&l| Json::Number(l)).collect()),
                ));
            }
            JobSpec::DelayLineDcBatch {
                stages,
                bias_ua,
                inputs_ua,
            } => {
                pairs.push(("stages".to_string(), Json::Number(*stages as f64)));
                pairs.push(("bias_ua".to_string(), Json::Number(*bias_ua)));
                pairs.push((
                    "inputs_ua".to_string(),
                    Json::Array(inputs_ua.iter().map(|&l| Json::Number(l)).collect()),
                ));
            }
            JobSpec::Netlist { netlist } => {
                pairs.push(("netlist".to_string(), Json::String(netlist.clone())));
            }
            JobSpec::TranStream {
                stages,
                bias_ua,
                input_ua,
                steps,
                dt_ns,
                clock_hz,
                chunk_steps,
                seg_len,
            } => {
                pairs.push(("stages".to_string(), Json::Number(*stages as f64)));
                pairs.push(("bias_ua".to_string(), Json::Number(*bias_ua)));
                pairs.push(("input_ua".to_string(), Json::Number(*input_ua)));
                pairs.push(("steps".to_string(), Json::Number(*steps as f64)));
                pairs.push(("dt_ns".to_string(), Json::Number(*dt_ns)));
                pairs.push(("clock_hz".to_string(), Json::Number(*clock_hz)));
                pairs.push(("chunk_steps".to_string(), Json::Number(*chunk_steps as f64)));
                pairs.push(("seg_len".to_string(), Json::Number(*seg_len as f64)));
            }
        }
        Json::Object(pairs)
    }

    /// Executes the job on the given workspace. Deterministic: identical
    /// specs produce bit-identical [`JobOutput`]s regardless of which
    /// worker (or how warm a workspace) runs them — the property the
    /// content-addressed cache relies on.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidSpec`] for specs that fail validation,
    /// [`ServiceError::Analysis`] for solver failures.
    pub fn run(&self, ws: &mut EngineWorkspace) -> Result<JobOutput, ServiceError> {
        self.run_with_hook(ws, None)
    }

    /// [`JobSpec::run`] with an optional per-scenario hook, invoked with
    /// the scenario index just before each scenario of a batch job solves,
    /// or the chunk index just before each chunk of a streaming job
    /// (other single-shot jobs never call it). The worker pool threads its
    /// fault injector through here so chaos tests can kill a worker
    /// *mid-batch* or *mid-chunk* and prove partial results are never
    /// cached. The hook observes or panics; it cannot alter results.
    ///
    /// # Errors
    ///
    /// Same as [`JobSpec::run`].
    pub fn run_with_hook(
        &self,
        ws: &mut EngineWorkspace,
        mut scenario_hook: Option<&mut dyn FnMut(usize)>,
    ) -> Result<JobOutput, ServiceError> {
        self.validate()?;
        // Newton budget exhaustion is the one analog failure a retry can
        // plausibly clear (warmer workspace, different gmin path), so it
        // gets the retryable variant; everything else is permanent.
        let analysis = |e: si_analog::AnalogError| match &e {
            si_analog::AnalogError::NoConvergence { .. } => ServiceError::Transient(e.to_string()),
            _ => ServiceError::Analysis(e.to_string()),
        };
        match self {
            JobSpec::DelayLineDc {
                stages,
                bias_ua,
                input_ua,
            } => {
                let line = build_line(*stages, *bias_ua, *input_ua).map_err(analysis)?;
                let sol = DcSolver::new()
                    .with_initial_guess(line.initial_guess.clone())
                    .solve_with(&line.circuit, ws)
                    .map_err(analysis)?;
                let values: Vec<f64> = line.stage_nodes.iter().map(|&n| sol.voltage(n).0).collect();
                let v_in = values.first().copied().unwrap_or(0.0);
                let v_out = values.last().copied().unwrap_or(0.0);
                Ok(JobOutput {
                    values,
                    metrics: vec![
                        ("v_in".to_string(), v_in),
                        ("v_out".to_string(), v_out),
                        (
                            "mna_dimension".to_string(),
                            line.circuit.mna_dimension() as f64,
                        ),
                    ],
                })
            }
            JobSpec::DelayLineTran {
                stages,
                bias_ua,
                input_ua,
                steps,
                dt_ns,
                clock_hz,
            } => {
                let line = build_line(*stages, *bias_ua, *input_ua).map_err(analysis)?;
                let dt = Seconds(dt_ns * 1e-9);
                let t_stop = Seconds(dt.0 * (*steps as f64));
                let clock = TwoPhaseClock::new(Seconds(1.0 / clock_hz), 0.0).map_err(analysis)?;
                let params = TranParams::new(t_stop, dt)
                    .map_err(analysis)?
                    .with_clock(clock);
                let result = tran::run_with(&line.circuit, &params, ws).map_err(analysis)?;
                // The output stage's full waveform is the cached value
                // vector; summary metrics describe the run size.
                let last = *line.stage_nodes.last().expect("stages >= 1");
                let values = result.voltage_waveform(last);
                let final_v = values.last().copied().unwrap_or(0.0);
                Ok(JobOutput {
                    values,
                    metrics: vec![
                        ("steps".to_string(), result.len() as f64),
                        ("final_v_out".to_string(), final_v),
                    ],
                })
            }
            JobSpec::DelayLineAc {
                stages,
                bias_ua,
                input_ua,
                f_lo_hz,
                f_hi_hz,
                points,
            } => {
                let line = build_line(*stages, *bias_ua, *input_ua).map_err(analysis)?;
                let op = DcSolver::new()
                    .with_initial_guess(line.initial_guess.clone())
                    .solve_with(&line.circuit, ws)
                    .map_err(analysis)?;
                let freqs = si_analog::ac::log_frequencies(*f_lo_hz, *f_hi_hz, *points)
                    .map_err(analysis)?;
                let resp = AcAnalysis::default()
                    .response_with(
                        &line.circuit,
                        &op,
                        &AcStimulus::CurrentInto(line.input),
                        &AcProbe::NodeVoltage(line.input),
                        &freqs,
                        ws,
                    )
                    .map_err(analysis)?;
                let values: Vec<f64> = resp.iter().map(|c| c.abs()).collect();
                let dc_gain = values.first().copied().unwrap_or(0.0);
                let bw = si_analog::ac::bandwidth_3db(&freqs, &resp).unwrap_or(f64::NAN);
                Ok(JobOutput {
                    values,
                    metrics: vec![
                        ("transimpedance_dc_ohm".to_string(), dc_gain),
                        ("bandwidth_3db_hz".to_string(), bw),
                    ],
                })
            }
            JobSpec::SndrSweep {
                full_scale_ua,
                levels_db,
            } => {
                let full_scale = full_scale_ua * 1e-6;
                let config = MeasurementConfig::quick();
                let sweep = sndr_sweep(
                    || IdealModulator::new(SecondOrderTopology::default(), full_scale),
                    levels_db,
                    &config,
                )
                .map_err(|e| ServiceError::Analysis(e.to_string()))?;
                let values: Vec<f64> = sweep.points.iter().map(|p| p.sinad_db).collect();
                Ok(JobOutput {
                    values,
                    metrics: vec![
                        ("dynamic_range_db".to_string(), sweep.dynamic_range_db),
                        ("peak_sinad_db".to_string(), sweep.peak_sinad_db()),
                    ],
                })
            }
            JobSpec::DelayLineDcBatch {
                stages,
                bias_ua,
                inputs_ua,
            } => {
                // One topology for every scenario: build at zero input and
                // let BatchRun retune the source per scenario, so the whole
                // batch shares one symbolic factorization and each Newton
                // loop warm-starts from the nearest input current.
                let line = build_line(*stages, *bias_ua, 0.0).map_err(analysis)?;
                let solver = DcSolver::new();
                let sols = BatchRun::new(inputs_ua.len())
                    .with_keys(inputs_ua.clone())
                    .with_cold_start(line.initial_guess.clone())
                    .run_with(
                        &line.circuit,
                        ws,
                        |ckt, i| {
                            if let Some(hook) = scenario_hook.as_deref_mut() {
                                hook(i);
                            }
                            set_current_source(ckt, &line.input_source, Amps(inputs_ua[i] * 1e-6))
                        },
                        |ckt, start, ws| solver.solve_from_with(ckt, start, ws),
                    )
                    .map_err(analysis)?;
                let per_scenario = line.stage_nodes.len();
                let mut values = Vec::with_capacity(sols.len() * per_scenario);
                for sol in &sols {
                    values.extend(line.stage_nodes.iter().map(|&n| sol.voltage(n).0));
                }
                let v_out_first = values.get(per_scenario - 1).copied().unwrap_or(0.0);
                let v_out_last = values.last().copied().unwrap_or(0.0);
                Ok(JobOutput {
                    values,
                    metrics: vec![
                        ("scenarios".to_string(), sols.len() as f64),
                        ("values_per_scenario".to_string(), per_scenario as f64),
                        ("v_out_first_scenario".to_string(), v_out_first),
                        ("v_out_last_scenario".to_string(), v_out_last),
                        (
                            "mna_dimension".to_string(),
                            line.circuit.mna_dimension() as f64,
                        ),
                    ],
                })
            }
            JobSpec::Netlist { netlist } => {
                // User circuits never get the Transient (retryable)
                // mapping: a netlist that exhausts the Newton budget would
                // exhaust it again on every retry, and the retry loop is
                // not a resource a submission should be able to spend.
                // Every failure is a permanent, typed 4xx.
                let circuit = parse_netlist_canonical(netlist)
                    .map_err(|e| ServiceError::NetlistRejected(e.to_string()))?;
                let sol = DcSolver::new()
                    .solve_with(&circuit, ws)
                    .map_err(|e| ServiceError::Analysis(e.to_string()))?;
                // All non-ground node voltages, in node-intern order — the
                // canonical parse makes that order deterministic for every
                // text variant of the same circuit.
                let values: Vec<f64> = sol.node_voltages().split_off(1);
                let v_min = values.iter().copied().fold(f64::INFINITY, f64::min);
                let v_max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                Ok(JobOutput {
                    values,
                    metrics: vec![
                        ("nodes".to_string(), circuit.node_count() as f64),
                        ("devices".to_string(), circuit.elements().len() as f64),
                        ("mna_dimension".to_string(), circuit.mna_dimension() as f64),
                        ("v_min".to_string(), v_min),
                        ("v_max".to_string(), v_max),
                    ],
                })
            }
            JobSpec::TranStream { .. } => {
                // The uninterrupted path runs the exact same chunked
                // executor the service uses, minus persistence — which is
                // what makes a resumed run bit-identical to this one.
                let mut state = self.stream_start(ws)?;
                while state.chunks_done() < state.chunks_total() {
                    if let Some(hook) = scenario_hook.as_deref_mut() {
                        hook(state.chunks_done());
                    }
                    self.stream_advance(&mut state, ws)?;
                }
                self.stream_finish(&state)
            }
        }
    }

    /// Sets up a streaming run: builds the circuit, solves the DC initial
    /// condition, and arms a fresh Welch accumulator. Chunk 0 has not run
    /// yet.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Internal`] for non-streaming specs, plus
    /// validation and DC-solve errors.
    pub(crate) fn stream_start(
        &self,
        ws: &mut EngineWorkspace,
    ) -> Result<StreamState, ServiceError> {
        let JobSpec::TranStream {
            stages,
            bias_ua,
            input_ua,
            steps,
            dt_ns,
            clock_hz,
            chunk_steps,
            seg_len,
        } = self
        else {
            return Err(ServiceError::Internal(
                "stream_start on a non-streaming spec".to_string(),
            ));
        };
        self.validate()?;
        let line = build_line(*stages, *bias_ua, *input_ua).map_err(analysis_error)?;
        let dt = Seconds(dt_ns * 1e-9);
        let t_stop = Seconds(dt.0 * (*steps as f64));
        let clock = TwoPhaseClock::new(Seconds(1.0 / clock_hz), 0.0).map_err(analysis_error)?;
        let params = TranParams::new(t_stop, dt)
            .map_err(analysis_error)?
            .with_clock(clock);
        let solution =
            tran::initial_condition(&line.circuit, &params, ws).map_err(analysis_error)?;
        let acc = WelchAccumulator::new(*seg_len, STREAM_WINDOW)
            .map_err(|e| ServiceError::InvalidSpec(e.to_string()))?;
        Ok(StreamState {
            line,
            params,
            steps: *steps,
            chunk_steps: *chunk_steps,
            solution,
            acc,
            chunks_done: 0,
        })
    }

    /// Rebuilds a streaming run's state from a persisted checkpoint.
    /// Returns `None` — *rerun from scratch*, never a wrong answer — when
    /// the checkpoint does not match this spec: wrong version, wrong job
    /// key, wrong chunking or Welch geometry, or inconsistent lengths.
    pub(crate) fn stream_resume(&self, checkpoint: &JobOutput) -> Option<StreamState> {
        let JobSpec::TranStream {
            stages,
            bias_ua,
            input_ua,
            steps,
            dt_ns,
            clock_hz,
            chunk_steps,
            seg_len,
        } = self
        else {
            return None;
        };
        let metric = |name: &str| {
            checkpoint
                .metrics
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
        };
        let int = |name: &str| {
            metric(name)
                .filter(|v| v.fract() == 0.0 && *v >= 0.0 && *v < 9e15)
                .map(|v| v as u64)
        };
        if int("ckpt_version")? != CHECKPOINT_VERSION {
            return None;
        }
        let key = self.job_key();
        if int("key_hi")? != key >> 32 || int("key_lo")? != key & 0xffff_ffff {
            return None;
        }
        let chunks_total = steps.div_ceil(*chunk_steps) as u64;
        if int("chunks_total")? != chunks_total {
            return None;
        }
        let chunks_done = int("chunks_done")? as usize;
        if chunks_done == 0 || chunks_done as u64 > chunks_total {
            return None;
        }
        if int("seg_len")? != *seg_len as u64 {
            return None;
        }
        let state_len = int("state_len")? as usize;
        let segments = int("welch_segments")? as usize;
        let tail_len = int("welch_tail_len")? as usize;
        let sum_len = seg_len / 2 + 1;
        if checkpoint.values.len() != state_len + sum_len + tail_len {
            return None;
        }

        let line = build_line(*stages, *bias_ua, *input_ua).ok()?;
        if state_len != line.circuit.mna_dimension() {
            return None;
        }
        let dt = Seconds(dt_ns * 1e-9);
        let t_stop = Seconds(dt.0 * (*steps as f64));
        let clock = TwoPhaseClock::new(Seconds(1.0 / clock_hz), 0.0).ok()?;
        let params = TranParams::new(t_stop, dt).ok()?.with_clock(clock);

        let solution = Solution::new(
            checkpoint.values[..state_len].to_vec(),
            line.circuit.node_count(),
        );
        let sum = checkpoint.values[state_len..state_len + sum_len].to_vec();
        let tail = checkpoint.values[state_len + sum_len..].to_vec();
        let acc = WelchAccumulator::resume(*seg_len, STREAM_WINDOW, tail, sum, segments).ok()?;
        Some(StreamState {
            line,
            params,
            steps: *steps,
            chunk_steps: *chunk_steps,
            solution,
            acc,
            chunks_done,
        })
    }

    /// Advances a streaming run by one chunk: solves the next
    /// `chunk_steps` steps (fewer for the final chunk), feeds the
    /// output-stage samples to the Welch accumulator, and stores the
    /// end-of-chunk solution for the next chunk or checkpoint.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Internal`] when the run is already complete, plus
    /// solver errors (Newton budget exhaustion maps to the retryable
    /// [`ServiceError::Transient`]).
    pub(crate) fn stream_advance(
        &self,
        state: &mut StreamState,
        ws: &mut EngineWorkspace,
    ) -> Result<(), ServiceError> {
        let start_step = state.chunks_done * state.chunk_steps;
        if start_step >= state.steps {
            return Err(ServiceError::Internal(
                "stream_advance past the final chunk".to_string(),
            ));
        }
        let this_chunk = state.chunk_steps.min(state.steps - start_step);
        let (part, next) = tran::run_chunk_with(
            &state.line.circuit,
            &state.params,
            start_step,
            this_chunk,
            &state.solution,
            ws,
        )
        .map_err(analysis_error)?;
        let out_node = *state.line.stage_nodes.last().expect("stages >= 1");
        state
            .acc
            .push(&part.voltage_waveform(out_node))
            .map_err(|e| ServiceError::Analysis(e.to_string()))?;
        state.solution = next;
        state.chunks_done += 1;
        Ok(())
    }

    /// Finishes a streaming run: averages the accumulated periodograms
    /// into the job's output spectrum.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Analysis`] if no complete Welch segment was
    /// consumed (ruled out for valid specs by `seg_len ≤ steps + 1`).
    pub(crate) fn stream_finish(&self, state: &StreamState) -> Result<JobOutput, ServiceError> {
        let spectrum = state
            .acc
            .finish()
            .map_err(|e| ServiceError::Analysis(e.to_string()))?;
        let out_node = *state.line.stage_nodes.last().expect("stages >= 1");
        let final_v = state.solution.voltage(out_node).0;
        Ok(JobOutput {
            values: spectrum.powers().to_vec(),
            metrics: vec![
                ("steps".to_string(), state.steps as f64),
                ("chunks".to_string(), state.chunks_total() as f64),
                ("seg_len".to_string(), state.acc.seg_len() as f64),
                ("segments".to_string(), state.acc.segments() as f64),
                ("final_v_out".to_string(), final_v),
            ],
        })
    }
}

/// Version tag written into every streaming checkpoint; bump when the
/// layout changes so stale checkpoints are rerun, not misread.
const CHECKPOINT_VERSION: u64 = 1;

/// The window every streaming spectrum uses.
const STREAM_WINDOW: Window = Window::Hann;

/// Newton budget exhaustion is the one analog failure a retry can
/// plausibly clear (warmer workspace, different gmin path), so it gets
/// the retryable variant; everything else is permanent.
fn analysis_error(e: si_analog::AnalogError) -> ServiceError {
    match &e {
        si_analog::AnalogError::NoConvergence { .. } => ServiceError::Transient(e.to_string()),
        _ => ServiceError::Analysis(e.to_string()),
    }
}

/// In-progress state of a [`JobSpec::TranStream`] execution: the built
/// circuit plus everything a checkpoint must capture to resume at the
/// next chunk boundary — the end-of-chunk MNA solution and the Welch
/// accumulator's running state.
#[derive(Debug)]
pub struct StreamState {
    line: si_analog::cells::DelayLine,
    params: TranParams,
    steps: usize,
    chunk_steps: usize,
    solution: Solution,
    acc: WelchAccumulator,
    chunks_done: usize,
}

impl StreamState {
    /// Chunks completed so far.
    #[must_use]
    pub fn chunks_done(&self) -> usize {
        self.chunks_done
    }

    /// Total chunks the run needs.
    #[must_use]
    pub fn chunks_total(&self) -> usize {
        self.steps.div_ceil(self.chunk_steps)
    }

    /// Serializes the resumable state as a [`JobOutput`] so checkpoints
    /// ride the same checksummed, atomic-rename, quarantine-on-corruption
    /// disk format as `.sic` result entries. `job_key` is folded in so a
    /// checkpoint can never resume a different job.
    #[must_use]
    pub fn to_checkpoint(&self, job_key: u64) -> JobOutput {
        let mut values = self.solution.raw().to_vec();
        let state_len = values.len();
        values.extend_from_slice(self.acc.power_sum());
        values.extend_from_slice(self.acc.tail());
        JobOutput {
            values,
            metrics: vec![
                ("ckpt_version".to_string(), CHECKPOINT_VERSION as f64),
                ("key_hi".to_string(), (job_key >> 32) as f64),
                ("key_lo".to_string(), (job_key & 0xffff_ffff) as f64),
                ("chunks_done".to_string(), self.chunks_done as f64),
                ("chunks_total".to_string(), self.chunks_total() as f64),
                ("state_len".to_string(), state_len as f64),
                ("seg_len".to_string(), self.acc.seg_len() as f64),
                ("welch_segments".to_string(), self.acc.segments() as f64),
                ("welch_tail_len".to_string(), self.acc.tail().len() as f64),
            ],
        }
    }
}

/// Builds the delay line for the given knobs with the input source set.
fn build_line(
    stages: usize,
    bias_ua: f64,
    input_ua: f64,
) -> Result<si_analog::cells::DelayLine, si_analog::AnalogError> {
    let design = DelayLineDesign {
        stages,
        bias: Amps(bias_ua * 1e-6),
        vov: Volts(0.25),
        hold_cap: Farads(0.5e-12),
    };
    let mut line = design.build()?;
    set_current_source(&mut line.circuit, &line.input_source, Amps(input_ua * 1e-6))?;
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc_spec() -> JobSpec {
        JobSpec::DelayLineDc {
            stages: 4,
            bias_ua: 20.0,
            input_ua: 2.0,
        }
    }

    #[test]
    fn job_key_is_stable_and_value_sensitive() {
        let a = dc_spec();
        assert_eq!(a.job_key(), dc_spec().job_key());
        let b = JobSpec::DelayLineDc {
            stages: 4,
            bias_ua: 20.0,
            input_ua: 2.5,
        };
        assert_ne!(a.job_key(), b.job_key());
        let c = JobSpec::DelayLineDc {
            stages: 5,
            bias_ua: 20.0,
            input_ua: 2.0,
        };
        assert_ne!(a.job_key(), c.job_key());
    }

    #[test]
    fn kinds_never_collide_on_shared_params() {
        let dc = dc_spec();
        let ac = JobSpec::DelayLineAc {
            stages: 4,
            bias_ua: 20.0,
            input_ua: 2.0,
            f_lo_hz: 1e3,
            f_hi_hz: 1e6,
            points: 4,
        };
        assert_ne!(dc.job_key(), ac.job_key());
    }

    #[test]
    fn json_round_trip_preserves_key() {
        let specs = vec![
            dc_spec(),
            JobSpec::DelayLineTran {
                stages: 3,
                bias_ua: 20.0,
                input_ua: 1.0,
                steps: 8,
                dt_ns: 100.0,
                clock_hz: 1e6,
            },
            JobSpec::DelayLineAc {
                stages: 2,
                bias_ua: 20.0,
                input_ua: 0.0,
                f_lo_hz: 1e3,
                f_hi_hz: 1e8,
                points: 5,
            },
            JobSpec::SndrSweep {
                full_scale_ua: 6.0,
                levels_db: vec![-40.0, -20.0, -6.0],
            },
        ];
        for spec in specs {
            let wire = spec.to_json().to_string_compact();
            let parsed = JobSpec::from_json(&crate::json::parse(&wire).unwrap()).unwrap();
            assert_eq!(parsed, spec);
            assert_eq!(parsed.job_key(), spec.job_key());
        }
    }

    #[test]
    fn invalid_specs_are_rejected_with_typed_error() {
        let bad = JobSpec::DelayLineDc {
            stages: 0,
            bias_ua: 20.0,
            input_ua: 0.0,
        };
        assert!(matches!(bad.validate(), Err(ServiceError::InvalidSpec(_))));
        let parse_err = JobSpec::from_json(&crate::json::parse(r#"{"kind":"nope"}"#).unwrap());
        assert!(matches!(parse_err, Err(ServiceError::InvalidSpec(_))));
    }

    #[test]
    fn dc_job_runs_and_is_deterministic() {
        let spec = dc_spec();
        let mut ws1 = EngineWorkspace::new();
        let mut ws2 = EngineWorkspace::new();
        let a = spec.run(&mut ws1).unwrap();
        let b = spec.run(&mut ws2).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.values.len(), 4);
        // Diode-connected NMOS nodes sit near Vgs = Vt + Vov ≈ 1.05 V.
        assert!(a.values.iter().all(|v| *v > 0.5 && *v < 2.0), "{a:?}");
    }

    fn batch_spec(inputs: &[f64]) -> JobSpec {
        JobSpec::DelayLineDcBatch {
            stages: 4,
            bias_ua: 20.0,
            inputs_ua: inputs.to_vec(),
        }
    }

    #[test]
    fn batch_spec_round_trips_and_keys_on_inputs() {
        let a = batch_spec(&[1.0, 2.0, 3.0]);
        let wire = a.to_json().to_string_compact();
        let parsed = JobSpec::from_json(&crate::json::parse(&wire).unwrap()).unwrap();
        assert_eq!(parsed, a);
        assert_eq!(parsed.job_key(), a.job_key());
        assert_eq!(a.scenario_count(), 3);
        // Reordering or retuning scenarios moves the key; a single job and
        // a one-scenario batch never collide.
        assert_ne!(a.job_key(), batch_spec(&[3.0, 2.0, 1.0]).job_key());
        assert_ne!(a.job_key(), batch_spec(&[1.0, 2.0]).job_key());
        let single = JobSpec::DelayLineDc {
            stages: 4,
            bias_ua: 20.0,
            input_ua: 2.0,
        };
        assert_ne!(single.job_key(), batch_spec(&[2.0]).job_key());
        assert_eq!(single.scenario_count(), 1);
    }

    #[test]
    fn batch_spec_validates_inputs() {
        assert!(matches!(
            batch_spec(&[]).validate(),
            Err(ServiceError::InvalidSpec(_))
        ));
        assert!(matches!(
            batch_spec(&[f64::NAN]).validate(),
            Err(ServiceError::InvalidSpec(_))
        ));
        assert!(batch_spec(&[0.5]).validate().is_ok());
    }

    #[test]
    fn batch_job_runs_deterministically_and_concatenates_scenarios() {
        let spec = batch_spec(&[0.5, 1.0, 1.5, 2.0]);
        let mut ws1 = EngineWorkspace::new();
        let mut ws2 = EngineWorkspace::new();
        let a = spec.run(&mut ws1).unwrap();
        let b = spec.run(&mut ws2).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.values.len(), 4 * 4, "4 scenarios x 4 stage nodes");
        let per = a
            .metrics
            .iter()
            .find(|(k, _)| k == "values_per_scenario")
            .unwrap()
            .1;
        assert_eq!(per, 4.0);
        assert!(a.values.iter().all(|v| *v > 0.5 && *v < 2.0), "{a:?}");
    }

    #[test]
    fn batch_hook_sees_every_scenario_in_order() {
        let spec = batch_spec(&[0.5, 1.0, 1.5]);
        let mut ws = EngineWorkspace::new();
        let mut seen = Vec::new();
        let mut hook = |i: usize| seen.push(i);
        spec.run_with_hook(&mut ws, Some(&mut hook)).unwrap();
        assert_eq!(seen, vec![0, 1, 2]);
        // Single-shot jobs never consult the hook.
        let mut seen_single = Vec::new();
        let mut hook_single = |i: usize| seen_single.push(i);
        dc_spec()
            .run_with_hook(&mut ws, Some(&mut hook_single))
            .unwrap();
        assert!(seen_single.is_empty());
    }

    const DIVIDER: &str = "\
* two-resistor divider
V1 in 0 3.3
R1 in mid 1k
R2 mid 0 2k
.end
";

    fn netlist_spec(text: &str) -> JobSpec {
        JobSpec::Netlist {
            netlist: text.to_string(),
        }
    }

    #[test]
    fn netlist_spec_round_trips_through_json() {
        let spec = netlist_spec(DIVIDER);
        let wire = spec.to_json().to_string_compact();
        // The netlist text (newlines and all) survives the JSON escape.
        let parsed = JobSpec::from_json(&crate::json::parse(&wire).unwrap()).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.job_key(), spec.job_key());
        assert_eq!(spec.kind(), "netlist");
        assert_eq!(spec.scenario_count(), 1);
    }

    #[test]
    fn netlist_job_key_is_text_representation_independent() {
        // Same circuit, different comments / card order / spacing: the
        // canonical parse maps them to the same job key.
        let permuted = "\
R2   mid 0   2k   ; bottom leg
* a different comment
R1 in mid 1k
V1 in 0 3.3
.end
";
        assert_eq!(
            netlist_spec(DIVIDER).job_key(),
            netlist_spec(permuted).job_key()
        );
        // Retuning one value moves the key.
        let retuned = DIVIDER.replace("2k", "2.2k");
        assert_ne!(
            netlist_spec(DIVIDER).job_key(),
            netlist_spec(&retuned).job_key()
        );
    }

    #[test]
    fn netlist_job_solves_the_divider() {
        let spec = netlist_spec(DIVIDER);
        spec.validate().unwrap();
        let mut ws = EngineWorkspace::new();
        let out = spec.run(&mut ws).unwrap();
        // Nodes intern as in (3.3 V) then mid (2.2 V).
        assert_eq!(out.values.len(), 2);
        assert!((out.values[0] - 3.3).abs() < 1e-9);
        assert!((out.values[1] - 2.2).abs() < 1e-6);
        let nodes = out.metrics.iter().find(|(k, _)| k == "nodes").unwrap().1;
        assert_eq!(nodes, 3.0);
    }

    #[test]
    fn bad_netlists_are_rejected_not_invalid_spec() {
        let bad = netlist_spec("R1 a 0 oops\n");
        let err = bad.validate().unwrap_err();
        assert!(matches!(err, ServiceError::NetlistRejected(_)), "{err:?}");
        assert_eq!(err.http_status(), 422);
        // The rendered message carries the source location.
        assert!(err.to_string().contains("line 1"), "{err}");
        // An empty circuit is typed the same way.
        assert!(matches!(
            netlist_spec(".version 1\n.end\n").validate(),
            Err(ServiceError::NetlistRejected(_))
        ));
        // Unparsable text still has a stable, distinct job key.
        assert_eq!(bad.job_key(), netlist_spec("R1 a 0 oops\n").job_key());
        assert_ne!(bad.job_key(), netlist_spec("R1 a 0 zoops\n").job_key());
    }

    #[test]
    fn admission_cost_prices_without_solving() {
        let cost = netlist_spec(DIVIDER).admission_cost().unwrap().unwrap();
        assert_eq!(cost.nodes, 3);
        assert_eq!(cost.devices, 3);
        assert_eq!(cost.mna_dim, 3); // 2 non-ground nodes + 1 branch
        assert!(cost.nonzeros > 0);
        // Canned kinds are not priced.
        assert_eq!(dc_spec().admission_cost().unwrap(), None);
        // Unparsable text fails pricing with the typed rejection.
        assert!(matches!(
            netlist_spec("garbage").admission_cost(),
            Err(ServiceError::NetlistRejected(_))
        ));
    }

    #[test]
    fn sndr_job_reports_dynamic_range() {
        let spec = JobSpec::SndrSweep {
            full_scale_ua: 6.0,
            levels_db: vec![-60.0, -40.0, -20.0, -6.0],
        };
        let mut ws = EngineWorkspace::new();
        let out = spec.run(&mut ws).unwrap();
        assert_eq!(out.values.len(), 4);
        let dr = out
            .metrics
            .iter()
            .find(|(k, _)| k == "dynamic_range_db")
            .unwrap()
            .1;
        assert!(dr > 20.0, "dynamic range {dr} dB implausibly low");
    }

    fn stream_spec_with(steps: usize, chunk_steps: usize, seg_len: usize) -> JobSpec {
        JobSpec::TranStream {
            stages: 3,
            bias_ua: 20.0,
            input_ua: 2.0,
            steps,
            dt_ns: 50.0,
            clock_hz: 2.0e6,
            chunk_steps,
            seg_len,
        }
    }

    fn stream_spec() -> JobSpec {
        stream_spec_with(900, 128, 256)
    }

    #[test]
    fn stream_spec_round_trips_and_keys_on_every_knob() {
        let spec = stream_spec();
        spec.validate().unwrap();
        assert_eq!(spec.kind(), "tran_stream");
        assert!(spec.is_stream());
        assert_eq!(spec.scenario_count(), 1);
        assert_eq!(spec.stream_chunk_count(), Some(8), "ceil(900 / 128)");
        let wire = spec.to_json().to_string_compact();
        let parsed = JobSpec::from_json(&crate::json::parse(&wire).unwrap()).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.job_key(), spec.job_key());
        // Chunking and Welch geometry are part of the identity: a job
        // resumed under different chunking must not alias the original.
        assert_ne!(spec.job_key(), stream_spec_with(900, 64, 256).job_key());
        assert_ne!(spec.job_key(), stream_spec_with(900, 128, 128).job_key());
        // The checkpoint key never collides with the job key itself.
        assert_ne!(JobSpec::checkpoint_key(spec.job_key()), spec.job_key());
    }

    #[test]
    fn stream_spec_validates_chunking_and_segment_length() {
        assert!(stream_spec_with(900, 0, 256).validate().is_err());
        assert!(stream_spec_with(900, 901, 256).validate().is_err());
        // Not a power of two.
        assert!(stream_spec_with(900, 128, 255).validate().is_err());
        // Longer than the waveform (steps + 1 samples).
        assert!(stream_spec_with(900, 128, 1024).validate().is_err());
        assert!(stream_spec_with(0, 1, 2).validate().is_err());
        // One-chunk streams are legal.
        assert!(stream_spec_with(900, 900, 256).validate().is_ok());
    }

    #[test]
    fn stream_run_is_deterministic_and_reports_chunks() {
        let spec = stream_spec();
        let mut ws1 = EngineWorkspace::new();
        let mut ws2 = EngineWorkspace::new();
        let a = spec.run(&mut ws1).unwrap();
        let b = spec.run(&mut ws2).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.values.len(), 256 / 2 + 1, "one-sided spectrum bins");
        let metric = |name: &str| a.metrics.iter().find(|(k, _)| k == name).unwrap().1;
        assert_eq!(metric("chunks"), 8.0);
        assert_eq!(metric("seg_len"), 256.0);
        assert!(metric("segments") >= 1.0);
        // The hook fires once per chunk, in order.
        let mut seen = Vec::new();
        let mut hook = |i: usize| seen.push(i);
        let mut ws3 = EngineWorkspace::new();
        let c = spec.run_with_hook(&mut ws3, Some(&mut hook)).unwrap();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        assert_eq!(c, a);
    }

    /// The tentpole invariant at the spec level: checkpoint after any
    /// chunk, serialize, resume from the serialized form on a *fresh*
    /// workspace, and the final spectrum is bit-identical to the
    /// uninterrupted run.
    #[test]
    fn stream_checkpoint_resume_is_bit_identical() {
        let spec = stream_spec();
        let key = spec.job_key();
        let mut ws = EngineWorkspace::new();
        let uninterrupted = spec.run(&mut ws).unwrap();

        for stop_after in [1usize, 3, 7] {
            let mut ws1 = EngineWorkspace::new();
            let mut state = spec.stream_start(&mut ws1).unwrap();
            for _ in 0..stop_after {
                spec.stream_advance(&mut state, &mut ws1).unwrap();
            }
            let checkpoint = state.to_checkpoint(key);
            // "Crash": drop the live state, keep only the checkpoint.
            drop(state);
            drop(ws1);
            let mut resumed = spec.stream_resume(&checkpoint).unwrap();
            assert_eq!(resumed.chunks_done(), stop_after);
            let mut ws2 = EngineWorkspace::new();
            while resumed.chunks_done() < resumed.chunks_total() {
                spec.stream_advance(&mut resumed, &mut ws2).unwrap();
            }
            let out = spec.stream_finish(&resumed).unwrap();
            assert_eq!(out.values.len(), uninterrupted.values.len());
            for (a, b) in out.values.iter().zip(uninterrupted.values.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "resume after chunk {stop_after}");
            }
        }
    }

    #[test]
    fn stream_resume_rejects_mismatched_checkpoints() {
        let spec = stream_spec();
        let key = spec.job_key();
        let mut ws = EngineWorkspace::new();
        let mut state = spec.stream_start(&mut ws).unwrap();
        spec.stream_advance(&mut state, &mut ws).unwrap();
        let good = state.to_checkpoint(key);
        assert!(spec.stream_resume(&good).is_some());

        // A checkpoint for a different job never resumes this one.
        let foreign = state.to_checkpoint(key ^ 1);
        assert!(spec.stream_resume(&foreign).is_none());
        // A different chunking rejects the same checkpoint (its own key
        // differs, so the embedded key check fires).
        assert!(stream_spec_with(900, 64, 256)
            .stream_resume(&good)
            .is_none());
        // Corrupt metrics and truncated payloads are rejected, not
        // misread.
        let mut wrong_version = good.clone();
        wrong_version.metrics[0].1 = (CHECKPOINT_VERSION + 1) as f64;
        assert!(spec.stream_resume(&wrong_version).is_none());
        let mut truncated = good.clone();
        truncated.values.pop();
        assert!(spec.stream_resume(&truncated).is_none());
        let mut zero_done = good;
        zero_done.metrics[3].1 = 0.0;
        assert!(spec.stream_resume(&zero_done).is_none());
    }
}
