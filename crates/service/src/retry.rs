//! Deterministic retry with capped exponential backoff and optional
//! seeded jitter.
//!
//! Every delay in a schedule is a pure function of the policy and the
//! attempt index — no wall clock, no ambient randomness — so a retried
//! workload replays identically and the chaos harness can assert exact
//! retry counts. The default policy is jitter-free: the service's own
//! callers are a handful of in-process worker threads whose synchronized
//! retries do not need decorrelating, and a jitter-free schedule is what
//! keeps [`FaultPlan`] runs reproducible end to end.
//!
//! Failover is different. When a replica dies, every client that had a
//! job in flight on it retries at once, and a shared jitter-free schedule
//! would land all of them on the replacement replica in lockstep — a
//! thundering herd exactly when the cluster is weakest. Setting
//! [`RetryPolicy::jitter_seed`] (the router derives it per client)
//! spreads each delay deterministically over `[50%, 100%]` of its
//! nominal value: still a pure function of `(seed, attempt)`, so a rerun
//! with the same seed replays the same schedule, but distinct seeds
//! decorrelate.
//!
//! [`FaultPlan`]: crate::fault::FaultPlan

use std::time::Duration;

/// SplitMix64: the same tiny deterministic mixer [`FaultPlan`] uses to
/// turn (seed, index) into an independent draw.
///
/// [`FaultPlan`]: crate::fault::FaultPlan
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A capped exponential backoff schedule: attempt `k` (zero-based) waits
/// `min(base * multiplier^k, cap)` before retrying, for at most
/// `max_retries` retries. With a `jitter_seed`, each delay is scaled by a
/// deterministic per-attempt factor in `[0.5, 1.0]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed *after* the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Ceiling any single delay is clamped to (before jitter).
    pub max_delay: Duration,
    /// Geometric growth factor between consecutive delays.
    pub multiplier: u32,
    /// `Some(seed)` scales every delay by a deterministic factor in
    /// `[0.5, 1.0]` drawn from `(seed, attempt)`; `None` keeps the exact
    /// jitter-free schedule. Give each client its own seed so their
    /// failover retries decorrelate.
    pub jitter_seed: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(100),
            multiplier: 4,
            jitter_seed: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The same policy with per-client seeded jitter enabled.
    #[must_use]
    pub fn with_jitter_seed(self, seed: u64) -> Self {
        RetryPolicy {
            jitter_seed: Some(seed),
            ..self
        }
    }

    /// The delay before retry number `attempt` (zero-based), or `None`
    /// once the retry budget is exhausted.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> Option<Duration> {
        if attempt >= self.max_retries {
            return None;
        }
        let factor = self
            .multiplier
            .max(1)
            .checked_pow(attempt)
            .unwrap_or(u32::MAX);
        let nominal = (self.base_delay * factor).min(self.max_delay);
        let Some(seed) = self.jitter_seed else {
            return Some(nominal);
        };
        // A 53-bit draw keeps the f64 conversion exact; the factor lands
        // in [0.5, 1.0] so jitter never doubles a schedule's total and a
        // jittered delay never exceeds the cap.
        let draw = splitmix64(seed ^ u64::from(attempt).wrapping_mul(0x2545_f491_4f6c_dd1d));
        let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
        Some(nominal.mul_f64(0.5 + 0.5 * unit))
    }

    /// The whole schedule, for policy tables and tests.
    #[must_use]
    pub fn schedule(&self) -> Vec<Duration> {
        (0..self.max_retries)
            .filter_map(|k| self.delay(k))
            .collect()
    }

    /// Worst-case total time spent sleeping if every retry fires.
    #[must_use]
    pub fn total_backoff(&self) -> Duration {
        self.schedule().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_grows_geometrically_to_the_cap() {
        let p = RetryPolicy {
            max_retries: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(120),
            multiplier: 2,
            jitter_seed: None,
        };
        assert_eq!(
            p.schedule(),
            vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(40),
                Duration::from_millis(80),
                Duration::from_millis(120), // capped, not 160
            ]
        );
        assert_eq!(p.total_backoff(), Duration::from_millis(270));
    }

    #[test]
    fn budget_exhaustion_is_none() {
        let p = RetryPolicy::default();
        assert!(p.delay(p.max_retries).is_none());
        assert!(p.delay(u32::MAX).is_none());
        assert_eq!(RetryPolicy::none().schedule(), Vec::<Duration>::new());
    }

    #[test]
    fn schedule_is_deterministic() {
        let p = RetryPolicy::default();
        assert_eq!(p.schedule(), p.schedule());
        // Huge attempt indices must not overflow.
        let wide = RetryPolicy {
            max_retries: u32::MAX,
            base_delay: Duration::from_secs(1),
            max_delay: Duration::from_secs(3),
            multiplier: 1000,
            jitter_seed: None,
        };
        assert_eq!(wide.delay(31), Some(Duration::from_secs(3)));
    }

    #[test]
    fn jitter_is_seeded_bounded_and_replayable() {
        let base = RetryPolicy {
            max_retries: 6,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(120),
            multiplier: 2,
            jitter_seed: None,
        };
        let jittered = base.with_jitter_seed(42);
        // Replayable: the same seed draws the same schedule.
        assert_eq!(jittered.schedule(), jittered.schedule());
        // Bounded: every delay stays within [50%, 100%] of nominal.
        for (k, (nominal, with)) in base
            .schedule()
            .iter()
            .zip(jittered.schedule().iter())
            .enumerate()
        {
            let lo = nominal.mul_f64(0.5);
            assert!(
                *with >= lo && *with <= *nominal,
                "attempt {k}: {with:?} outside [{lo:?}, {nominal:?}]"
            );
        }
        // Decorrelated: distinct seeds give distinct schedules, and the
        // draws vary across attempts (not one shared scale factor).
        assert_ne!(jittered.schedule(), base.with_jitter_seed(43).schedule());
        let ratios: Vec<u128> = base
            .schedule()
            .iter()
            .zip(jittered.schedule().iter())
            .map(|(n, j)| j.as_nanos() * 1000 / n.as_nanos())
            .collect();
        assert!(ratios.windows(2).any(|w| w[0] != w[1]));
    }
}
