//! Deterministic retry with capped exponential backoff.
//!
//! Every delay in a schedule is a pure function of the attempt index —
//! no wall clock, no randomness — so a retried workload replays
//! identically and the chaos harness can assert exact retry counts.
//! Jitter is deliberately absent: the service's callers are a handful of
//! in-process worker threads or a test load generator, not a fleet of
//! independent clients whose synchronized retries need decorrelating,
//! and a jitter-free schedule is what keeps [`FaultPlan`] runs
//! reproducible end to end.
//!
//! [`FaultPlan`]: crate::fault::FaultPlan

use std::time::Duration;

/// A capped exponential backoff schedule: attempt `k` (zero-based) waits
/// `min(base * multiplier^k, cap)` before retrying, for at most
/// `max_retries` retries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed *after* the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Ceiling any single delay is clamped to.
    pub max_delay: Duration,
    /// Geometric growth factor between consecutive delays.
    pub multiplier: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(100),
            multiplier: 4,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The delay before retry number `attempt` (zero-based), or `None`
    /// once the retry budget is exhausted.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> Option<Duration> {
        if attempt >= self.max_retries {
            return None;
        }
        let factor = self
            .multiplier
            .max(1)
            .checked_pow(attempt)
            .unwrap_or(u32::MAX);
        Some((self.base_delay * factor).min(self.max_delay))
    }

    /// The whole schedule, for policy tables and tests.
    #[must_use]
    pub fn schedule(&self) -> Vec<Duration> {
        (0..self.max_retries)
            .filter_map(|k| self.delay(k))
            .collect()
    }

    /// Worst-case total time spent sleeping if every retry fires.
    #[must_use]
    pub fn total_backoff(&self) -> Duration {
        self.schedule().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_grows_geometrically_to_the_cap() {
        let p = RetryPolicy {
            max_retries: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(120),
            multiplier: 2,
        };
        assert_eq!(
            p.schedule(),
            vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(40),
                Duration::from_millis(80),
                Duration::from_millis(120), // capped, not 160
            ]
        );
        assert_eq!(p.total_backoff(), Duration::from_millis(270));
    }

    #[test]
    fn budget_exhaustion_is_none() {
        let p = RetryPolicy::default();
        assert!(p.delay(p.max_retries).is_none());
        assert!(p.delay(u32::MAX).is_none());
        assert_eq!(RetryPolicy::none().schedule(), Vec::<Duration>::new());
    }

    #[test]
    fn schedule_is_deterministic() {
        let p = RetryPolicy::default();
        assert_eq!(p.schedule(), p.schedule());
        // Huge attempt indices must not overflow.
        let wide = RetryPolicy {
            max_retries: u32::MAX,
            base_delay: Duration::from_secs(1),
            max_delay: Duration::from_secs(3),
            multiplier: 1000,
        };
        assert_eq!(wide.delay(31), Some(Duration::from_secs(3)));
    }
}
