//! `si-service`: a concurrent simulation job service for the
//! switched-current analysis engine.
//!
//! The engine crates solve one circuit at a time; this crate turns them
//! into a long-running service shaped for many clients asking overlapping
//! questions:
//!
//! - **Content-addressed results** — a job's identity is a process-stable
//!   hash of the circuit's structure and values plus the analysis
//!   parameters ([`jobspec::JobSpec::job_key`]). Ask the same question
//!   twice, pay for one solve.
//! - **Single-flight deduplication** — concurrent identical jobs coalesce
//!   onto one computation ([`cache::ResultCache`]).
//! - **Tiered persistence** — results live in a sharded memory tier and,
//!   when a cache directory is configured, a crash-safe checksummed disk
//!   tier that survives process restarts ([`disk::DiskTier`]).
//! - **Bounded admission** — a fixed worker pool behind a fixed-depth
//!   queue sheds load with a typed [`error::ServiceError::Overloaded`]
//!   instead of queueing without bound ([`pool::WorkerPool`]).
//! - **A std-only wire** — hand-rolled HTTP/1.1 and JSON ([`http`],
//!   [`json`]), because the build environment vendors no network or serde
//!   crates.
//! - **Fault tolerance** — worker panics are contained and retried,
//!   mutex poisoning is recovered instead of cascading, transient
//!   failures back off deterministically ([`retry::RetryPolicy`]), and a
//!   seedable chaos hook ([`fault::FaultInjector`]) proves it all under
//!   injected failure.
//! - **Scale-out** — [`router`] shards jobs across replica processes by
//!   consistent hash on the circuit's structure fingerprint, keeping
//!   each topology's symbolic factorization hot on exactly one replica,
//!   with readiness-driven failover and peer cache warming.
//!
//! ```
//! use si_service::jobspec::JobSpec;
//! use si_service::service::{ServiceConfig, SiService};
//!
//! let svc = SiService::new(ServiceConfig::default());
//! let spec = JobSpec::DelayLineDc { stages: 3, bias_ua: 20.0, input_ua: 1.0 };
//! let (first, cached) = svc.submit_blocking(&spec, None).unwrap();
//! assert!(!cached);
//! let (again, cached) = svc.submit_blocking(&spec, None).unwrap();
//! assert!(cached);
//! assert_eq!(first, again);
//! ```

#![warn(missing_docs)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod budget;
pub mod cache;
pub mod disk;
pub mod error;
pub mod fault;
pub mod http;
pub mod jobspec;
pub mod json;
pub mod pool;
pub mod retry;
pub mod router;
pub mod service;

pub use budget::{price_circuit, AdmissionBudget, CircuitCost};
pub use cache::{CacheTier, TierStats};
pub use disk::{DiskTier, DiskTierConfig};
pub use error::ServiceError;
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultStats};
pub use jobspec::{JobOutput, JobSpec};
pub use retry::RetryPolicy;
pub use router::{Router, RouterConfig, RouterServer};
pub use service::{ServiceConfig, SiService};
