//! The fixed worker pool with bounded-queue admission control.
//!
//! Each worker thread owns one [`EngineWorkspace`] for its whole life, so
//! every job it runs reuses the same factorization buffers, sparse
//! symbolic cache, and telemetry collector — the service-shaped version
//! of the engine's "workspace reuse" discipline. The queue between the
//! acceptor and the workers is a `sync_channel` of fixed depth: when it
//! is full, [`WorkerPool::try_submit`] fails *immediately* with
//! [`ServiceError::Overloaded`] instead of queueing unboundedly — load
//! shedding at admission, where it is cheap, rather than at timeout,
//! where it is not.
//!
//! Worker threads are also where results become durable: the task
//! closure calls the cache's `complete` — which writes through to the
//! persistent disk tier when one is configured — on the worker, before
//! the leader's reply is sent. Persistence costs worker time, never the
//! listener's event loop, and any result a caller has observed is
//! already on disk.
//!
//! Shutdown is graceful by construction: dropping the sender ends the
//! channel, each worker drains what was already admitted, publishes its
//! final telemetry snapshot, and exits; [`WorkerPool::shutdown`] joins
//! them all.
//!
//! Workers are **panic-proof**: each task runs under `catch_unwind`, so a
//! panicking job can neither kill its worker thread (shrinking the pool
//! one crash at a time) nor take the whole process down. After a panic
//! the worker retires its possibly-corrupt [`EngineWorkspace`] — its
//! telemetry is merged into a retired-stats accumulator first, and the
//! swap is counted in [`EngineStats::workspace_resets`] — and continues
//! with a fresh one. Cleanup owed by the task itself (releasing cache
//! followers, dropping cancellation flags) happens via drop guards inside
//! the task closure, which run during the unwind.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread;

use si_analog::engine::EngineWorkspace;
use si_analog::telemetry::{EngineStats, Merge};

use crate::error::ServiceError;

/// A unit of work: runs on a worker's workspace.
pub type Task = Box<dyn FnOnce(&mut EngineWorkspace) + Send>;

/// Pool sizing.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Number of worker threads (each with its own workspace).
    pub workers: usize,
    /// Maximum number of admitted-but-unstarted jobs.
    pub queue_capacity: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 4,
            queue_capacity: 64,
        }
    }
}

/// Live pool counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct PoolStats {
    /// Jobs accepted into the queue since startup.
    pub submitted: u64,
    /// Jobs a worker finished running.
    pub executed: u64,
    /// Jobs rejected by admission control.
    pub rejected: u64,
    /// Jobs admitted and currently waiting or running.
    pub in_flight: u64,
    /// Task panics caught by workers (each one also retired a workspace).
    pub panics_caught: u64,
}

/// A fixed pool of solver workers behind a bounded queue.
///
/// Shutdown state lives behind mutexes so a shared (`Arc`-held) pool can
/// still be drained by any handle — the HTTP server and a signal handler
/// both see the same pool without a `&mut`.
pub struct WorkerPool {
    sender: Mutex<Option<SyncSender<Task>>>,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
    stats_slots: Vec<Arc<Mutex<EngineStats>>>,
    queue_capacity: usize,
    submitted: AtomicU64,
    executed: Arc<AtomicU64>,
    rejected: AtomicU64,
    panics_caught: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawns `config.workers` threads, each owning a stats-enabled
    /// workspace.
    #[must_use]
    pub fn new(config: PoolConfig) -> Self {
        let workers = config.workers.max(1);
        let capacity = config.queue_capacity.max(1);
        let (sender, receiver) = mpsc::sync_channel::<Task>(capacity);
        let receiver = Arc::new(Mutex::new(receiver));
        let executed = Arc::new(AtomicU64::new(0));
        let panics_caught = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::with_capacity(workers);
        let mut stats_slots = Vec::with_capacity(workers);
        for k in 0..workers {
            let receiver = Arc::clone(&receiver);
            let slot = Arc::new(Mutex::new(EngineStats::new()));
            let slot_for_worker = Arc::clone(&slot);
            let executed = Arc::clone(&executed);
            let panics = Arc::clone(&panics_caught);
            stats_slots.push(slot);
            handles.push(
                thread::Builder::new()
                    .name(format!("si-worker-{k}"))
                    .spawn(move || worker_loop(&receiver, &slot_for_worker, &executed, &panics))
                    .expect("spawn worker thread"),
            );
        }
        WorkerPool {
            sender: Mutex::new(Some(sender)),
            handles: Mutex::new(handles),
            stats_slots,
            queue_capacity: capacity,
            submitted: AtomicU64::new(0),
            executed,
            rejected: AtomicU64::new(0),
            panics_caught,
        }
    }

    /// The admission-control entry point: queues the task or rejects it
    /// *now*.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overloaded`] when the queue is full,
    /// [`ServiceError::ShuttingDown`] after [`WorkerPool::shutdown`].
    pub fn try_submit(&self, task: Task) -> Result<(), ServiceError> {
        // Clone the sender out so the solve-length send never holds the
        // shutdown lock.
        let sender = {
            let guard = lock_recover(&self.sender);
            match guard.as_ref() {
                Some(s) => s.clone(),
                None => return Err(ServiceError::ShuttingDown),
            }
        };
        match sender.try_send(task) {
            Ok(()) => {
                self.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Overloaded {
                    queue_capacity: self.queue_capacity,
                })
            }
            Err(TrySendError::Disconnected(_)) => Err(ServiceError::ShuttingDown),
        }
    }

    /// The configured queue depth.
    #[must_use]
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Whether the pool still admits work: `false` once
    /// [`WorkerPool::shutdown`] has taken the sender. The `/readyz`
    /// readiness probe reports this without burning a queue slot.
    #[must_use]
    pub fn is_admitting(&self) -> bool {
        lock_recover(&self.sender).is_some()
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.stats_slots.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        let submitted = self.submitted.load(Ordering::Relaxed);
        let executed = self.executed.load(Ordering::Relaxed);
        PoolStats {
            submitted,
            executed,
            rejected: self.rejected.load(Ordering::Relaxed),
            in_flight: submitted.saturating_sub(executed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
        }
    }

    /// Engine telemetry merged across every worker's workspace — the
    /// scheduling-independent totals (see [`Merge`]).
    pub fn merged_engine_stats(&self) -> EngineStats {
        let mut total = EngineStats::new();
        for slot in &self.stats_slots {
            let snap = lock_recover(slot);
            total.merge(&snap);
        }
        total
    }

    /// Stops admitting, drains the queue, and joins every worker. Safe to
    /// call twice and from any handle.
    pub fn shutdown(&self) {
        drop(lock_recover(&self.sender).take());
        let handles: Vec<_> = lock_recover(&self.handles).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Locks `m`, recovering from poisoning: pool state (the sender `Option`,
/// join handles, stats snapshots) stays consistent across a panicking
/// holder, so the data inside a poisoned lock is still sound.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    receiver: &Arc<Mutex<Receiver<Task>>>,
    slot: &Arc<Mutex<EngineStats>>,
    executed: &Arc<AtomicU64>,
    panics_caught: &Arc<AtomicU64>,
) {
    let mut ws = EngineWorkspace::new();
    ws.enable_stats();
    // Telemetry of workspaces this worker retired after a panic; the
    // published snapshot is always `retired + live`, so counters never
    // move backwards when a workspace is replaced.
    let mut retired = EngineStats::new();
    loop {
        // Hold the receiver lock only for the dequeue, not the solve.
        let task = {
            let rx = lock_recover(receiver);
            rx.recv()
        };
        let Ok(task) = task else {
            // Channel closed and drained: final snapshot, then exit.
            publish_stats(&ws, &retired, slot);
            return;
        };
        // A panicking task must not kill the worker: catch the unwind,
        // retire the (possibly mid-solve) workspace, and keep serving.
        // The workspace is only observed through its telemetry after a
        // panic — never solved with again — so the unwind-safety assert
        // is sound.
        if catch_unwind(AssertUnwindSafe(|| task(&mut ws))).is_err() {
            panics_caught.fetch_add(1, Ordering::Relaxed);
            if let Some(stats) = ws.stats() {
                retired.merge(stats);
            }
            retired.workspace_resets += 1;
            ws = EngineWorkspace::new();
            ws.enable_stats();
        }
        executed.fetch_add(1, Ordering::Relaxed);
        publish_stats(&ws, &retired, slot);
    }
}

fn publish_stats(ws: &EngineWorkspace, retired: &EngineStats, slot: &Arc<Mutex<EngineStats>>) {
    let mut snapshot = retired.clone();
    if let Some(stats) = ws.stats() {
        snapshot.merge(stats);
    }
    *lock_recover(slot) = snapshot;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn runs_tasks_and_counts_them() {
        let pool = WorkerPool::new(PoolConfig {
            workers: 2,
            queue_capacity: 8,
        });
        let (tx, rx) = channel();
        for k in 0..6 {
            let tx = tx.clone();
            pool.try_submit(Box::new(move |_ws| {
                tx.send(k).unwrap();
            }))
            .unwrap();
        }
        let mut got: Vec<i32> = (0..6).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        pool.shutdown();
        let stats = pool.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.executed, 6);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let pool = WorkerPool::new(PoolConfig {
            workers: 1,
            queue_capacity: 1,
        });
        let (release_tx, release_rx) = channel::<()>();
        let (started_tx, started_rx) = channel::<()>();
        // Occupy the single worker...
        pool.try_submit(Box::new(move |_ws| {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        }))
        .unwrap();
        started_rx.recv().unwrap();
        // ...fill the queue slot...
        pool.try_submit(Box::new(|_ws| {})).unwrap();
        // ...and overflow: this must be a typed, immediate rejection.
        let err = pool
            .try_submit(Box::new(|_ws| {}))
            .expect_err("queue should be full");
        assert_eq!(err, ServiceError::Overloaded { queue_capacity: 1 });
        release_tx.send(()).unwrap();
        pool.shutdown();
        assert_eq!(pool.stats().rejected, 1);
        assert_eq!(pool.stats().executed, 2);
    }

    #[test]
    fn shutdown_drains_admitted_work() {
        let pool = WorkerPool::new(PoolConfig {
            workers: 1,
            queue_capacity: 16,
        });
        let (tx, rx) = channel();
        for _ in 0..10 {
            let tx = tx.clone();
            pool.try_submit(Box::new(move |_ws| {
                std::thread::sleep(Duration::from_millis(1));
                tx.send(()).unwrap();
            }))
            .unwrap();
        }
        pool.shutdown();
        // Every admitted task ran before shutdown returned.
        assert_eq!(rx.try_iter().count(), 10);
        assert!(pool.try_submit(Box::new(|_ws| {})).is_err());
    }

    /// Regression (ISSUE 5): a panicking task must not kill its worker
    /// thread — the pool keeps executing later tasks at full strength.
    #[test]
    fn panicking_task_does_not_kill_the_worker() {
        let pool = WorkerPool::new(PoolConfig {
            workers: 1, // a single worker: if the panic killed it, nothing runs after
            queue_capacity: 8,
        });
        let (tx, rx) = channel();
        pool.try_submit(Box::new(|_ws| panic!("injected task panic")))
            .unwrap();
        for k in 0..3 {
            let tx = tx.clone();
            pool.try_submit(Box::new(move |_ws| tx.send(k).unwrap()))
                .unwrap();
        }
        let mut got: Vec<i32> = (0..3)
            .map(|_| {
                rx.recv_timeout(Duration::from_secs(10))
                    .expect("worker died after the panic")
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        pool.shutdown();
        let stats = pool.stats();
        assert_eq!(stats.panics_caught, 1);
        assert_eq!(
            stats.executed, 4,
            "the panicked task still counts as executed"
        );
        assert_eq!(stats.in_flight, 0);
    }

    /// Telemetry from before a panic survives the workspace swap: the
    /// merged counters include the retired workspace's solves plus the
    /// reset marker.
    #[test]
    fn workspace_reset_preserves_retired_telemetry() {
        let pool = WorkerPool::new(PoolConfig {
            workers: 1,
            queue_capacity: 8,
        });
        let spec = crate::jobspec::JobSpec::DelayLineDc {
            stages: 2,
            bias_ua: 20.0,
            input_ua: 1.0,
        };
        let (tx, rx) = channel();
        let solve = |tx: std::sync::mpsc::Sender<()>, spec: crate::jobspec::JobSpec| {
            Box::new(move |ws: &mut EngineWorkspace| {
                spec.run(ws).unwrap();
                tx.send(()).unwrap();
            })
        };
        pool.try_submit(solve(tx.clone(), spec.clone())).unwrap();
        rx.recv().unwrap();
        // The task's send fires before the worker publishes its stats
        // snapshot; poll rather than racing the publication.
        let mut before = pool.merged_engine_stats();
        for _ in 0..200 {
            if before.solves >= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
            before = pool.merged_engine_stats();
        }
        assert!(before.solves >= 1);
        pool.try_submit(Box::new(|_ws| panic!("injected"))).unwrap();
        pool.try_submit(solve(tx, spec)).unwrap();
        rx.recv().unwrap();
        pool.shutdown();
        let after = pool.merged_engine_stats();
        assert_eq!(after.workspace_resets, 1);
        assert!(
            after.solves > before.solves,
            "pre-panic solves were lost: {} -> {}",
            before.solves,
            after.solves
        );
    }

    #[test]
    fn worker_stats_merge_across_workspaces() {
        let pool = WorkerPool::new(PoolConfig {
            workers: 2,
            queue_capacity: 8,
        });
        let (tx, rx) = channel();
        for _ in 0..4 {
            let tx = tx.clone();
            pool.try_submit(Box::new(move |ws| {
                let spec = crate::jobspec::JobSpec::DelayLineDc {
                    stages: 2,
                    bias_ua: 20.0,
                    input_ua: 1.0,
                };
                let out = spec.run(ws).unwrap();
                tx.send(out).unwrap();
            }))
            .unwrap();
        }
        for _ in 0..4 {
            rx.recv().unwrap();
        }
        pool.shutdown();
        let stats = pool.merged_engine_stats();
        assert!(stats.solves >= 4, "merged solves {}", stats.solves);
        assert_eq!(stats.convergence_failures, 0);
    }

    /// ISSUE 6: batch-run telemetry flows from worker workspaces into the
    /// merged snapshot — `batch_runs`/`batch_scenarios` total across
    /// workers exactly like the scalar solve counters.
    #[test]
    fn batch_telemetry_surfaces_in_merged_stats() {
        let pool = WorkerPool::new(PoolConfig {
            workers: 2,
            queue_capacity: 8,
        });
        let (tx, rx) = channel();
        for _ in 0..3 {
            let tx = tx.clone();
            pool.try_submit(Box::new(move |ws| {
                let spec = crate::jobspec::JobSpec::DelayLineDcBatch {
                    stages: 2,
                    bias_ua: 20.0,
                    inputs_ua: vec![0.5, 1.0, 2.0, 4.0],
                };
                let out = spec.run(ws).unwrap();
                tx.send(out).unwrap();
            }))
            .unwrap();
        }
        for _ in 0..3 {
            rx.recv().unwrap();
        }
        pool.shutdown();
        let stats = pool.merged_engine_stats();
        assert_eq!(stats.batch_runs, 3);
        assert_eq!(stats.batch_scenarios, 12);
        // Every scenario after a batch's first warm-started from a
        // converged neighbour, and none were rejected.
        assert_eq!(stats.warm_starts, 9);
        assert_eq!(stats.warm_start_rejected, 0);
    }
}
