//! A minimal JSON value, parser, and writer — std only.
//!
//! The service's wire format is JSON, but the build environment vendors
//! no serde; the bench crate already hand-writes JSON for run reports, so
//! this module completes the round trip with a small recursive-descent
//! parser. Scope is deliberately narrow: UTF-8 input, `\uXXXX` escapes
//! decoded for the BMP only (surrogate pairs rejected), numbers parsed as
//! `f64`. Object key order is preserved on parse and emit so golden
//! snapshots are byte-stable.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers round-trip exactly up to 2⁵³.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value compactly (no whitespace), keys in stored
    /// order.
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(*n, out),
            Json::String(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a human-readable description with the byte offset of the
/// first problem.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::String),
        Some(b't') => parse_literal(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8 number")?;
    text.parse::<f64>()
        .map(Json::Number)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "non-utf8 escape")?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        let c = char::from_u32(cp)
                            .ok_or_else(|| format!("surrogate \\u escape {hex:?}"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (1–4 bytes).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8 in string")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"s":"x\"y\n"}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"y\n"));
        // Emit → reparse is the identity.
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Json::Number(42.0).to_string_compact(), "42");
        assert_eq!(Json::Number(-1.0).to_string_compact(), "-1");
        assert_eq!(Json::Number(0.5).to_string_compact(), "0.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""é→""#).unwrap();
        assert_eq!(v, Json::String("é→".to_string()));
    }

    #[test]
    fn control_chars_escape_on_write() {
        let s = Json::String("\u{0001}".to_string()).to_string_compact();
        assert_eq!(s, "\"\\u0001\"");
    }
}
