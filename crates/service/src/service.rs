//! The service core: cache-aware job submission, deadlines, cancellation,
//! and the `/metrics` aggregation.
//!
//! [`SiService`] glues the [`ResultCache`](crate::cache::ResultCache) in
//! front of the [`WorkerPool`](crate::pool::WorkerPool):
//!
//! 1. A submission is first content-addressed. Cache hits return without
//!    touching the pool; concurrent duplicates coalesce onto the one
//!    in-flight computation.
//! 2. Only a cache *leader* consumes a pool slot, so the bounded queue
//!    measures distinct work, not request volume.
//! 3. If admission control rejects the leader, the flight completes with
//!    [`ServiceError::Overloaded`] so coalesced followers are released —
//!    an overloaded service sheds whole job groups, it never deadlocks
//!    them.
//!
//! Every job id is the 16-hex-digit job key, so ids are deterministic:
//! the same spec maps to the same id on every run, which is what lets the
//! golden wire-format tests pin exact response bytes.
//!
//! # Fault tolerance
//!
//! The submission path survives a worker panicking mid-job: the pool
//! catches the unwind (the worker thread lives on), the
//! [`LeadGuard`](crate::cache::LeadGuard) drop backstop releases
//! coalesced followers with [`ServiceError::Internal`], and a
//! cancellation-flag drop guard inside the task closure prevents the
//! `cancel_flags` map from leaking entries for unwound leaders. Transient
//! failures — Newton budget exhaustion, worker crashes — are retried with
//! the deterministic capped backoff of
//! [`RetryPolicy`](crate::retry::RetryPolicy) before being surfaced.
//! A [`FaultInjector`](crate::fault::FaultInjector) can be installed
//! (tests and the `si_chaos` harness only) to sabotage job executions on
//! the worker thread and prove all of the above.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::budget::AdmissionBudget;
use crate::cache::{CacheOutcome, LeadGuard, ResultCache};
use crate::disk::{DiskTier, DiskTierConfig};
use crate::error::ServiceError;
use crate::fault::{FaultInjector, FaultKind, FaultStats};
use crate::jobspec::{JobOutput, JobSpec};
use crate::json::Json;
use crate::pool::{PoolConfig, WorkerPool};
use crate::retry::RetryPolicy;

/// Service sizing.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (each with a persistent workspace).
    pub workers: usize,
    /// Bounded queue depth for admission control.
    pub queue_capacity: usize,
    /// Deadline applied when a submission does not carry its own.
    pub default_deadline: Option<Duration>,
    /// Backoff schedule for retrying transient failures in
    /// [`SiService::submit_blocking`].
    pub retry: RetryPolicy,
    /// Pre-solve resource ceilings for user-submitted netlists.
    pub budget: AdmissionBudget,
    /// Directory for the persistent disk cache tier; `None` runs
    /// memory-only (results die with the process).
    pub cache_dir: Option<std::path::PathBuf>,
    /// Byte budget for the disk tier when `cache_dir` is set;
    /// least-recently-accessed entries are evicted past it.
    pub cache_budget_bytes: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            default_deadline: None,
            retry: RetryPolicy::default(),
            budget: AdmissionBudget::default(),
            cache_dir: None,
            cache_budget_bytes: 256 << 20,
        }
    }
}

#[derive(Debug, Default)]
struct ServiceCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    deadline_exceeded: AtomicU64,
    canceled: AtomicU64,
    retries: AtomicU64,
    retries_exhausted: AtomicU64,
    /// Submissions that were batch jobs (scenario_count > 1).
    batch_submitted: AtomicU64,
    /// Total scenarios across those batch submissions.
    batch_scenarios: AtomicU64,
    /// Submissions that were user netlists ([`JobSpec::Netlist`]).
    netlist_submitted: AtomicU64,
    /// Netlists rejected by the strict dialect-v1 parse (HTTP 422).
    netlist_rejected_parse: AtomicU64,
    /// Netlists rejected by the admission budget (HTTP 413) — always
    /// *before* any factorization or Newton iteration ran.
    netlist_rejected_budget: AtomicU64,
    /// Cache entries pulled from a peer replica's disk tier during ring
    /// warming (`POST /v1/warm`).
    warm_pulled: AtomicU64,
    /// Warm pulls that did not land: peer miss, transport error, or
    /// bytes that failed validation on ingest.
    warm_failed: AtomicU64,
}

/// Streaming-job state shared between the service front and the worker
/// closure: per-job chunk progress for `GET /v1/jobs/:id` polling plus
/// the stream counters `/metrics` reports. Arc'd because the worker task
/// closure is `'static` and cannot borrow the service.
#[derive(Debug, Default)]
struct StreamShared {
    /// `job_key → (chunks_done, chunks_total)` of in-flight streams.
    progress: Mutex<HashMap<u64, (u64, u64)>>,
    /// Chunks solved across all streaming jobs (resumed runs only count
    /// the chunks they actually re-solve).
    chunks: AtomicU64,
    /// Checkpoints persisted to the disk tier (one per chunk when a
    /// cache directory is configured, zero otherwise).
    checkpoints: AtomicU64,
    /// Streaming executions that started from a valid checkpoint instead
    /// of from scratch.
    resumed: AtomicU64,
}

/// Everything the streaming executor needs beyond the worker's
/// workspace: the checkpoint tier, the shared progress/counter state,
/// and the leader's cancellation and deadline handles.
struct StreamCtx {
    disk: Option<Arc<DiskTier>>,
    shared: Arc<StreamShared>,
    cancel: Arc<AtomicBool>,
    deadline_at: Option<Instant>,
}

type CancelFlags = Arc<Mutex<HashMap<u64, Arc<AtomicBool>>>>;

/// The in-process simulation job service.
pub struct SiService {
    cache: Arc<ResultCache>,
    pool: WorkerPool,
    default_deadline: Option<Duration>,
    retry: RetryPolicy,
    budget: AdmissionBudget,
    counters: ServiceCounters,
    /// Kind tag of every job key ever admitted, for `GET /v1/jobs/:id`.
    seen: Mutex<HashMap<u64, &'static str>>,
    /// Cancellation flags of currently in-flight leaders.
    cancel_flags: CancelFlags,
    /// Progress and counters of streaming jobs, shared with the worker
    /// closures that execute them.
    stream: Arc<StreamShared>,
    /// Test-only chaos hook; `None` in production.
    fault: Mutex<Option<Arc<FaultInjector>>>,
    /// `cache_dir` was configured but the disk tier failed to open: the
    /// service runs memory-only and `/readyz` reports it.
    cache_degraded: bool,
}

/// Locks `m`, recovering from poisoning: every map guarded here (seen
/// kinds, cancel flags, the injector slot) tolerates a writer that died
/// mid-update, so the contained value is still usable.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Removes one `cancel_flags` entry on drop. Captured by the worker task
/// closure so the entry is cleaned up on *every* exit path — normal
/// completion, a panicking leader (the unwind drops the closure's
/// captures), and a task that is dropped unrun after an admission
/// failure. Before this guard existed, an unwinding leader leaked its
/// entry forever.
struct CancelFlagCleanup {
    flags: CancelFlags,
    key: u64,
}

impl Drop for CancelFlagCleanup {
    fn drop(&mut self) {
        lock_recover(&self.flags).remove(&self.key);
    }
}

impl SiService {
    /// Builds the service and spawns its workers.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        // A broken cache directory must not keep the service from
        // starting: persistence degrades to memory-only with a warning,
        // exactly what an operator would want at 3am.
        let mut cache_degraded = false;
        let cache = match &config.cache_dir {
            Some(dir) => match DiskTier::open(DiskTierConfig {
                dir: dir.clone(),
                budget_bytes: config.cache_budget_bytes,
            }) {
                Ok(disk) => ResultCache::with_disk(Arc::new(disk)),
                Err(err) => {
                    eprintln!(
                        "si-service: disk cache at {} unavailable ({err}); running memory-only",
                        dir.display()
                    );
                    cache_degraded = true;
                    ResultCache::new()
                }
            },
            None => ResultCache::new(),
        };
        SiService {
            cache: Arc::new(cache),
            pool: WorkerPool::new(PoolConfig {
                workers: config.workers,
                queue_capacity: config.queue_capacity,
            }),
            default_deadline: config.default_deadline,
            retry: config.retry,
            budget: config.budget,
            counters: ServiceCounters::default(),
            seen: Mutex::new(HashMap::new()),
            cancel_flags: Arc::new(Mutex::new(HashMap::new())),
            stream: Arc::new(StreamShared::default()),
            fault: Mutex::new(None),
            cache_degraded,
        }
    }

    /// Whether this instance is *serving*, not merely up: the pool still
    /// admits work and the configured persistence is actually usable.
    /// `/healthz` answers "is the process alive", this answers "should a
    /// router send jobs here" — a drained pool or a degraded cache dir
    /// flips it to `false` without killing the process.
    #[must_use]
    pub fn is_ready(&self) -> bool {
        self.pool.is_admitting() && !self.cache_degraded
    }

    /// The `/readyz` body: the overall verdict plus the per-condition
    /// breakdown an operator (or the router's probe log) needs to see
    /// *why* a replica went unready.
    #[must_use]
    pub fn readiness(&self) -> Json {
        let cache_state = if self.cache_degraded {
            "degraded"
        } else if self.disk_cache().is_some() {
            "disk"
        } else {
            "memory"
        };
        Json::Object(vec![
            ("ready".to_string(), Json::Bool(self.is_ready())),
            (
                "pool_admitting".to_string(),
                Json::Bool(self.pool.is_admitting()),
            ),
            ("cache".to_string(), Json::String(cache_state.to_string())),
        ])
    }

    /// The receiving half of the replica-warming protocol: pulls each
    /// `key` from `peer`'s `GET /v1/cache/:key` endpoint and ingests the
    /// validated `.sic` bytes into this instance's disk tier. Returns
    /// `(pulled, failed)`; a peer miss, a transport error, or bytes that
    /// fail checksum validation all count as failed — warming is
    /// best-effort and a failed pull just means the job re-solves here.
    pub fn warm_from_peer(&self, peer: &str, keys: &[u64]) -> (u64, u64) {
        let Some(disk) = self.disk_cache().cloned() else {
            // Memory-only replicas have nowhere durable to put entries.
            self.counters
                .warm_failed
                .fetch_add(keys.len() as u64, Ordering::Relaxed);
            return (0, keys.len() as u64);
        };
        let Ok(addrs) = std::net::ToSocketAddrs::to_socket_addrs(&peer) else {
            self.counters
                .warm_failed
                .fetch_add(keys.len() as u64, Ordering::Relaxed);
            return (0, keys.len() as u64);
        };
        let Some(addr) = addrs.into_iter().next() else {
            self.counters
                .warm_failed
                .fetch_add(keys.len() as u64, Ordering::Relaxed);
            return (0, keys.len() as u64);
        };
        let (mut pulled, mut failed) = (0u64, 0u64);
        for &key in keys {
            let path = format!("/v1/cache/{key:016x}");
            let landed = crate::http::http_request_bytes(addr, "GET", &path, None)
                .ok()
                .filter(|(status, _)| *status == 200)
                .is_some_and(|(_, bytes)| disk.ingest(key, &bytes));
            if landed {
                pulled += 1;
            } else {
                failed += 1;
            }
        }
        self.counters
            .warm_pulled
            .fetch_add(pulled, Ordering::Relaxed);
        self.counters
            .warm_failed
            .fetch_add(failed, Ordering::Relaxed);
        (pulled, failed)
    }

    /// Installs a chaos-testing fault injector. **Test-only hook**: jobs
    /// consult the injector on the worker thread and may panic, stall, or
    /// fail transiently according to its plan. Production code never
    /// calls this; an empty slot costs one mutex lock per job execution.
    pub fn install_fault_injector(&self, injector: Arc<FaultInjector>) {
        *lock_recover(&self.fault) = Some(injector);
    }

    /// The installed injector's counters (zeros when none is installed).
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        lock_recover(&self.fault)
            .as_ref()
            .map(|i| i.stats())
            .unwrap_or_default()
    }

    /// Number of leaders currently tracked in the cancellation map —
    /// exposed so leak regression tests can assert it returns to zero.
    #[must_use]
    pub fn cancel_flags_len(&self) -> usize {
        lock_recover(&self.cancel_flags).len()
    }

    /// The deterministic wire id of a spec.
    #[must_use]
    pub fn job_id(spec: &JobSpec) -> String {
        format!("{:016x}", spec.job_key())
    }

    /// Parses a wire id back to a job key.
    #[must_use]
    pub fn parse_job_id(id: &str) -> Option<u64> {
        if id.len() == 16 {
            u64::from_str_radix(id, 16).ok()
        } else {
            None
        }
    }

    /// Submits a job and blocks until its result is available: from the
    /// cache, from a coalesced flight, or from a worker. `deadline`
    /// overrides the service default; `None` with no default waits
    /// indefinitely.
    ///
    /// Transient failures ([`ServiceError::is_retryable`]: Newton budget
    /// exhaustion, a worker crash) are retried with the configured
    /// deterministic capped backoff before being surfaced. The deadline
    /// is an end-to-end budget for this call: it is anchored once, before
    /// the first attempt, and every retry (and its backoff sleep) spends
    /// from the same clock.
    ///
    /// Returns the output plus `true` when it was served without running
    /// the solve for this call (cache hit or coalesced onto another
    /// caller's flight).
    ///
    /// # Errors
    ///
    /// Every [`ServiceError`] variant can surface here; see the module
    /// docs for the overload path.
    pub fn submit_blocking(
        &self,
        spec: &JobSpec,
        deadline: Option<Duration>,
    ) -> Result<(Arc<JobOutput>, bool), ServiceError> {
        // Anchor the deadline ONCE, not per attempt: re-arming it inside
        // each retry let a transiently failing job hold the caller for
        // (retries + 1) × deadline of wall clock instead of one deadline.
        let deadline_at = deadline
            .or(self.default_deadline)
            .map(|d| Instant::now() + d);
        let mut attempt = 0u32;
        loop {
            match self.submit_once(spec, deadline_at) {
                Err(err) if err.is_retryable() => match self.retry.delay(attempt) {
                    Some(delay) => {
                        self.counters.retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(delay);
                        attempt += 1;
                    }
                    None => {
                        if self.retry.max_retries > 0 {
                            self.counters
                                .retries_exhausted
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        if spec.is_stream() {
                            // A stream that dies for good must not leave
                            // its last progress entry behind.
                            lock_recover(&self.stream.progress).remove(&spec.job_key());
                        }
                        return Err(err);
                    }
                },
                other => return other,
            }
        }
    }

    /// Non-blocking probe for an already-resident result, with the exact
    /// counter semantics of a [`SiService::submit_blocking`] cache hit.
    /// `None` means "not served" and counts nothing — the caller must
    /// fall back to a full submission, which does its own counting, so a
    /// probe-then-submit sequence is indistinguishable in `/metrics`
    /// from a plain submission.
    ///
    /// The HTTP front end uses this to answer hits inline on its event
    /// loop instead of paying a handler-thread dispatch. Anything that
    /// could block or burn real CPU stays on the submission path: disk
    /// probes, solves, flight coalescing, and every `Netlist` spec
    /// (whose admission gauntlet parses the full text).
    #[must_use]
    pub fn serve_cached(&self, spec: &JobSpec) -> Option<Arc<JobOutput>> {
        if matches!(spec, JobSpec::Netlist { .. }) {
            return None;
        }
        let key = spec.job_key();
        let out = self.cache.memory_hit(key)?;
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let scenarios = spec.scenario_count() as u64;
        if scenarios > 1 {
            self.counters
                .batch_submitted
                .fetch_add(1, Ordering::Relaxed);
            self.counters
                .batch_scenarios
                .fetch_add(scenarios, Ordering::Relaxed);
        }
        lock_recover(&self.seen).insert(key, spec.kind());
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        Some(out)
    }

    /// One submission attempt: cache lookup, then the leader path.
    /// `deadline_at` is the absolute end-to-end deadline anchored by
    /// [`SiService::submit_blocking`].
    fn submit_once(
        &self,
        spec: &JobSpec,
        deadline_at: Option<Instant>,
    ) -> Result<(Arc<JobOutput>, bool), ServiceError> {
        // User netlists run an admission gauntlet before anything else:
        // byte cap (before the text is even parsed), strict parse (inside
        // validate), then the priced budget — node/device counts, matrix
        // dimension, and structural nonzeros — so an over-budget
        // submission costs a parse and a pattern walk, never a
        // factorization or a Newton iteration.
        if let JobSpec::Netlist { netlist } = spec {
            self.counters
                .netlist_submitted
                .fetch_add(1, Ordering::Relaxed);
            if let Err(err) = self.budget.admit_bytes(netlist.len()) {
                self.counters
                    .netlist_rejected_budget
                    .fetch_add(1, Ordering::Relaxed);
                return Err(err);
            }
        }
        if let Err(err) = spec.validate() {
            if matches!(err, ServiceError::NetlistRejected(_)) {
                self.counters
                    .netlist_rejected_parse
                    .fetch_add(1, Ordering::Relaxed);
            }
            return Err(err);
        }
        if let Some(cost) = spec.admission_cost()? {
            if let Err(err) = self.budget.admit(&cost) {
                self.counters
                    .netlist_rejected_budget
                    .fetch_add(1, Ordering::Relaxed);
                return Err(err);
            }
        }
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        // A batch is admitted, priced, and cached as ONE job; these
        // counters record how many scenarios rode along.
        let scenarios = spec.scenario_count() as u64;
        if scenarios > 1 {
            self.counters
                .batch_submitted
                .fetch_add(1, Ordering::Relaxed);
            self.counters
                .batch_scenarios
                .fetch_add(scenarios, Ordering::Relaxed);
        }
        let key = spec.job_key();
        lock_recover(&self.seen).insert(key, spec.kind());

        let guard = match self.cache.get_or_lead(key) {
            CacheOutcome::Hit(out) => {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                return Ok((out, true));
            }
            CacheOutcome::Coalesced(result) => {
                return self.finish(result.map(|out| (out, true)));
            }
            CacheOutcome::Lead(guard) => guard,
        };
        self.lead(spec, key, guard, deadline_at)
    }

    /// Leader path: enqueue the solve, wait for the reply, enforce the
    /// deadline on the waiting side too.
    fn lead(
        &self,
        spec: &JobSpec,
        key: u64,
        guard: LeadGuard,
        deadline_at: Option<Instant>,
    ) -> Result<(Arc<JobOutput>, bool), ServiceError> {
        let cancel = Arc::new(AtomicBool::new(false));
        lock_recover(&self.cancel_flags).insert(key, Arc::clone(&cancel));
        // Owned by the task closure from here on: the entry is removed
        // when the closure is dropped — after a normal run, during a
        // panic unwind, or unrun after an admission failure.
        let cleanup = CancelFlagCleanup {
            flags: Arc::clone(&self.cancel_flags),
            key,
        };
        let injector = lock_recover(&self.fault).clone();

        // The guard travels to the worker inside a shared slot: exactly
        // one side takes it — the worker on execution, or this thread if
        // admission fails and the (never-run) task is dropped.
        let guard_slot: Arc<Mutex<Option<LeadGuard>>> = Arc::new(Mutex::new(Some(guard)));
        let (reply_tx, reply_rx) = mpsc::channel();
        let task = {
            let spec = spec.clone();
            let cancel = Arc::clone(&cancel);
            let cache = Arc::clone(&self.cache);
            let guard_slot = Arc::clone(&guard_slot);
            let disk = self.cache.disk_tier().cloned();
            let stream = Arc::clone(&self.stream);
            Box::new(move |ws: &mut si_analog::engine::EngineWorkspace| {
                // Dropped on every exit from this body, including unwind.
                let _cleanup = cleanup;
                let Some(guard) = lock_recover(&guard_slot).take() else {
                    return; // admission failure already completed the flight
                };
                let result = if cancel.load(Ordering::Relaxed) {
                    Err(ServiceError::Canceled)
                } else if deadline_at.is_some_and(|at| Instant::now() >= at) {
                    // Admitted but already stale: don't burn solver time
                    // on a result nobody is waiting for.
                    Err(ServiceError::DeadlineExceeded)
                } else {
                    // Chaos hook: sabotage this execution if the plan says
                    // so. A panic here exercises the pool's unwind
                    // containment and the guard's drop backstop. Batch and
                    // streaming jobs skip the job-level draw: their
                    // injector is consulted per scenario / per chunk inside
                    // the executor, so a fault lands *mid-batch* or
                    // *mid-chunk* — after real partial state exists.
                    let ctx = StreamCtx {
                        disk,
                        shared: stream,
                        cancel: Arc::clone(&cancel),
                        deadline_at,
                    };
                    let fault = if spec.scenario_count() > 1 || spec.is_stream() {
                        None
                    } else {
                        injector.as_ref().and_then(|i| i.next_fault())
                    };
                    match fault {
                        Some(FaultKind::PanicWorker | FaultKind::PanicMidChunk) => {
                            panic!("injected fault: worker panic mid-job")
                        }
                        Some(FaultKind::Transient) => Err(ServiceError::Transient(
                            "injected fault: transient non-convergence".to_string(),
                        )),
                        Some(FaultKind::Stall) => {
                            let stall =
                                injector.as_ref().map_or(Duration::ZERO, |i| i.plan().stall);
                            std::thread::sleep(stall);
                            run_job(&spec, key, ws, injector.as_deref(), &ctx).map(Arc::new)
                        }
                        // Connection drops are a client-side fault; the
                        // worker just solves normally.
                        Some(FaultKind::DropConnection) | None => {
                            run_job(&spec, key, ws, injector.as_deref(), &ctx).map(Arc::new)
                        }
                    }
                };
                cache.complete(guard, result.clone());
                // Remove the cancel-flag entry before waking the leader,
                // so a caller observing completion never sees the entry.
                drop(_cleanup);
                let _ = reply_tx.send(result);
            })
        };

        if let Err(reject) = self.pool.try_submit(task) {
            // Release any followers with the same typed rejection, then
            // surface it to this caller. Dropping the unrun task drops
            // `cleanup`, which removes the cancel-flag entry.
            if let Some(guard) = lock_recover(&guard_slot).take() {
                self.cache.complete(guard, Err(reject.clone()));
            }
            return self.finish(Err(reject));
        }

        let result = match deadline_at {
            None => reply_rx
                .recv()
                .unwrap_or_else(|_| Err(self.reply_lost(&guard_slot))),
            Some(at) => loop {
                let now = Instant::now();
                if now >= at {
                    // Tell the worker not to start; if it already did, its
                    // result still lands in the cache for future callers.
                    cancel.store(true, Ordering::Relaxed);
                    break Err(ServiceError::DeadlineExceeded);
                }
                match reply_rx.recv_timeout(at - now) {
                    Ok(result) => break result,
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break Err(self.reply_lost(&guard_slot)),
                }
            },
        };
        self.finish(result.map(|out| (out, false)))
    }

    /// The reply channel disconnected without a reply: the worker
    /// panicked mid-job (its `LeadGuard` backstop already released the
    /// flight) or the task was dropped unrun during shutdown. Completes a
    /// leftover guard, if any, so coalesced followers are never wedged.
    fn reply_lost(&self, guard_slot: &Mutex<Option<LeadGuard>>) -> ServiceError {
        let err = ServiceError::Internal(
            "worker disappeared mid-job (panic or shutdown); nothing was cached".to_string(),
        );
        if let Some(guard) = lock_recover(guard_slot).take() {
            self.cache.complete(guard, Err(err.clone()));
        }
        err
    }

    /// Requests cancellation of an in-flight job. Returns `true` if the
    /// job was in flight (the flag was set), `false` if unknown or done.
    pub fn cancel(&self, key: u64) -> bool {
        match lock_recover(&self.cancel_flags).get(&key) {
            Some(flag) => {
                flag.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Looks up a previously submitted job by key: its kind tag and, if
    /// finished successfully, its cached output. Never blocks.
    pub fn lookup(&self, key: u64) -> Option<(&'static str, Option<Arc<JobOutput>>)> {
        let kind = *lock_recover(&self.seen).get(&key)?;
        Some((kind, self.cache.peek(key)))
    }

    /// Whether a leader is currently computing `key`. `GET /v1/jobs/:id`
    /// uses this to answer `202 Accepted` ("still running, poll again")
    /// instead of `404` for jobs that are in flight right now.
    #[must_use]
    pub fn in_flight(&self, key: u64) -> bool {
        self.cache.in_flight(key)
    }

    /// Chunk progress `(done, total)` of an in-flight streaming job, for
    /// `GET /v1/jobs/:id` polling. `None` for non-streaming jobs and for
    /// streams that are not currently executing.
    #[must_use]
    pub fn progress(&self, key: u64) -> Option<(u64, u64)> {
        lock_recover(&self.stream.progress).get(&key).copied()
    }

    /// Stops admitting jobs and drains the workers. Safe to call twice.
    pub fn shutdown(&self) {
        self.pool.shutdown();
    }

    /// Engine telemetry merged across all workers — what `/metrics`
    /// reports under `"engine"`, as a typed struct.
    #[must_use]
    pub fn engine_stats(&self) -> si_analog::telemetry::EngineStats {
        self.pool.merged_engine_stats()
    }

    /// The `/metrics` document: service counters, cache behavior, pool
    /// occupancy, and engine telemetry merged across every worker.
    #[must_use]
    pub fn metrics(&self) -> Json {
        let cache = self.cache.stats();
        let pool = self.pool.stats();
        // Disk hits are hits: the job did not re-solve. With no disk tier
        // this reduces to the old memory-only ratio.
        let lookups = cache.hits + cache.misses + cache.coalesced + cache.disk_hits;
        let hit_ratio = if lookups == 0 {
            0.0
        } else {
            (cache.hits + cache.coalesced + cache.disk_hits) as f64 / lookups as f64
        };
        let engine = self.pool.merged_engine_stats();
        let engine_json =
            crate::json::parse(&engine.to_json()).expect("EngineStats::to_json emits valid JSON");
        let faults = self.fault_stats();
        let num = |v: u64| Json::Number(v as f64);
        Json::Object(vec![
            (
                "service".to_string(),
                Json::Object(vec![
                    (
                        "submitted".to_string(),
                        num(self.counters.submitted.load(Ordering::Relaxed)),
                    ),
                    (
                        "completed".to_string(),
                        num(self.counters.completed.load(Ordering::Relaxed)),
                    ),
                    (
                        "failed".to_string(),
                        num(self.counters.failed.load(Ordering::Relaxed)),
                    ),
                    (
                        "deadline_exceeded".to_string(),
                        num(self.counters.deadline_exceeded.load(Ordering::Relaxed)),
                    ),
                    (
                        "canceled".to_string(),
                        num(self.counters.canceled.load(Ordering::Relaxed)),
                    ),
                    (
                        "retries".to_string(),
                        num(self.counters.retries.load(Ordering::Relaxed)),
                    ),
                    (
                        "retries_exhausted".to_string(),
                        num(self.counters.retries_exhausted.load(Ordering::Relaxed)),
                    ),
                    (
                        "batch_submitted".to_string(),
                        num(self.counters.batch_submitted.load(Ordering::Relaxed)),
                    ),
                    (
                        "batch_scenarios".to_string(),
                        num(self.counters.batch_scenarios.load(Ordering::Relaxed)),
                    ),
                    (
                        "netlist_submitted".to_string(),
                        num(self.counters.netlist_submitted.load(Ordering::Relaxed)),
                    ),
                    (
                        "netlist_rejected_parse".to_string(),
                        num(self.counters.netlist_rejected_parse.load(Ordering::Relaxed)),
                    ),
                    (
                        "netlist_rejected_budget".to_string(),
                        num(self
                            .counters
                            .netlist_rejected_budget
                            .load(Ordering::Relaxed)),
                    ),
                    (
                        "warm_pulled".to_string(),
                        num(self.counters.warm_pulled.load(Ordering::Relaxed)),
                    ),
                    (
                        "warm_failed".to_string(),
                        num(self.counters.warm_failed.load(Ordering::Relaxed)),
                    ),
                    (
                        "stream_chunks".to_string(),
                        num(self.stream.chunks.load(Ordering::Relaxed)),
                    ),
                    (
                        "stream_checkpoints".to_string(),
                        num(self.stream.checkpoints.load(Ordering::Relaxed)),
                    ),
                    (
                        "stream_resumed".to_string(),
                        num(self.stream.resumed.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "cache".to_string(),
                Json::Object(vec![
                    ("hits".to_string(), num(cache.hits)),
                    ("misses".to_string(), num(cache.misses)),
                    ("coalesced".to_string(), num(cache.coalesced)),
                    ("entries".to_string(), num(cache.entries)),
                    ("hit_ratio".to_string(), Json::Number(hit_ratio)),
                    (
                        "abandoned_flights".to_string(),
                        num(cache.abandoned_flights),
                    ),
                    (
                        "poison_recoveries".to_string(),
                        num(cache.poison_recoveries),
                    ),
                    ("disk_hits".to_string(), num(cache.disk_hits)),
                    ("disk_misses".to_string(), num(cache.disk_misses)),
                    ("disk_writes".to_string(), num(cache.disk_writes)),
                    ("disk_evictions".to_string(), num(cache.disk_evictions)),
                    ("corrupt_evicted".to_string(), num(cache.corrupt_evicted)),
                    ("disk_entries".to_string(), num(cache.disk_entries)),
                    ("disk_bytes".to_string(), num(cache.disk_bytes)),
                ]),
            ),
            (
                "pool".to_string(),
                Json::Object(vec![
                    ("workers".to_string(), num(self.pool.workers() as u64)),
                    (
                        "queue_capacity".to_string(),
                        num(self.pool.queue_capacity() as u64),
                    ),
                    ("submitted".to_string(), num(pool.submitted)),
                    ("executed".to_string(), num(pool.executed)),
                    ("rejected".to_string(), num(pool.rejected)),
                    ("in_flight".to_string(), num(pool.in_flight)),
                    ("panics_caught".to_string(), num(pool.panics_caught)),
                ]),
            ),
            (
                "faults".to_string(),
                Json::Object(vec![
                    ("injected".to_string(), num(faults.injected)),
                    ("panics".to_string(), num(faults.panics)),
                    ("stalls".to_string(), num(faults.stalls)),
                    ("transients".to_string(), num(faults.transients)),
                    ("panic_mid_chunk".to_string(), num(faults.panic_mid_chunks)),
                    (
                        "dropped_connections".to_string(),
                        num(faults.dropped_connections),
                    ),
                    ("survived".to_string(), num(faults.survived)),
                ]),
            ),
            ("engine".to_string(), engine_json),
        ])
    }

    /// [`SiService::metrics`] serialized for the wire.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.metrics().to_string_compact()
    }

    /// The persistent cache tier, when `cache_dir` was configured. The
    /// chaos harness uses this to plant torn entries; operators don't
    /// need it.
    #[must_use]
    pub fn disk_cache(&self) -> Option<&Arc<DiskTier>> {
        self.cache.disk_tier()
    }

    fn finish(
        &self,
        result: Result<(Arc<JobOutput>, bool), ServiceError>,
    ) -> Result<(Arc<JobOutput>, bool), ServiceError> {
        match &result {
            Ok(_) => {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServiceError::DeadlineExceeded) => {
                self.counters
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServiceError::Canceled) => {
                self.counters.canceled.fetch_add(1, Ordering::Relaxed);
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }
}

impl Drop for SiService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Runs a spec on a worker's workspace, threading the fault injector into
/// batch jobs as a per-scenario hook: each scenario after the first draws
/// from the plan, and a drawn worker panic fires *between* scenarios —
/// after real partial state exists — which is exactly what the chaos
/// harness needs to prove partial batches are never cached. Single-shot
/// jobs run unchanged (their one fault draw already happened at job
/// level).
fn run_spec(
    spec: &JobSpec,
    ws: &mut si_analog::engine::EngineWorkspace,
    injector: Option<&FaultInjector>,
) -> Result<JobOutput, ServiceError> {
    match injector {
        Some(inj) if spec.scenario_count() > 1 => {
            let mut hook = |i: usize| {
                if i == 0 {
                    return; // a fault at scenario 0 would not be mid-batch
                }
                match inj.next_fault() {
                    Some(FaultKind::PanicWorker) => {
                        panic!("injected fault: worker panic mid-batch (scenario {i})")
                    }
                    Some(FaultKind::Stall) => std::thread::sleep(inj.plan().stall),
                    // Transient and connection faults are job-level
                    // concepts, and mid-chunk panics target streaming
                    // jobs; mid-batch they are drawn but harmless.
                    Some(
                        FaultKind::Transient | FaultKind::DropConnection | FaultKind::PanicMidChunk,
                    )
                    | None => {}
                }
            };
            spec.run_with_hook(ws, Some(&mut hook))
        }
        _ => spec.run(ws),
    }
}

/// Dispatches a leader's solve on the worker thread: streaming specs run
/// the chunked checkpoint/resume executor, everything else runs
/// [`run_spec`].
fn run_job(
    spec: &JobSpec,
    key: u64,
    ws: &mut si_analog::engine::EngineWorkspace,
    injector: Option<&FaultInjector>,
    ctx: &StreamCtx,
) -> Result<JobOutput, ServiceError> {
    if spec.is_stream() {
        run_stream(spec, key, ws, injector, ctx)
    } else {
        run_spec(spec, ws, injector)
    }
}

/// The streaming executor: resume from the newest valid checkpoint (or
/// start fresh), then solve chunk by chunk, persisting a checkpoint and
/// publishing progress after every chunk.
///
/// Chunked execution is *bit-identical* to an uninterrupted run by
/// construction — chunk boundaries reuse the exact end-of-chunk Newton
/// state the next step would have seen, the time axis is derived from
/// absolute integer step indices, and the Welch accumulator sums
/// periodograms in the batch order — so a job killed mid-run and resumed
/// here produces the same spectrum, bit for bit.
///
/// The per-chunk fault draw skips chunk 0 on a fresh run, so a drawn
/// panic always lands *after* at least one checkpoint exists; that is
/// what makes the `panic_mid_chunk` fault class prove resume rather than
/// prove rerun-from-scratch.
fn run_stream(
    spec: &JobSpec,
    key: u64,
    ws: &mut si_analog::engine::EngineWorkspace,
    injector: Option<&FaultInjector>,
    ctx: &StreamCtx,
) -> Result<JobOutput, ServiceError> {
    let ckpt_key = JobSpec::checkpoint_key(key);
    let resumed = ctx
        .disk
        .as_ref()
        .and_then(|d| crate::cache::CacheTier::load(d.as_ref(), ckpt_key))
        .and_then(|out| spec.stream_resume(&out));
    let mut state = match resumed {
        Some(state) => {
            ctx.shared.resumed.fetch_add(1, Ordering::Relaxed);
            state
        }
        None => spec.stream_start(ws)?,
    };
    let total = state.chunks_total() as u64;
    let publish = |done: usize| {
        lock_recover(&ctx.shared.progress).insert(key, (done as u64, total));
    };
    let unpublish = || {
        lock_recover(&ctx.shared.progress).remove(&key);
    };
    publish(state.chunks_done());
    while state.chunks_done() < state.chunks_total() {
        if ctx.cancel.load(Ordering::Relaxed) {
            unpublish();
            return Err(ServiceError::Canceled);
        }
        if ctx.deadline_at.is_some_and(|at| Instant::now() >= at) {
            unpublish();
            return Err(ServiceError::DeadlineExceeded);
        }
        if state.chunks_done() > 0 {
            match injector.and_then(|i| i.next_fault()) {
                Some(FaultKind::PanicMidChunk | FaultKind::PanicWorker) => {
                    // The unwind leaves the progress entry in place on
                    // purpose: a poller sees the last completed chunk
                    // while the retry warms up.
                    panic!(
                        "injected fault: worker panic mid-chunk (chunk {})",
                        state.chunks_done()
                    )
                }
                Some(FaultKind::Transient) => {
                    unpublish();
                    return Err(ServiceError::Transient(
                        "injected fault: transient non-convergence mid-chunk".to_string(),
                    ));
                }
                Some(FaultKind::Stall) => {
                    std::thread::sleep(injector.map_or(Duration::ZERO, |i| i.plan().stall));
                }
                Some(FaultKind::DropConnection) | None => {}
            }
        }
        if let Err(err) = spec.stream_advance(&mut state, ws) {
            unpublish();
            return Err(err);
        }
        ctx.shared.chunks.fetch_add(1, Ordering::Relaxed);
        if let Some(disk) = &ctx.disk {
            // Checkpoints ride the disk tier's `.sic` discipline:
            // checksummed, written via atomic rename, quarantined on
            // corruption — a SIGKILL mid-write costs one chunk, never a
            // wrong resume. A completed run's checkpoint is left to LRU
            // eviction; resuming from it is a no-op finish.
            let ckpt = Arc::new(state.to_checkpoint(key));
            crate::cache::CacheTier::store(disk.as_ref(), ckpt_key, &ckpt);
            ctx.shared.checkpoints.fetch_add(1, Ordering::Relaxed);
        }
        publish(state.chunks_done());
    }
    let result = spec.stream_finish(&state);
    unpublish();
    result
}

/// Builds the wire body shared by `POST /v1/jobs` and `GET /v1/jobs/:id`.
#[must_use]
pub fn job_response_body(id: &str, kind: &str, cached: bool, out: &JobOutput) -> Json {
    Json::Object(vec![
        ("id".to_string(), Json::String(id.to_string())),
        ("kind".to_string(), Json::String(kind.to_string())),
        ("cached".to_string(), Json::Bool(cached)),
        (
            "metrics".to_string(),
            Json::Object(
                out.metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Number(*v)))
                    .collect(),
            ),
        ),
        (
            "n_values".to_string(),
            Json::Number(out.values.len() as f64),
        ),
        (
            "values".to_string(),
            Json::Array(out.values.iter().map(|&v| Json::Number(v)).collect()),
        ),
    ])
}

/// Recursively zeroes every `*_ns` field — the wire-format analogue of
/// [`si_analog::telemetry::EngineStats::normalized`], used by the golden
/// snapshot tests to strip wall-clock noise.
#[must_use]
pub fn normalize_timings(v: &Json) -> Json {
    match v {
        Json::Object(pairs) => Json::Object(
            pairs
                .iter()
                .map(|(k, val)| {
                    if k.ends_with("_ns") {
                        (k.clone(), Json::Number(0.0))
                    } else {
                        (k.clone(), normalize_timings(val))
                    }
                })
                .collect(),
        ),
        Json::Array(items) => Json::Array(items.iter().map(normalize_timings).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc_spec(input_ua: f64) -> JobSpec {
        JobSpec::DelayLineDc {
            stages: 3,
            bias_ua: 20.0,
            input_ua,
        }
    }

    #[test]
    fn second_submission_is_a_cache_hit() {
        let svc = SiService::new(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            ..ServiceConfig::default()
        });
        let (first, cached1) = svc.submit_blocking(&dc_spec(1.0), None).unwrap();
        let (second, cached2) = svc.submit_blocking(&dc_spec(1.0), None).unwrap();
        assert!(!cached1);
        assert!(cached2);
        assert_eq!(first, second);
        let m = svc.metrics();
        assert_eq!(
            m.get("cache").unwrap().get("hits").unwrap().as_f64(),
            Some(1.0)
        );
        assert_eq!(
            m.get("cache").unwrap().get("misses").unwrap().as_f64(),
            Some(1.0)
        );
    }

    /// ISSUE 8: with a cache directory, results survive a full service
    /// restart — the second service's first submission is served from
    /// disk (cached = true, no solve) and is bit-identical to the
    /// original.
    #[test]
    fn results_survive_service_restart_bit_identically() {
        let dir = std::env::temp_dir().join(format!(
            "si-service-restart-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let persistent = || ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            cache_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        };
        let first = {
            let svc = SiService::new(persistent());
            let (out, cached) = svc.submit_blocking(&dc_spec(1.25), None).unwrap();
            assert!(!cached);
            assert_eq!(
                svc.metrics()
                    .get("cache")
                    .unwrap()
                    .get("disk_writes")
                    .unwrap()
                    .as_f64(),
                Some(1.0)
            );
            svc.shutdown();
            out
        };
        // "Restart": a fresh process image over the same directory.
        let svc = SiService::new(persistent());
        let (again, cached) = svc.submit_blocking(&dc_spec(1.25), None).unwrap();
        assert!(cached, "restarted service must serve from disk");
        for (a, b) in first.values.iter().zip(again.values.iter()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "disk round trip must be bit-exact"
            );
        }
        assert_eq!(first.metrics, again.metrics);
        let m = svc.metrics();
        let cache = m.get("cache").unwrap();
        assert_eq!(cache.get("disk_hits").unwrap().as_f64(), Some(1.0));
        assert_eq!(cache.get("misses").unwrap().as_f64(), Some(0.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A cache directory that cannot be created degrades to memory-only
    /// instead of failing startup.
    #[test]
    fn unusable_cache_dir_degrades_to_memory_only() {
        let dir = std::env::temp_dir().join(format!("si-service-degrade-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A *file* where the directory should go makes create_dir_all fail.
        std::fs::write(&dir, b"not a directory").unwrap();
        let svc = SiService::new(ServiceConfig {
            cache_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        });
        assert!(svc.disk_cache().is_none());
        let (_, cached) = svc.submit_blocking(&dc_spec(0.5), None).unwrap();
        assert!(!cached);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn lookup_returns_cached_output_without_blocking() {
        let svc = SiService::new(ServiceConfig::default());
        let spec = dc_spec(2.0);
        let key = spec.job_key();
        assert!(svc.lookup(key).is_none());
        let (out, _) = svc.submit_blocking(&spec, None).unwrap();
        let (kind, cached) = svc.lookup(key).unwrap();
        assert_eq!(kind, "delay_line_dc");
        assert_eq!(cached.unwrap(), out);
    }

    #[test]
    fn shutdown_rejects_new_jobs_with_typed_error() {
        let svc = SiService::new(ServiceConfig::default());
        svc.shutdown();
        let err = svc.submit_blocking(&dc_spec(1.0), None).unwrap_err();
        assert_eq!(err, ServiceError::ShuttingDown);
    }

    #[test]
    fn job_ids_round_trip() {
        let spec = dc_spec(1.5);
        let id = SiService::job_id(&spec);
        assert_eq!(id.len(), 16);
        assert_eq!(SiService::parse_job_id(&id), Some(spec.job_key()));
        assert_eq!(SiService::parse_job_id("nope"), None);
    }

    #[test]
    fn normalize_timings_zeroes_ns_fields_recursively() {
        let v =
            crate::json::parse(r#"{"a_ns":123,"b":{"solve_time_ns":9,"c":1},"d":[{"t_ns":4}]}"#)
                .unwrap();
        let n = normalize_timings(&v);
        assert_eq!(
            n.to_string_compact(),
            r#"{"a_ns":0,"b":{"solve_time_ns":0,"c":1},"d":[{"t_ns":0}]}"#
        );
    }

    #[test]
    fn metrics_document_has_all_sections() {
        let svc = SiService::new(ServiceConfig::default());
        svc.submit_blocking(&dc_spec(1.0), None).unwrap();
        let m = svc.metrics();
        for section in ["service", "cache", "pool", "faults", "engine"] {
            assert!(m.get(section).is_some(), "missing {section}");
        }
        // Engine telemetry flowed from the worker's workspace. Workers
        // publish it *after* replying to the caller, so poll briefly.
        let solves = wait_engine_counter(&svc, "solves", 1.0);
        assert!(solves >= 1.0);
        // The hardening counters are present (and zero: nothing faulted).
        for (section, key) in [
            ("service", "retries"),
            ("service", "retries_exhausted"),
            ("cache", "abandoned_flights"),
            ("cache", "poison_recoveries"),
            ("pool", "panics_caught"),
            ("faults", "injected"),
        ] {
            let v = m.get(section).unwrap().get(key).unwrap().as_f64();
            assert_eq!(v, Some(0.0), "{section}.{key} should be 0");
        }
    }

    /// Regression (ISSUE 5): an injected transient failure is retried by
    /// the service and the submission ultimately succeeds.
    #[test]
    fn transient_fault_is_retried_to_success() {
        let svc = SiService::new(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            default_deadline: None,
            retry: RetryPolicy {
                max_retries: 3,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
                multiplier: 2,
                jitter_seed: None,
            },
            ..ServiceConfig::default()
        });
        // Fault exactly the first execution, then run clean.
        let injector = Arc::new(FaultInjector::new(crate::fault::FaultPlan {
            seed: 0,
            panic_pm: 0,
            stall_pm: 0,
            transient_pm: 1000,
            drop_pm: 0,
            panic_mid_chunk_pm: 0,
            stall: Duration::ZERO,
            max_faults: 1,
        }));
        svc.install_fault_injector(Arc::clone(&injector));
        let (out, cached) = svc.submit_blocking(&dc_spec(3.0), None).unwrap();
        assert!(!out.values.is_empty());
        assert!(!cached);
        assert_eq!(svc.fault_stats().transients, 1);
        let m = svc.metrics();
        assert_eq!(
            m.get("service").unwrap().get("retries").unwrap().as_f64(),
            Some(1.0)
        );
        assert_eq!(svc.cancel_flags_len(), 0, "cancel flags leaked");
    }

    /// Regression (ISSUE 5): a worker panicking mid-job must not wedge the
    /// submission — the flight is released with a typed error, the retry
    /// succeeds, and later submissions still work.
    #[test]
    fn worker_panic_is_survived_and_retried() {
        let svc = SiService::new(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            default_deadline: None,
            retry: RetryPolicy {
                max_retries: 3,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
                multiplier: 2,
                jitter_seed: None,
            },
            ..ServiceConfig::default()
        });
        let injector = Arc::new(FaultInjector::new(crate::fault::FaultPlan {
            seed: 0,
            panic_pm: 1000,
            stall_pm: 0,
            transient_pm: 0,
            drop_pm: 0,
            panic_mid_chunk_pm: 0,
            stall: Duration::ZERO,
            max_faults: 1,
        }));
        svc.install_fault_injector(injector);
        let (out, _) = svc
            .submit_blocking(&dc_spec(4.0), None)
            .expect("retry after worker panic should succeed");
        assert!(!out.values.is_empty());
        assert_eq!(svc.fault_stats().panics, 1);
        let m = svc.metrics();
        assert_eq!(
            m.get("pool")
                .unwrap()
                .get("panics_caught")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert_eq!(
            m.get("cache")
                .unwrap()
                .get("abandoned_flights")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        // The panicked attempt must not leave a cancel-flag entry behind.
        // The unwinding worker removes it asynchronously: poll briefly.
        for _ in 0..200 {
            if svc.cancel_flags_len() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(svc.cancel_flags_len(), 0, "cancel flags leaked");
        // A fresh spec still solves: the worker thread survived.
        svc.submit_blocking(&dc_spec(5.0), None).unwrap();
    }

    /// Regression (ISSUE 5): with retries exhausted the typed Internal
    /// error surfaces and `retries_exhausted` is counted.
    #[test]
    fn exhausted_retries_surface_typed_error() {
        let svc = SiService::new(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            default_deadline: None,
            retry: RetryPolicy {
                max_retries: 1,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(1),
                multiplier: 1,
                jitter_seed: None,
            },
            ..ServiceConfig::default()
        });
        let injector = Arc::new(FaultInjector::new(crate::fault::FaultPlan {
            seed: 0,
            panic_pm: 0,
            stall_pm: 0,
            transient_pm: 1000,
            drop_pm: 0,
            panic_mid_chunk_pm: 0,
            stall: Duration::ZERO,
            max_faults: u64::MAX,
        }));
        svc.install_fault_injector(injector);
        let err = svc.submit_blocking(&dc_spec(6.0), None).unwrap_err();
        assert!(matches!(err, ServiceError::Transient(_)), "got {err:?}");
        let m = svc.metrics();
        assert_eq!(
            m.get("service")
                .unwrap()
                .get("retries_exhausted")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert_eq!(svc.cancel_flags_len(), 0, "cancel flags leaked");
    }

    /// Regression (ISSUE 5): admission failure drops the unrun task, whose
    /// drop guard must remove the cancel-flag entry — before the fix the
    /// map leaked one entry per rejected leader.
    #[test]
    fn rejected_leader_does_not_leak_cancel_flags() {
        let svc = SiService::new(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            default_deadline: None,
            retry: RetryPolicy::none(),
            ..ServiceConfig::default()
        });
        let block = std::sync::Arc::new(std::sync::Barrier::new(2));
        // Saturate: one running (held at a barrier), one queued.
        let holder = {
            let svc = Arc::new(svc);
            let b = Arc::clone(&block);
            let svc2 = Arc::clone(&svc);
            let t = std::thread::spawn(move || {
                // This job blocks the single worker via the stall fault.
                let injector = Arc::new(FaultInjector::new(crate::fault::FaultPlan {
                    seed: 0,
                    panic_pm: 0,
                    stall_pm: 1000,
                    transient_pm: 0,
                    drop_pm: 0,
                    panic_mid_chunk_pm: 0,
                    stall: Duration::from_millis(200),
                    max_faults: 1,
                }));
                svc2.install_fault_injector(injector);
                b.wait();
                let _ = svc2.submit_blocking(&dc_spec(7.0), None);
            });
            block.wait();
            // Give the stalled job time to occupy the worker.
            std::thread::sleep(Duration::from_millis(50));
            (svc, t)
        };
        let (svc, t) = holder;
        // Fill the queue slot, then overflow it.
        let svc_q = Arc::clone(&svc);
        let tq = std::thread::spawn(move || {
            let _ = svc_q.submit_blocking(&dc_spec(8.0), None);
        });
        std::thread::sleep(Duration::from_millis(20));
        let err = svc.submit_blocking(&dc_spec(9.0), None).unwrap_err();
        assert!(
            matches!(err, ServiceError::Overloaded { .. }),
            "expected Overloaded, got {err:?}"
        );
        t.join().unwrap();
        tq.join().unwrap();
        // Every leader — run, stalled, or rejected — cleaned up its entry.
        for _ in 0..100 {
            if svc.cancel_flags_len() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(svc.cancel_flags_len(), 0, "cancel flags leaked");
    }

    fn netlist_spec(text: &str) -> JobSpec {
        JobSpec::Netlist {
            netlist: text.to_string(),
        }
    }

    const DIVIDER: &str = "V1 in 0 3.3\nR1 in mid 1k\nR2 mid 0 2k\n.end\n";

    /// ISSUE 7: an over-budget netlist is rejected at admission — typed
    /// 413, counted in `netlist_rejected_budget`, and the engine telemetry
    /// proves no factorization or Newton iteration ever ran.
    #[test]
    fn over_budget_netlist_never_reaches_the_solver() {
        let svc = SiService::new(ServiceConfig {
            budget: AdmissionBudget {
                max_nodes: 2,
                ..AdmissionBudget::default()
            },
            ..ServiceConfig::default()
        });
        let err = svc
            .submit_blocking(&netlist_spec(DIVIDER), None)
            .unwrap_err();
        assert_eq!(
            err,
            ServiceError::BudgetExceeded {
                resource: "nodes",
                actual: 3,
                limit: 2,
            }
        );
        assert_eq!(err.http_status(), 413);
        let m = svc.metrics();
        let s = m.get("service").unwrap();
        assert_eq!(s.get("netlist_submitted").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            s.get("netlist_rejected_budget").unwrap().as_f64(),
            Some(1.0)
        );
        // Nothing was admitted, solved, or factorized.
        assert_eq!(s.get("submitted").unwrap().as_f64(), Some(0.0));
        let e = m.get("engine").unwrap();
        assert_eq!(e.get("solves").unwrap().as_f64(), Some(0.0));
    }

    /// ISSUE 7: the byte cap rejects oversized text before it is parsed.
    #[test]
    fn oversized_netlist_text_is_rejected_before_parsing() {
        let svc = SiService::new(ServiceConfig {
            budget: AdmissionBudget {
                max_netlist_bytes: 16,
                ..AdmissionBudget::default()
            },
            ..ServiceConfig::default()
        });
        let err = svc
            .submit_blocking(&netlist_spec(DIVIDER), None)
            .unwrap_err();
        assert!(
            matches!(
                err,
                ServiceError::BudgetExceeded {
                    resource: "netlist_bytes",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    /// ISSUE 7: a malformed netlist is typed 422 and counted; a permuted
    /// but equivalent netlist coalesces onto the original's cache entry.
    #[test]
    fn netlist_rejection_and_coalescing_are_counted() {
        let svc = SiService::new(ServiceConfig::default());
        let err = svc
            .submit_blocking(&netlist_spec("R1 a 0 oops\n"), None)
            .unwrap_err();
        assert!(matches!(err, ServiceError::NetlistRejected(_)), "{err:?}");

        let (first, cached1) = svc.submit_blocking(&netlist_spec(DIVIDER), None).unwrap();
        assert!(!cached1);
        // Same circuit, different text: comments, spacing, card order.
        let permuted = "* comment\nR2  mid 0 2k\nR1 in mid 1k ; top\nV1 in 0 3.3\n.end\n";
        let (second, cached2) = svc.submit_blocking(&netlist_spec(permuted), None).unwrap();
        assert!(cached2, "permuted netlist must hit the same cache slot");
        assert_eq!(first, second);

        let m = svc.metrics();
        let s = m.get("service").unwrap();
        assert_eq!(s.get("netlist_submitted").unwrap().as_f64(), Some(3.0));
        assert_eq!(s.get("netlist_rejected_parse").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            s.get("netlist_rejected_budget").unwrap().as_f64(),
            Some(0.0)
        );
        assert_eq!(
            m.get("cache").unwrap().get("hits").unwrap().as_f64(),
            Some(1.0)
        );
    }

    fn batch_spec(inputs_ua: Vec<f64>) -> JobSpec {
        JobSpec::DelayLineDcBatch {
            stages: 3,
            bias_ua: 20.0,
            inputs_ua,
        }
    }

    /// Workers publish engine telemetry *after* replying to the caller,
    /// so a metrics read can race the final publish: poll briefly.
    fn wait_engine_counter(svc: &SiService, key: &str, want: f64) -> f64 {
        let mut got = f64::NAN;
        for _ in 0..200 {
            let m = svc.metrics();
            got = m.get("engine").unwrap().get(key).unwrap().as_f64().unwrap();
            if got == want {
                return got;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        got
    }

    /// ISSUE 6: a batch fans N scenarios under ONE job key — admitted,
    /// priced, and cached as one job, with per-scenario results in the
    /// output and the batch counters visible in `/metrics`.
    #[test]
    fn batch_submission_is_one_job_with_per_scenario_results() {
        let svc = SiService::new(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            ..ServiceConfig::default()
        });
        let spec = batch_spec(vec![0.5, 1.0, 2.0, 4.0]);
        let (out, cached1) = svc.submit_blocking(&spec, None).unwrap();
        assert!(!cached1);
        // Scenario-major values: 4 scenarios × 3 stage nodes.
        assert_eq!(out.values.len(), 12);
        assert_eq!(out.metrics.iter().find(|(k, _)| k == "scenarios"), {
            Some(&("scenarios".to_string(), 4.0))
        });
        // Resubmission is a cache hit: the whole batch was one entry.
        let (again, cached2) = svc.submit_blocking(&spec, None).unwrap();
        assert!(cached2);
        assert_eq!(out, again);
        let m = svc.metrics();
        let svc_section = m.get("service").unwrap();
        assert_eq!(
            svc_section.get("batch_submitted").unwrap().as_f64(),
            Some(2.0)
        );
        assert_eq!(
            svc_section.get("batch_scenarios").unwrap().as_f64(),
            Some(8.0)
        );
        assert_eq!(
            m.get("cache").unwrap().get("misses").unwrap().as_f64(),
            Some(1.0)
        );
        // Exactly one batch run with four scenarios flowed into the
        // engine telemetry — one symbolic analysis for the whole batch.
        assert_eq!(wait_engine_counter(&svc, "batch_runs", 1.0), 1.0);
        assert_eq!(wait_engine_counter(&svc, "batch_scenarios", 4.0), 4.0);
    }

    /// ISSUE 6 satellite: a worker panic injected *mid-batch* (after some
    /// scenarios already solved) abandons the flight without caching any
    /// partial results; the retry re-runs the whole batch and succeeds
    /// with the complete value set.
    #[test]
    fn mid_batch_panic_never_caches_partial_results() {
        let svc = SiService::new(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            default_deadline: None,
            retry: RetryPolicy {
                max_retries: 3,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
                multiplier: 2,
                jitter_seed: None,
            },
            ..ServiceConfig::default()
        });
        let injector = Arc::new(FaultInjector::new(crate::fault::FaultPlan {
            seed: 0,
            panic_pm: 1000,
            stall_pm: 0,
            transient_pm: 0,
            drop_pm: 0,
            panic_mid_chunk_pm: 0,
            stall: Duration::ZERO,
            max_faults: 1,
        }));
        svc.install_fault_injector(injector);
        let spec = batch_spec(vec![1.0, 2.0, 3.0]);
        let (out, cached) = svc
            .submit_blocking(&spec, None)
            .expect("retry after mid-batch panic should succeed");
        assert!(!cached, "a partial batch must never be served from cache");
        // The retried batch is complete: 3 scenarios × 3 stage nodes.
        assert_eq!(out.values.len(), 9);
        assert_eq!(svc.fault_stats().panics, 1);
        let m = svc.metrics();
        assert_eq!(
            m.get("pool")
                .unwrap()
                .get("panics_caught")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert_eq!(
            m.get("cache")
                .unwrap()
                .get("abandoned_flights")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        // Two attempts ran: the panicked one (which got past scenario 0)
        // and the clean retry.
        assert_eq!(wait_engine_counter(&svc, "batch_runs", 2.0), 2.0);
    }

    /// Regression (ISSUE 10): the deadline is anchored once for the whole
    /// `submit_blocking` call. Before the fix each retry attempt re-armed
    /// a fresh deadline, so a job that kept failing transiently burned
    /// backoff time until retries exhausted and surfaced `Transient` —
    /// the deadline never fired. Now the attempt that starts past the
    /// anchor reports `DeadlineExceeded`.
    #[test]
    fn deadline_spans_all_retry_attempts() {
        let svc = SiService::new(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            default_deadline: None,
            retry: RetryPolicy {
                max_retries: 10,
                base_delay: Duration::from_millis(40),
                max_delay: Duration::from_millis(40),
                multiplier: 1,
                jitter_seed: None,
            },
            ..ServiceConfig::default()
        });
        // Every attempt fails transiently, instantly.
        let injector = Arc::new(FaultInjector::new(crate::fault::FaultPlan {
            seed: 0,
            panic_pm: 0,
            stall_pm: 0,
            transient_pm: 1000,
            drop_pm: 0,
            panic_mid_chunk_pm: 0,
            stall: Duration::ZERO,
            max_faults: u64::MAX,
        }));
        svc.install_fault_injector(injector);
        let started = Instant::now();
        let err = svc
            .submit_blocking(&dc_spec(7.0), Some(Duration::from_millis(60)))
            .unwrap_err();
        let elapsed = started.elapsed();
        assert!(
            matches!(err, ServiceError::DeadlineExceeded),
            "per-retry re-arming keeps the deadline from ever firing; got {err:?}"
        );
        // 60 ms budget + one 40 ms backoff of slack, far below the
        // ~400 ms the 10-retry schedule would burn with re-arming.
        assert!(
            elapsed < Duration::from_millis(350),
            "deadline took {elapsed:?} to fire"
        );
        // The timed-out attempt's task may still be queued; its drop
        // guard removes the flag once the worker reaches it. Poll briefly.
        for _ in 0..200 {
            if svc.cancel_flags_len() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(svc.cancel_flags_len(), 0, "cancel flags leaked");
    }

    fn stream_spec() -> JobSpec {
        JobSpec::TranStream {
            stages: 3,
            bias_ua: 20.0,
            input_ua: 2.0,
            steps: 900,
            dt_ns: 50.0,
            clock_hz: 2.0e6,
            chunk_steps: 128,
            seg_len: 256,
        }
    }

    fn stream_tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "si-service-stream-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// ISSUE 10 tentpole, happy path: a streaming job completes through
    /// the service, its spectrum is bit-identical to running the spec
    /// directly, per-chunk counters and checkpoints are recorded, and the
    /// progress entry is cleaned up.
    #[test]
    fn streaming_job_completes_with_checkpoints_and_counters() {
        let dir = stream_tmpdir("happy");
        let svc = SiService::new(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            cache_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        });
        let spec = stream_spec();
        let key = spec.job_key();
        let reference = spec
            .run(&mut si_analog::engine::EngineWorkspace::new())
            .unwrap();
        let (out, cached) = svc.submit_blocking(&spec, None).unwrap();
        assert!(!cached);
        for (a, b) in out.values.iter().zip(reference.values.iter()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "service run must match direct run"
            );
        }
        let m = svc.metrics();
        let svc_counter = |name: &str| m.get("service").unwrap().get(name).unwrap().as_f64();
        assert_eq!(svc_counter("stream_chunks"), Some(8.0));
        assert_eq!(svc_counter("stream_checkpoints"), Some(8.0));
        assert_eq!(svc_counter("stream_resumed"), Some(0.0));
        assert_eq!(svc.progress(key), None, "progress entry leaked");
        // Second submission is a plain cache hit — no chunks re-solved.
        let (again, cached2) = svc.submit_blocking(&spec, None).unwrap();
        assert!(cached2);
        assert_eq!(again, out);
        let m2 = svc.metrics();
        assert_eq!(
            m2.get("service")
                .unwrap()
                .get("stream_chunks")
                .unwrap()
                .as_f64(),
            Some(8.0)
        );
        svc.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// ISSUE 10 tentpole, crash path: a `panic_mid_chunk` fault kills the
    /// worker after some chunks completed; the retry resumes from the
    /// last checkpoint (observable via `stream_resumed` and the chunk
    /// count) and the final spectrum is bit-identical to an uninterrupted
    /// run.
    #[test]
    fn stream_panic_mid_chunk_resumes_from_checkpoint_bit_identically() {
        let dir = stream_tmpdir("panic");
        let svc = SiService::new(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            cache_dir: Some(dir.clone()),
            retry: RetryPolicy {
                max_retries: 3,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
                multiplier: 2,
                jitter_seed: None,
            },
            ..ServiceConfig::default()
        });
        svc.install_fault_injector(Arc::new(FaultInjector::new(
            crate::fault::FaultPlan::mid_chunk(7, 1),
        )));
        let spec = stream_spec();
        let reference = spec
            .run(&mut si_analog::engine::EngineWorkspace::new())
            .unwrap();
        let (out, cached) = svc
            .submit_blocking(&spec, None)
            .expect("retry after mid-chunk panic should resume and succeed");
        assert!(!cached, "a partial stream must never be served from cache");
        for (a, b) in out.values.iter().zip(reference.values.iter()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "resumed spectrum must be bit-identical"
            );
        }
        assert_eq!(svc.fault_stats().panic_mid_chunks, 1);
        let m = svc.metrics();
        let svc_counter = |name: &str| m.get("service").unwrap().get(name).unwrap().as_f64();
        assert_eq!(svc_counter("stream_resumed"), Some(1.0));
        // The resumed attempt re-solves only the chunks past the last
        // checkpoint: total chunk executions stay below two full runs.
        let chunks = svc_counter("stream_chunks").unwrap();
        assert!(
            (8.0..16.0).contains(&chunks),
            "expected a partial first run plus a resumed tail, got {chunks} chunk solves"
        );
        assert_eq!(
            m.get("faults")
                .unwrap()
                .get("panic_mid_chunk")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        svc.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Progress of an in-flight stream is observable from another thread
    /// while chunks solve, and `in_flight` flips off once it completes.
    #[test]
    fn stream_progress_is_observable_while_running() {
        let dir = stream_tmpdir("progress");
        let svc = Arc::new(SiService::new(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            cache_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        }));
        // Stall every chunk draw 20 ms so the poller has a real window.
        svc.install_fault_injector(Arc::new(FaultInjector::new(crate::fault::FaultPlan {
            seed: 0,
            panic_pm: 0,
            stall_pm: 1000,
            transient_pm: 0,
            drop_pm: 0,
            panic_mid_chunk_pm: 0,
            stall: Duration::from_millis(20),
            max_faults: u64::MAX,
        })));
        let spec = stream_spec();
        let key = spec.job_key();
        let poller = {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                let mut best: Option<(u64, u64)> = None;
                for _ in 0..2000 {
                    if let Some(p) = svc.progress(key) {
                        best = Some(p);
                        if p.0 > 0 {
                            break;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                best
            })
        };
        let (_, cached) = svc.submit_blocking(&spec, None).unwrap();
        assert!(!cached);
        let seen = poller
            .join()
            .unwrap()
            .expect("poller never observed stream progress");
        assert_eq!(seen.1, 8, "total chunks");
        assert!(seen.0 >= 1, "poller should catch a mid-run chunk count");
        assert!(!svc.in_flight(key), "flight must be gone after completion");
        assert_eq!(svc.progress(key), None);
        svc.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
