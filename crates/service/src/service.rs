//! The service core: cache-aware job submission, deadlines, cancellation,
//! and the `/metrics` aggregation.
//!
//! [`SiService`] glues the [`ResultCache`](crate::cache::ResultCache) in
//! front of the [`WorkerPool`](crate::pool::WorkerPool):
//!
//! 1. A submission is first content-addressed. Cache hits return without
//!    touching the pool; concurrent duplicates coalesce onto the one
//!    in-flight computation.
//! 2. Only a cache *leader* consumes a pool slot, so the bounded queue
//!    measures distinct work, not request volume.
//! 3. If admission control rejects the leader, the flight completes with
//!    [`ServiceError::Overloaded`] so coalesced followers are released —
//!    an overloaded service sheds whole job groups, it never deadlocks
//!    them.
//!
//! Every job id is the 16-hex-digit job key, so ids are deterministic:
//! the same spec maps to the same id on every run, which is what lets the
//! golden wire-format tests pin exact response bytes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use crate::cache::{CacheOutcome, LeadGuard, ResultCache};
use crate::error::ServiceError;
use crate::jobspec::{JobOutput, JobSpec};
use crate::json::Json;
use crate::pool::{PoolConfig, WorkerPool};

/// Service sizing.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads (each with a persistent workspace).
    pub workers: usize,
    /// Bounded queue depth for admission control.
    pub queue_capacity: usize,
    /// Deadline applied when a submission does not carry its own.
    pub default_deadline: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            default_deadline: None,
        }
    }
}

#[derive(Debug, Default)]
struct ServiceCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    deadline_exceeded: AtomicU64,
    canceled: AtomicU64,
}

type CancelFlags = Arc<Mutex<HashMap<u64, Arc<AtomicBool>>>>;

/// The in-process simulation job service.
pub struct SiService {
    cache: Arc<ResultCache>,
    pool: WorkerPool,
    default_deadline: Option<Duration>,
    counters: ServiceCounters,
    /// Kind tag of every job key ever admitted, for `GET /v1/jobs/:id`.
    seen: Mutex<HashMap<u64, &'static str>>,
    /// Cancellation flags of currently in-flight leaders.
    cancel_flags: CancelFlags,
}

impl SiService {
    /// Builds the service and spawns its workers.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        SiService {
            cache: Arc::new(ResultCache::new()),
            pool: WorkerPool::new(PoolConfig {
                workers: config.workers,
                queue_capacity: config.queue_capacity,
            }),
            default_deadline: config.default_deadline,
            counters: ServiceCounters::default(),
            seen: Mutex::new(HashMap::new()),
            cancel_flags: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The deterministic wire id of a spec.
    #[must_use]
    pub fn job_id(spec: &JobSpec) -> String {
        format!("{:016x}", spec.job_key())
    }

    /// Parses a wire id back to a job key.
    #[must_use]
    pub fn parse_job_id(id: &str) -> Option<u64> {
        if id.len() == 16 {
            u64::from_str_radix(id, 16).ok()
        } else {
            None
        }
    }

    /// Submits a job and blocks until its result is available: from the
    /// cache, from a coalesced flight, or from a worker. `deadline`
    /// overrides the service default; `None` with no default waits
    /// indefinitely.
    ///
    /// Returns the output plus `true` when it was served without running
    /// the solve for this call (cache hit or coalesced onto another
    /// caller's flight).
    ///
    /// # Errors
    ///
    /// Every [`ServiceError`] variant can surface here; see the module
    /// docs for the overload path.
    pub fn submit_blocking(
        &self,
        spec: &JobSpec,
        deadline: Option<Duration>,
    ) -> Result<(Arc<JobOutput>, bool), ServiceError> {
        spec.validate()?;
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let key = spec.job_key();
        self.seen
            .lock()
            .expect("seen map poisoned")
            .insert(key, spec.kind());

        let guard = match self.cache.get_or_lead(key) {
            CacheOutcome::Hit(out) => {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                return Ok((out, true));
            }
            CacheOutcome::Coalesced(result) => {
                return self.finish(result.map(|out| (out, true)));
            }
            CacheOutcome::Lead(guard) => guard,
        };
        self.lead(spec, key, guard, deadline.or(self.default_deadline))
    }

    /// Leader path: enqueue the solve, wait for the reply, enforce the
    /// deadline on the waiting side too.
    fn lead(
        &self,
        spec: &JobSpec,
        key: u64,
        guard: LeadGuard,
        deadline: Option<Duration>,
    ) -> Result<(Arc<JobOutput>, bool), ServiceError> {
        let deadline_at = deadline.map(|d| Instant::now() + d);
        let cancel = Arc::new(AtomicBool::new(false));
        self.cancel_flags
            .lock()
            .expect("cancel map poisoned")
            .insert(key, Arc::clone(&cancel));

        // The guard travels to the worker inside a shared slot: exactly
        // one side takes it — the worker on execution, or this thread if
        // admission fails and the (never-run) task is dropped.
        let guard_slot: Arc<Mutex<Option<LeadGuard>>> = Arc::new(Mutex::new(Some(guard)));
        let (reply_tx, reply_rx) = mpsc::channel();
        let task = {
            let spec = spec.clone();
            let cancel = Arc::clone(&cancel);
            let cache = Arc::clone(&self.cache);
            let cancel_flags = Arc::clone(&self.cancel_flags);
            let guard_slot = Arc::clone(&guard_slot);
            Box::new(move |ws: &mut si_analog::engine::EngineWorkspace| {
                let Some(guard) = guard_slot.lock().expect("guard slot poisoned").take() else {
                    return; // admission failure already completed the flight
                };
                let result = if cancel.load(Ordering::Relaxed) {
                    Err(ServiceError::Canceled)
                } else if deadline_at.is_some_and(|at| Instant::now() >= at) {
                    // Admitted but already stale: don't burn solver time
                    // on a result nobody is waiting for.
                    Err(ServiceError::DeadlineExceeded)
                } else {
                    spec.run(ws).map(Arc::new)
                };
                cache.complete(guard, result.clone());
                cancel_flags
                    .lock()
                    .expect("cancel map poisoned")
                    .remove(&key);
                let _ = reply_tx.send(result);
            })
        };

        if let Err(reject) = self.pool.try_submit(task) {
            // Release any followers with the same typed rejection, then
            // surface it to this caller.
            if let Some(guard) = guard_slot.lock().expect("guard slot poisoned").take() {
                self.cache.complete(guard, Err(reject.clone()));
            }
            self.cancel_flags
                .lock()
                .expect("cancel map poisoned")
                .remove(&key);
            return self.finish(Err(reject));
        }

        let result = match deadline_at {
            None => reply_rx.recv().unwrap_or(Err(ServiceError::ShuttingDown)),
            Some(at) => loop {
                let now = Instant::now();
                if now >= at {
                    // Tell the worker not to start; if it already did, its
                    // result still lands in the cache for future callers.
                    cancel.store(true, Ordering::Relaxed);
                    break Err(ServiceError::DeadlineExceeded);
                }
                match reply_rx.recv_timeout(at - now) {
                    Ok(result) => break result,
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break Err(ServiceError::ShuttingDown),
                }
            },
        };
        self.finish(result.map(|out| (out, false)))
    }

    /// Requests cancellation of an in-flight job. Returns `true` if the
    /// job was in flight (the flag was set), `false` if unknown or done.
    pub fn cancel(&self, key: u64) -> bool {
        match self
            .cancel_flags
            .lock()
            .expect("cancel map poisoned")
            .get(&key)
        {
            Some(flag) => {
                flag.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Looks up a previously submitted job by key: its kind tag and, if
    /// finished successfully, its cached output. Never blocks.
    pub fn lookup(&self, key: u64) -> Option<(&'static str, Option<Arc<JobOutput>>)> {
        let kind = *self.seen.lock().expect("seen map poisoned").get(&key)?;
        Some((kind, self.cache.peek(key)))
    }

    /// Stops admitting jobs and drains the workers. Safe to call twice.
    pub fn shutdown(&self) {
        self.pool.shutdown();
    }

    /// Engine telemetry merged across all workers — what `/metrics`
    /// reports under `"engine"`, as a typed struct.
    #[must_use]
    pub fn engine_stats(&self) -> si_analog::telemetry::EngineStats {
        self.pool.merged_engine_stats()
    }

    /// The `/metrics` document: service counters, cache behavior, pool
    /// occupancy, and engine telemetry merged across every worker.
    #[must_use]
    pub fn metrics(&self) -> Json {
        let cache = self.cache.stats();
        let pool = self.pool.stats();
        let lookups = cache.hits + cache.misses + cache.coalesced;
        let hit_ratio = if lookups == 0 {
            0.0
        } else {
            (cache.hits + cache.coalesced) as f64 / lookups as f64
        };
        let engine = self.pool.merged_engine_stats();
        let engine_json =
            crate::json::parse(&engine.to_json()).expect("EngineStats::to_json emits valid JSON");
        let num = |v: u64| Json::Number(v as f64);
        Json::Object(vec![
            (
                "service".to_string(),
                Json::Object(vec![
                    (
                        "submitted".to_string(),
                        num(self.counters.submitted.load(Ordering::Relaxed)),
                    ),
                    (
                        "completed".to_string(),
                        num(self.counters.completed.load(Ordering::Relaxed)),
                    ),
                    (
                        "failed".to_string(),
                        num(self.counters.failed.load(Ordering::Relaxed)),
                    ),
                    (
                        "deadline_exceeded".to_string(),
                        num(self.counters.deadline_exceeded.load(Ordering::Relaxed)),
                    ),
                    (
                        "canceled".to_string(),
                        num(self.counters.canceled.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "cache".to_string(),
                Json::Object(vec![
                    ("hits".to_string(), num(cache.hits)),
                    ("misses".to_string(), num(cache.misses)),
                    ("coalesced".to_string(), num(cache.coalesced)),
                    ("entries".to_string(), num(cache.entries)),
                    ("hit_ratio".to_string(), Json::Number(hit_ratio)),
                ]),
            ),
            (
                "pool".to_string(),
                Json::Object(vec![
                    ("workers".to_string(), num(self.pool.workers() as u64)),
                    (
                        "queue_capacity".to_string(),
                        num(self.pool.queue_capacity() as u64),
                    ),
                    ("submitted".to_string(), num(pool.submitted)),
                    ("executed".to_string(), num(pool.executed)),
                    ("rejected".to_string(), num(pool.rejected)),
                    ("in_flight".to_string(), num(pool.in_flight)),
                ]),
            ),
            ("engine".to_string(), engine_json),
        ])
    }

    /// [`SiService::metrics`] serialized for the wire.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.metrics().to_string_compact()
    }

    fn finish(
        &self,
        result: Result<(Arc<JobOutput>, bool), ServiceError>,
    ) -> Result<(Arc<JobOutput>, bool), ServiceError> {
        match &result {
            Ok(_) => {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServiceError::DeadlineExceeded) => {
                self.counters
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServiceError::Canceled) => {
                self.counters.canceled.fetch_add(1, Ordering::Relaxed);
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }
}

impl Drop for SiService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Builds the wire body shared by `POST /v1/jobs` and `GET /v1/jobs/:id`.
#[must_use]
pub fn job_response_body(id: &str, kind: &str, cached: bool, out: &JobOutput) -> Json {
    Json::Object(vec![
        ("id".to_string(), Json::String(id.to_string())),
        ("kind".to_string(), Json::String(kind.to_string())),
        ("cached".to_string(), Json::Bool(cached)),
        (
            "metrics".to_string(),
            Json::Object(
                out.metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Number(*v)))
                    .collect(),
            ),
        ),
        (
            "n_values".to_string(),
            Json::Number(out.values.len() as f64),
        ),
        (
            "values".to_string(),
            Json::Array(out.values.iter().map(|&v| Json::Number(v)).collect()),
        ),
    ])
}

/// Recursively zeroes every `*_ns` field — the wire-format analogue of
/// [`si_analog::telemetry::EngineStats::normalized`], used by the golden
/// snapshot tests to strip wall-clock noise.
#[must_use]
pub fn normalize_timings(v: &Json) -> Json {
    match v {
        Json::Object(pairs) => Json::Object(
            pairs
                .iter()
                .map(|(k, val)| {
                    if k.ends_with("_ns") {
                        (k.clone(), Json::Number(0.0))
                    } else {
                        (k.clone(), normalize_timings(val))
                    }
                })
                .collect(),
        ),
        Json::Array(items) => Json::Array(items.iter().map(normalize_timings).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc_spec(input_ua: f64) -> JobSpec {
        JobSpec::DelayLineDc {
            stages: 3,
            bias_ua: 20.0,
            input_ua,
        }
    }

    #[test]
    fn second_submission_is_a_cache_hit() {
        let svc = SiService::new(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            default_deadline: None,
        });
        let (first, cached1) = svc.submit_blocking(&dc_spec(1.0), None).unwrap();
        let (second, cached2) = svc.submit_blocking(&dc_spec(1.0), None).unwrap();
        assert!(!cached1);
        assert!(cached2);
        assert_eq!(first, second);
        let m = svc.metrics();
        assert_eq!(
            m.get("cache").unwrap().get("hits").unwrap().as_f64(),
            Some(1.0)
        );
        assert_eq!(
            m.get("cache").unwrap().get("misses").unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn lookup_returns_cached_output_without_blocking() {
        let svc = SiService::new(ServiceConfig::default());
        let spec = dc_spec(2.0);
        let key = spec.job_key();
        assert!(svc.lookup(key).is_none());
        let (out, _) = svc.submit_blocking(&spec, None).unwrap();
        let (kind, cached) = svc.lookup(key).unwrap();
        assert_eq!(kind, "delay_line_dc");
        assert_eq!(cached.unwrap(), out);
    }

    #[test]
    fn shutdown_rejects_new_jobs_with_typed_error() {
        let svc = SiService::new(ServiceConfig::default());
        svc.shutdown();
        let err = svc.submit_blocking(&dc_spec(1.0), None).unwrap_err();
        assert_eq!(err, ServiceError::ShuttingDown);
    }

    #[test]
    fn job_ids_round_trip() {
        let spec = dc_spec(1.5);
        let id = SiService::job_id(&spec);
        assert_eq!(id.len(), 16);
        assert_eq!(SiService::parse_job_id(&id), Some(spec.job_key()));
        assert_eq!(SiService::parse_job_id("nope"), None);
    }

    #[test]
    fn normalize_timings_zeroes_ns_fields_recursively() {
        let v =
            crate::json::parse(r#"{"a_ns":123,"b":{"solve_time_ns":9,"c":1},"d":[{"t_ns":4}]}"#)
                .unwrap();
        let n = normalize_timings(&v);
        assert_eq!(
            n.to_string_compact(),
            r#"{"a_ns":0,"b":{"solve_time_ns":0,"c":1},"d":[{"t_ns":0}]}"#
        );
    }

    #[test]
    fn metrics_document_has_all_sections() {
        let svc = SiService::new(ServiceConfig::default());
        svc.submit_blocking(&dc_spec(1.0), None).unwrap();
        let m = svc.metrics();
        for section in ["service", "cache", "pool", "engine"] {
            assert!(m.get(section).is_some(), "missing {section}");
        }
        // Engine telemetry flowed from the worker's workspace.
        let solves = m.get("engine").unwrap().get("solves").unwrap().as_f64();
        assert!(solves.unwrap() >= 1.0);
    }
}
