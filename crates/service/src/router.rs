//! `si-router`: consistent-hash sharding of the job service across
//! replica processes.
//!
//! A single `si_serve` replica tops out at one machine's cores, and its
//! hot state — the per-topology symbolic factorization cache and the
//! content-addressed result tiers — lives in that one process. The
//! router scales the service *out* while keeping that state hot: it
//! accepts the same HTTP API and forwards each job to one of N replicas
//! chosen by consistent hash on the job's **structure fingerprint**
//! ([`crate::jobspec::JobSpec::structure_fingerprint`]). Every job on
//! the same circuit *topology* lands on the same replica, so each
//! replica's symbolic cache holds only its shard of topologies — and a
//! netlist twin of a generator-built circuit hashes to the same shard,
//! because both fingerprints come from the canonical parsed structure.
//!
//! Design points:
//!
//! - **Hash ring with virtual nodes** — each replica owns
//!   [`RouterConfig::vnodes`] points on a 64-bit ring (FNV-1a of the
//!   replica name and vnode index); a fingerprint is spread by
//!   SplitMix64 and routed to the next point clockwise. Virtual nodes
//!   keep shard sizes even and limit reshuffling when membership
//!   changes to the keys owned by the departed/arrived replica.
//! - **Readiness-driven membership** — a background probe polls each
//!   replica's `/readyz` (liveness `/healthz` is *not* enough: a
//!   replica with a drained pool or degraded cache dir must leave the
//!   ring). Every membership change bumps a ring **generation**
//!   counter, visible in `/metrics`.
//! - **Bounded in-flight per backend** — the router refuses with 503
//!   rather than queueing without bound, mirroring the replica's own
//!   admission policy.
//! - **Failover** — on a transport error the replica is marked unready
//!   immediately (not at the next probe tick) and the request walks the
//!   ring to the next distinct replica. Jobs are content-addressed and
//!   deterministic, so re-running one on a different replica is safe
//!   and bit-identical.
//! - **Cache warming** — the router remembers which job keys it routed
//!   where; when ownership moves it tells the new owner to pull those
//!   entries from the old owner's disk tier (`POST /v1/warm`, which
//!   fetches `GET /v1/cache/:key` and re-validates checksums before
//!   persisting).

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Read, Write as IoWrite};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Duration;

use crate::error::ServiceError;
use crate::http::error_body;
use crate::jobspec::{Fnv1a, JobSpec};
use crate::json::{self, Json};
use crate::retry::{splitmix64, RetryPolicy};
use crate::service::SiService;

/// Tuning knobs for a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Replica addresses (`host:port`, with or without an `http://`
    /// prefix). At least one is required.
    pub replicas: Vec<String>,
    /// Virtual nodes per replica on the hash ring. More vnodes → more
    /// even shards; 64 keeps the ring small and the imbalance low.
    pub vnodes: usize,
    /// How often the background probe re-checks each replica's
    /// `/readyz`.
    pub probe_interval: Duration,
    /// Socket timeout for readiness probes and metrics scrapes.
    pub probe_timeout: Duration,
    /// Socket timeout for forwarded jobs (covers the replica's solve).
    pub forward_timeout: Duration,
    /// Maximum concurrently forwarded requests per replica; beyond this
    /// the router sheds with 503 instead of queueing.
    pub max_in_flight: usize,
    /// Backoff schedule between failover sweeps when no replica could
    /// take a job. Seed its jitter ([`RetryPolicy::with_jitter_seed`])
    /// so concurrent clients don't stampede a recovering replica.
    pub retry: RetryPolicy,
    /// Pull moved cache entries to their new owner on ring changes.
    pub warm_on_ring_change: bool,
    /// Bound on the routed-key memory used to plan cache warming; the
    /// oldest tracked keys are forgotten first.
    pub tracked_keys_cap: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            replicas: Vec::new(),
            vnodes: 64,
            probe_interval: Duration::from_millis(100),
            probe_timeout: Duration::from_millis(500),
            forward_timeout: Duration::from_secs(60),
            max_in_flight: 64,
            retry: RetryPolicy {
                max_retries: 5,
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(200),
                multiplier: 2,
                jitter_seed: None,
            }
            .with_jitter_seed(0x5151_5151),
            warm_on_ring_change: true,
            tracked_keys_cap: 4096,
        }
    }
}

/// Per-replica routing state: fixed identity plus live health and
/// traffic counters.
struct ReplicaState {
    /// Normalized `host:port`, used as the ring identity and as the
    /// `peer` handed to `/v1/warm`.
    name: String,
    addr: SocketAddr,
    ready: AtomicBool,
    in_flight: AtomicUsize,
    forwards: AtomicU64,
    errors: AtomicU64,
}

#[derive(Default)]
struct RouterCounters {
    routed: AtomicU64,
    reroutes: AtomicU64,
    rejected_overload: AtomicU64,
    no_backend: AtomicU64,
    probe_transitions: AtomicU64,
    warm_requests: AtomicU64,
    warm_keys_pulled: AtomicU64,
    warm_keys_failed: AtomicU64,
}

/// Routed-key memory: job key → (structure fingerprint, owner index),
/// with insertion order for bounded eviction.
#[derive(Default)]
struct Tracked {
    map: HashMap<u64, (u64, usize)>,
    order: VecDeque<u64>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A replica's position(s) on the ring: FNV-1a of its name and the
/// vnode index, matching the fingerprint hashing family.
fn ring_point(name: &str, vnode: usize) -> u64 {
    let mut h = Fnv1a::new();
    h.mix_bytes(name.as_bytes());
    h.mix_u64(vnode as u64);
    h.finish()
}

/// The consistent-hash front end. Owns the ring, the probe state, and
/// the forwarding counters; [`RouterServer`] puts an HTTP listener in
/// front of it, and tests drive [`Router::handle`] directly.
pub struct Router {
    config: RouterConfig,
    replicas: Vec<ReplicaState>,
    /// Sorted `(point, replica index)` pairs over *ready* replicas.
    ring: Mutex<Vec<(u64, usize)>>,
    generation: AtomicU64,
    tracked: Mutex<Tracked>,
    counters: RouterCounters,
}

impl Router {
    /// Builds a router over the configured replicas and probes each one
    /// once so the ring reflects who is already up.
    ///
    /// # Errors
    ///
    /// Rejects an empty replica list and addresses that don't resolve.
    pub fn new(config: RouterConfig) -> Result<Router, String> {
        if config.replicas.is_empty() {
            return Err("at least one --replica is required".to_string());
        }
        let mut replicas = Vec::with_capacity(config.replicas.len());
        for raw in &config.replicas {
            let name = raw
                .trim()
                .trim_start_matches("http://")
                .trim_end_matches('/')
                .to_string();
            let addr = name
                .to_socket_addrs()
                .map_err(|e| format!("replica {name:?}: {e}"))?
                .next()
                .ok_or_else(|| format!("replica {name:?} resolves to no address"))?;
            replicas.push(ReplicaState {
                name,
                addr,
                ready: AtomicBool::new(false),
                in_flight: AtomicUsize::new(0),
                forwards: AtomicU64::new(0),
                errors: AtomicU64::new(0),
            });
        }
        let router = Router {
            config,
            replicas,
            ring: Mutex::new(Vec::new()),
            generation: AtomicU64::new(0),
            tracked: Mutex::new(Tracked::default()),
            counters: RouterCounters::default(),
        };
        router.probe_once();
        Ok(router)
    }

    /// Current ring generation; bumps on every membership change.
    #[must_use]
    pub fn ring_generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Probes every replica's `/readyz` once and rebuilds the ring if
    /// any readiness changed. Returns whether membership changed.
    pub fn probe_once(&self) -> bool {
        let mut changed = false;
        for replica in &self.replicas {
            let ready_now = matches!(
                fetch(
                    replica.addr,
                    "GET",
                    "/readyz",
                    None,
                    self.config.probe_timeout,
                ),
                Ok((200, _))
            );
            let was = replica.ready.swap(ready_now, Ordering::SeqCst);
            if was != ready_now {
                changed = true;
                self.counters
                    .probe_transitions
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        if changed {
            self.rebuild_ring();
            if self.config.warm_on_ring_change {
                self.warm_moved_keys();
            }
        }
        changed
    }

    /// Rebuilds the sorted ring over the currently ready replicas and
    /// bumps the generation.
    fn rebuild_ring(&self) {
        let mut points = Vec::new();
        for (idx, replica) in self.replicas.iter().enumerate() {
            if !replica.ready.load(Ordering::SeqCst) {
                continue;
            }
            for vnode in 0..self.config.vnodes.max(1) {
                points.push((ring_point(&replica.name, vnode), idx));
            }
        }
        points.sort_unstable();
        *lock(&self.ring) = points;
        self.generation.fetch_add(1, Ordering::SeqCst);
    }

    /// The failover chain for a fingerprint: every ready replica in
    /// ring order starting at the fingerprint's point, deduplicated.
    /// The first entry is the shard owner.
    fn route_chain(&self, fp: u64) -> Vec<usize> {
        let ring = lock(&self.ring);
        if ring.is_empty() {
            return Vec::new();
        }
        let h = splitmix64(fp);
        let start = ring.partition_point(|&(p, _)| p < h);
        let mut chain = Vec::new();
        for k in 0..ring.len() {
            let idx = ring[(start + k) % ring.len()].1;
            if !chain.contains(&idx) {
                chain.push(idx);
            }
        }
        chain
    }

    /// Marks a replica unready after a transport failure (without
    /// waiting for the next probe tick) and rebuilds the ring.
    fn mark_unready(&self, idx: usize) {
        if self.replicas[idx].ready.swap(false, Ordering::SeqCst) {
            self.rebuild_ring();
        }
    }

    /// Records which replica served a job key so later ring changes can
    /// warm the new owner from the old one. Bounded FIFO.
    fn remember(&self, key: u64, fp: u64, owner: usize) {
        let mut tracked = lock(&self.tracked);
        if let Some(slot) = tracked.map.get_mut(&key) {
            *slot = (fp, owner);
            return;
        }
        while tracked.map.len() >= self.config.tracked_keys_cap.max(1) {
            match tracked.order.pop_front() {
                Some(old) => {
                    tracked.map.remove(&old);
                }
                None => break,
            }
        }
        tracked.map.insert(key, (fp, owner));
        tracked.order.push_back(key);
    }

    /// After a ring change: for every tracked key whose owner moved,
    /// ask the new owner to pull the entry from the old owner's disk
    /// tier, then update the tracked owner either way (the ring is
    /// authoritative; a failed pull just means a recompute later).
    fn warm_moved_keys(&self) {
        let mut moves: HashMap<(usize, usize), Vec<u64>> = HashMap::new();
        {
            let mut tracked = lock(&self.tracked);
            let map = &mut tracked.map;
            for (&key, slot) in map.iter_mut() {
                let (fp, old_owner) = *slot;
                let Some(&new_owner) = self.route_chain(fp).first() else {
                    continue;
                };
                if new_owner != old_owner {
                    moves.entry((new_owner, old_owner)).or_default().push(key);
                    slot.1 = new_owner;
                }
            }
        }
        for ((new_owner, old_owner), keys) in moves {
            let peer = &self.replicas[old_owner];
            if !peer.ready.load(Ordering::SeqCst) {
                // The old owner is gone; nothing to pull from.
                self.counters
                    .warm_keys_failed
                    .fetch_add(keys.len() as u64, Ordering::Relaxed);
                continue;
            }
            let key_list = keys
                .iter()
                .map(|k| Json::String(format!("{k:016x}")))
                .collect();
            let body = Json::Object(vec![
                ("peer".to_string(), Json::String(peer.name.clone())),
                ("keys".to_string(), Json::Array(key_list)),
            ])
            .to_string_compact();
            self.counters.warm_requests.fetch_add(1, Ordering::Relaxed);
            let pulled = fetch(
                self.replicas[new_owner].addr,
                "POST",
                "/v1/warm",
                Some(&body),
                self.config.forward_timeout,
            )
            .ok()
            .filter(|(status, _)| *status == 200)
            .and_then(|(_, bytes)| json::parse(&String::from_utf8_lossy(&bytes)).ok())
            .and_then(|j| j.get("pulled").and_then(Json::as_f64));
            match pulled {
                Some(n) => {
                    let n = n as u64;
                    self.counters
                        .warm_keys_pulled
                        .fetch_add(n, Ordering::Relaxed);
                    self.counters
                        .warm_keys_failed
                        .fetch_add((keys.len() as u64).saturating_sub(n), Ordering::Relaxed);
                }
                None => {
                    self.counters
                        .warm_keys_failed
                        .fetch_add(keys.len() as u64, Ordering::Relaxed);
                }
            }
        }
    }

    /// Routes one request. Same API surface as a replica: job
    /// submission and lookup are forwarded, `/metrics`, `/healthz`, and
    /// `/readyz` are answered by the router itself.
    #[must_use]
    pub fn handle(&self, method: &str, path: &str, body: &str) -> (u16, String) {
        match (method, path) {
            ("POST", "/v1/jobs") => self.forward_job(body),
            ("GET", "/metrics") => (200, self.metrics().to_string_compact()),
            ("GET", "/healthz") => (200, r#"{"status":"ok"}"#.to_string()),
            ("GET", "/readyz") => {
                let ready_count = self.ready_count();
                let status = if ready_count > 0 { 200 } else { 503 };
                let body = Json::Object(vec![
                    ("ready".to_string(), Json::Bool(ready_count > 0)),
                    (
                        "ready_replicas".to_string(),
                        Json::Number(ready_count as f64),
                    ),
                    (
                        "replicas".to_string(),
                        Json::Number(self.replicas.len() as f64),
                    ),
                ])
                .to_string_compact();
                (status, body)
            }
            ("GET", _) if path.starts_with("/v1/jobs/") => self.lookup_job(path),
            ("GET" | "POST", _) => (
                404,
                r#"{"error":"not_found","message":"unknown route"}"#.to_string(),
            ),
            _ => (
                405,
                r#"{"error":"method_not_allowed","message":"use GET or POST"}"#.to_string(),
            ),
        }
    }

    fn ready_count(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.ready.load(Ordering::SeqCst))
            .count()
    }

    /// Forwards a job submission to its shard owner, failing over along
    /// the ring on transport errors and backing off (with jitter)
    /// between sweeps while replicas recover.
    fn forward_job(&self, body: &str) -> (u16, String) {
        let spec = match json::parse(body)
            .map_err(ServiceError::InvalidSpec)
            .and_then(|v| JobSpec::from_json(&v))
        {
            Ok(spec) => spec,
            Err(err) => return (err.http_status(), error_body(&err)),
        };
        let fp = spec.structure_fingerprint();
        let key = spec.job_key();
        let mut attempt: u32 = 0;
        loop {
            for idx in self.route_chain(fp) {
                let replica = &self.replicas[idx];
                if replica.in_flight.fetch_add(1, Ordering::SeqCst) >= self.config.max_in_flight {
                    replica.in_flight.fetch_sub(1, Ordering::SeqCst);
                    self.counters
                        .rejected_overload
                        .fetch_add(1, Ordering::Relaxed);
                    return (
                        503,
                        r#"{"error":"router_overloaded","message":"shard owner is at its in-flight bound; retry"}"#
                            .to_string(),
                    );
                }
                let result = fetch(
                    replica.addr,
                    "POST",
                    "/v1/jobs",
                    Some(body),
                    self.config.forward_timeout,
                );
                replica.in_flight.fetch_sub(1, Ordering::SeqCst);
                match result {
                    Ok((status, bytes)) => {
                        replica.forwards.fetch_add(1, Ordering::Relaxed);
                        if status == 200 {
                            self.counters.routed.fetch_add(1, Ordering::Relaxed);
                            self.remember(key, fp, idx);
                        }
                        return (status, String::from_utf8_lossy(&bytes).into_owned());
                    }
                    Err(_) => {
                        // The replica died (or wedged) mid-flight: take
                        // it out of the ring now and walk to the next
                        // node. Content-addressed jobs are safe to
                        // re-run elsewhere.
                        replica.errors.fetch_add(1, Ordering::Relaxed);
                        self.mark_unready(idx);
                        self.counters.reroutes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            match self.config.retry.delay(attempt) {
                Some(delay) => {
                    thread::sleep(delay);
                    // A replica may have recovered while we slept.
                    self.probe_once();
                }
                None => {
                    self.counters.no_backend.fetch_add(1, Ordering::Relaxed);
                    return (
                        503,
                        r#"{"error":"no_backend","message":"no ready replica could take the job"}"#
                            .to_string(),
                    );
                }
            }
            attempt += 1;
        }
    }

    /// `GET /v1/jobs/:id` — tries the tracked owner first, then sweeps
    /// every ready replica (the id alone doesn't encode the shard).
    fn lookup_job(&self, path: &str) -> (u16, String) {
        let id = &path["/v1/jobs/".len()..];
        let Some(key) = SiService::parse_job_id(id) else {
            let err = ServiceError::InvalidSpec("job ids are 16 hex digits".to_string());
            return (err.http_status(), error_body(&err));
        };
        let tracked_owner = lock(&self.tracked).map.get(&key).map(|&(_, owner)| owner);
        let mut order: Vec<usize> = tracked_owner.into_iter().collect();
        for idx in 0..self.replicas.len() {
            if !order.contains(&idx) {
                order.push(idx);
            }
        }
        for idx in order {
            let replica = &self.replicas[idx];
            if !replica.ready.load(Ordering::SeqCst) {
                continue;
            }
            if let Ok((200, bytes)) =
                fetch(replica.addr, "GET", path, None, self.config.forward_timeout)
            {
                return (200, String::from_utf8_lossy(&bytes).into_owned());
            }
        }
        (
            404,
            r#"{"error":"not_found","message":"no replica holds this job"}"#.to_string(),
        )
    }

    /// Router metrics: ring state and routing counters, plus a live
    /// per-shard scrape of each ready replica (cache hit ratios and
    /// symbolic-cache counters — the shard-affinity signal).
    #[must_use]
    pub fn metrics(&self) -> Json {
        let c = &self.counters;
        let count = |a: &AtomicU64| Json::Number(a.load(Ordering::Relaxed) as f64);
        let router = Json::Object(vec![
            (
                "ring_generation".to_string(),
                Json::Number(self.ring_generation() as f64),
            ),
            (
                "ring_size".to_string(),
                Json::Number(lock(&self.ring).len() as f64),
            ),
            (
                "ready_replicas".to_string(),
                Json::Number(self.ready_count() as f64),
            ),
            ("routed".to_string(), count(&c.routed)),
            ("reroutes".to_string(), count(&c.reroutes)),
            ("rejected_overload".to_string(), count(&c.rejected_overload)),
            ("no_backend".to_string(), count(&c.no_backend)),
            ("probe_transitions".to_string(), count(&c.probe_transitions)),
            ("warm_requests".to_string(), count(&c.warm_requests)),
            ("warm_keys_pulled".to_string(), count(&c.warm_keys_pulled)),
            ("warm_keys_failed".to_string(), count(&c.warm_keys_failed)),
            (
                "tracked_keys".to_string(),
                Json::Number(lock(&self.tracked).map.len() as f64),
            ),
        ]);
        let mut shards = Vec::new();
        for replica in &self.replicas {
            let mut entry = vec![
                ("replica".to_string(), Json::String(replica.name.clone())),
                (
                    "ready".to_string(),
                    Json::Bool(replica.ready.load(Ordering::SeqCst)),
                ),
                (
                    "in_flight".to_string(),
                    Json::Number(replica.in_flight.load(Ordering::SeqCst) as f64),
                ),
                ("forwards".to_string(), count(&replica.forwards)),
                ("errors".to_string(), count(&replica.errors)),
            ];
            if replica.ready.load(Ordering::SeqCst) {
                if let Ok((200, bytes)) = fetch(
                    replica.addr,
                    "GET",
                    "/metrics",
                    None,
                    self.config.probe_timeout,
                ) {
                    if let Ok(m) = json::parse(&String::from_utf8_lossy(&bytes)) {
                        let pick = |section: &str, name: &str| {
                            m.get(section)
                                .and_then(|s| s.get(name))
                                .cloned()
                                .unwrap_or(Json::Null)
                        };
                        entry.push(("completed".to_string(), pick("service", "completed")));
                        entry.push(("cache_hits".to_string(), pick("cache", "hits")));
                        entry.push(("cache_misses".to_string(), pick("cache", "misses")));
                        entry.push(("cache_hit_ratio".to_string(), pick("cache", "hit_ratio")));
                        entry.push(("disk_hits".to_string(), pick("cache", "disk_hits")));
                        entry.push((
                            "symbolic_cache_hits".to_string(),
                            pick("engine", "symbolic_cache_hits"),
                        ));
                        entry.push((
                            "symbolic_cache_misses".to_string(),
                            pick("engine", "symbolic_cache_misses"),
                        ));
                    }
                }
            }
            shards.push(Json::Object(entry));
        }
        Json::Object(vec![
            ("router".to_string(), router),
            ("shards".to_string(), Json::Array(shards)),
        ])
    }
}

/// A minimal blocking HTTP client with a hard deadline on connect,
/// read, and write — the router must never hang on a dead replica.
fn fetch(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<(u16, Vec<u8>)> {
    let timeout = timeout.max(Duration::from_millis(1));
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: si-router\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut response = Vec::new();
    BufReader::new(stream).read_to_end(&mut response)?;
    let bad = || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response");
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(bad)?;
    let head = std::str::from_utf8(&response[..split]).map_err(|_| bad())?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(bad)?;
    Ok((status, response[split + 4..].to_vec()))
}

/// One parsed front-end request.
struct FrontRequest {
    method: String,
    path: String,
    body: String,
    keep_alive: bool,
}

/// Reads one HTTP/1.1 request off a front-end connection. `Ok(None)`
/// is a clean EOF before any bytes (client done with keep-alive).
fn read_front_request(stream: &mut TcpStream) -> std::io::Result<Option<FrontRequest>> {
    const MAX_HEAD: usize = 16 * 1024;
    const MAX_BODY: usize = 4 * 1024 * 1024;
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(bad("request head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(bad("connection closed mid-head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_string();
    let path = parts.next().ok_or_else(|| bad("missing path"))?.to_string();
    let mut content_length = 0usize;
    let mut keep_alive = true;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| bad("bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close") {
            keep_alive = false;
        }
    }
    if content_length > MAX_BODY {
        return Err(bad("body too large"));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?;
    Ok(Some(FrontRequest {
        method,
        path,
        body,
        keep_alive,
    }))
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

/// The HTTP front end for a [`Router`]: a listener plus the background
/// readiness probe. Connections are handled thread-per-connection —
/// forwarding is blocking I/O, and the replica pool behind the router
/// is the real concurrency bound.
pub struct RouterServer {
    router: Arc<Router>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    probe_thread: Option<thread::JoinHandle<()>>,
}

impl RouterServer {
    /// Binds the front end, probes the replicas once, and starts the
    /// accept and probe threads. Bind to port 0 to let the OS pick.
    ///
    /// # Errors
    ///
    /// Propagates bind errors; replica resolution errors surface as
    /// `InvalidInput`.
    pub fn bind(addr: &str, config: RouterConfig) -> std::io::Result<RouterServer> {
        let probe_interval = config.probe_interval;
        let router = Arc::new(
            Router::new(config)
                .map_err(|msg| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg))?,
        );
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let probe_router = Arc::clone(&router);
        let probe_stop = Arc::clone(&shutdown);
        let probe_thread = thread::Builder::new()
            .name("si-router-probe".to_string())
            .spawn(move || {
                while !probe_stop.load(Ordering::SeqCst) {
                    probe_router.probe_once();
                    // Sleep in small slices so shutdown stays prompt.
                    let mut slept = Duration::ZERO;
                    while slept < probe_interval && !probe_stop.load(Ordering::SeqCst) {
                        let step = Duration::from_millis(10).min(probe_interval - slept);
                        thread::sleep(step);
                        slept += step;
                    }
                }
            })?;

        let accept_router = Arc::clone(&router);
        let accept_stop = Arc::clone(&shutdown);
        let accept_thread = thread::Builder::new()
            .name("si-router-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let router = Arc::clone(&accept_router);
                    let _ = thread::Builder::new()
                        .name("si-router-conn".to_string())
                        .spawn(move || handle_connection(stream, &router));
                }
            })?;

        Ok(RouterServer {
            router,
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            probe_thread: Some(probe_thread),
        })
    }

    /// The bound front-end address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The routing core, for in-process inspection (metrics, probes).
    #[must_use]
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Stops the probe and accept threads and joins them.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Nudge the blocking accept loop awake.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.probe_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, router: &Router) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_nodelay(true);
    loop {
        match read_front_request(&mut stream) {
            Ok(Some(request)) => {
                let (status, body) = router.handle(&request.method, &request.path, &request.body);
                let connection = if request.keep_alive {
                    "keep-alive"
                } else {
                    "close"
                };
                let response = format!(
                    "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
                    status_text(status),
                    body.len()
                );
                if stream.write_all(response.as_bytes()).is_err() || !request.keep_alive {
                    return;
                }
            }
            Ok(None) => return,
            Err(_) => {
                let body = r#"{"error":"bad_request","message":"malformed request"}"#;
                let _ = write!(
                    stream,
                    "HTTP/1.1 400 Bad Request\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                );
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(replicas: Vec<String>) -> RouterConfig {
        RouterConfig {
            replicas,
            probe_interval: Duration::from_millis(25),
            probe_timeout: Duration::from_millis(200),
            forward_timeout: Duration::from_secs(10),
            retry: RetryPolicy {
                max_retries: 2,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(5),
                multiplier: 2,
                jitter_seed: Some(7),
            },
            ..RouterConfig::default()
        }
    }

    /// The ring maps every fingerprint to exactly one owner, stable
    /// across rebuilds with the same membership.
    #[test]
    fn ring_assignment_is_deterministic_and_total() {
        let router = Router::new(test_config(vec![
            "127.0.0.1:1".to_string(),
            "127.0.0.1:2".to_string(),
            "127.0.0.1:3".to_string(),
        ]))
        .unwrap();
        for replica in &router.replicas {
            replica.ready.store(true, Ordering::SeqCst);
        }
        router.rebuild_ring();
        let owners: Vec<usize> = (0..512u64).map(|fp| router.route_chain(fp)[0]).collect();
        router.rebuild_ring();
        let again: Vec<usize> = (0..512u64).map(|fp| router.route_chain(fp)[0]).collect();
        assert_eq!(owners, again, "same membership must give the same map");
        // Every replica owns a meaningful share (vnodes keep it even).
        for idx in 0..3 {
            let share = owners.iter().filter(|&&o| o == idx).count();
            assert!(
                share > 512 / 10,
                "replica {idx} owns only {share}/512 fingerprints"
            );
        }
    }

    /// Removing a replica moves only its keys: consistent hashing's
    /// defining property.
    #[test]
    fn membership_change_moves_only_the_departed_replicas_keys() {
        let router = Router::new(test_config(vec![
            "127.0.0.1:1".to_string(),
            "127.0.0.1:2".to_string(),
            "127.0.0.1:3".to_string(),
        ]))
        .unwrap();
        for replica in &router.replicas {
            replica.ready.store(true, Ordering::SeqCst);
        }
        router.rebuild_ring();
        let before: Vec<usize> = (0..512u64).map(|fp| router.route_chain(fp)[0]).collect();
        let generation = router.ring_generation();
        router.mark_unready(2);
        assert!(
            router.ring_generation() > generation,
            "generation must bump"
        );
        for (fp, &owner_before) in before.iter().enumerate() {
            let owner_after = router.route_chain(fp as u64)[0];
            if owner_before != 2 {
                assert_eq!(
                    owner_before, owner_after,
                    "fp {fp} moved although its owner never left"
                );
            } else {
                assert_ne!(owner_after, 2, "fp {fp} still routed to a dead replica");
            }
        }
    }

    /// The failover chain starts at the owner and visits every other
    /// ready replica exactly once.
    #[test]
    fn route_chain_visits_each_ready_replica_once() {
        let router = Router::new(test_config(vec![
            "127.0.0.1:1".to_string(),
            "127.0.0.1:2".to_string(),
            "127.0.0.1:3".to_string(),
        ]))
        .unwrap();
        for replica in &router.replicas {
            replica.ready.store(true, Ordering::SeqCst);
        }
        router.rebuild_ring();
        for fp in 0..64u64 {
            let mut chain = router.route_chain(fp);
            chain.sort_unstable();
            assert_eq!(chain, vec![0, 1, 2]);
        }
        // No ready replicas → empty chain, not a panic.
        for idx in 0..3 {
            router.mark_unready(idx);
        }
        assert!(router.route_chain(1).is_empty());
    }

    /// The routed-key memory is bounded: oldest entries fall out first.
    #[test]
    fn tracked_keys_are_bounded_fifo() {
        let mut config = test_config(vec!["127.0.0.1:1".to_string()]);
        config.tracked_keys_cap = 4;
        let router = Router::new(config).unwrap();
        for key in 0..10u64 {
            router.remember(key, key, 0);
        }
        let tracked = lock(&router.tracked);
        assert_eq!(tracked.map.len(), 4);
        for key in 6..10u64 {
            assert!(tracked.map.contains_key(&key), "newest keys must survive");
        }
    }

    /// With no ready replica the router sheds with a typed 503 after
    /// its backoff budget — it must not hang or panic.
    #[test]
    fn no_backend_yields_typed_503() {
        let router = Router::new(test_config(vec!["127.0.0.1:1".to_string()])).unwrap();
        let body = r#"{"kind":"delay_line_dc","stages":3,"bias_ua":20,"input_ua":1}"#;
        let (status, response) = router.handle("POST", "/v1/jobs", body);
        assert_eq!(status, 503, "{response}");
        assert!(response.contains("no_backend"), "{response}");
        // Malformed specs are rejected before touching the ring.
        let (status, response) = router.handle("POST", "/v1/jobs", "{nope");
        assert_eq!(status, 400, "{response}");
    }
}
