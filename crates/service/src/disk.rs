//! The disk-backed persistent cache tier.
//!
//! [`DiskTier`] persists finished [`JobOutput`]s under a cache directory,
//! one file per deterministic 64-bit job key, so a restarted server warms
//! up from its own past work instead of re-solving everything. It sits
//! *under* the in-memory sharded tier (see
//! [`CacheTier`](crate::cache::CacheTier) for the lookup/promotion
//! order) and is built around three invariants:
//!
//! 1. **Crash-safe writes.** An entry is serialized to a `.tmp-` file,
//!    fsynced, and atomically renamed into place. A process killed at any
//!    instant leaves either the complete old state or the complete new
//!    state at the final path — never a torn entry. Leftover `.tmp-`
//!    files from a kill-mid-write are swept (and counted) at startup.
//! 2. **Checksummed, versioned format.** Every file carries a magic tag,
//!    a format version, its own key, and a trailing FNV-1a checksum over
//!    the payload. A file that fails any of these checks — foreign bytes,
//!    a version from a future format, a flipped bit, a truncation — is
//!    *quarantined*: deleted, counted in `corrupt_evicted`, and the job
//!    transparently re-solved. Corruption is never served.
//! 3. **Byte-budget eviction.** The tier tracks its total on-disk bytes
//!    and evicts least-recently-accessed entries (LRU by a monotonic
//!    in-process access clock, seeded from file mtimes at startup) until
//!    it fits the configured budget.
//!
//! # On-disk format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"SICACHE1"
//! 8       4     version (u32 LE) — currently 1
//! 12      8     job key (u64 LE) — must match the filename
//! 20      8     n_values (u64 LE)
//! 28      8     n_metrics (u64 LE)
//! 36      8×n   values, f64 LE bit patterns (bit-exact round trip)
//! ...           metrics: [name_len u32 LE][name UTF-8][value f64 LE]…
//! end-8   8     FNV-1a checksum (u64 LE) over everything before it
//! ```
//!
//! Values round-trip through `f64::to_bits`, so a disk-served result is
//! bit-identical to the solve that produced it — the restart gate in
//! `si_loadgen --restart` asserts exactly this.

use std::collections::HashMap;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::cache::{CacheTier, TierStats};
use crate::jobspec::{Fnv1a, JobOutput};

const MAGIC: &[u8; 8] = b"SICACHE1";
const FORMAT_VERSION: u32 = 1;
/// Fixed-size prefix: magic + version + key + n_values + n_metrics.
const HEADER_BYTES: usize = 8 + 4 + 8 + 8 + 8;
/// Trailing checksum.
const FOOTER_BYTES: usize = 8;

/// Sizing and placement knobs for the disk tier.
#[derive(Debug, Clone)]
pub struct DiskTierConfig {
    /// Directory holding the cache files (created if absent).
    pub dir: PathBuf,
    /// Total bytes of cache files to keep; least-recently-accessed
    /// entries are evicted once the sum exceeds this.
    pub budget_bytes: u64,
}

impl DiskTierConfig {
    /// A tier rooted at `dir` with the default 256 MiB budget.
    #[must_use]
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        DiskTierConfig {
            dir: dir.into(),
            budget_bytes: 256 << 20,
        }
    }
}

/// One resident entry in the in-memory index of the on-disk state.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    bytes: u64,
    /// Monotonic access clock; smallest = least recently used.
    last_access: u64,
}

#[derive(Debug, Default)]
struct Index {
    entries: HashMap<u64, IndexEntry>,
    total_bytes: u64,
    clock: u64,
}

impl Index {
    fn touch(&mut self, key: u64) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.entries.get_mut(&key) {
            e.last_access = clock;
        }
    }

    fn insert(&mut self, key: u64, bytes: u64) {
        self.clock += 1;
        if let Some(old) = self.entries.insert(
            key,
            IndexEntry {
                bytes,
                last_access: self.clock,
            },
        ) {
            self.total_bytes -= old.bytes;
        }
        self.total_bytes += bytes;
    }

    fn remove(&mut self, key: u64) {
        if let Some(old) = self.entries.remove(&key) {
            self.total_bytes -= old.bytes;
        }
    }

    /// The least-recently-accessed key, if any.
    fn lru(&self) -> Option<u64> {
        self.entries
            .iter()
            .min_by_key(|(key, e)| (e.last_access, **key))
            .map(|(key, _)| *key)
    }
}

/// A content-addressed, crash-safe, byte-budgeted persistent cache tier.
#[derive(Debug)]
pub struct DiskTier {
    dir: PathBuf,
    budget_bytes: u64,
    index: Mutex<Index>,
    /// Distinguishes concurrent writers' temp files.
    write_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    evictions: AtomicU64,
    corrupt_evicted: AtomicU64,
    /// `.tmp-` leftovers swept at startup (a previous process died
    /// mid-write, before its atomic rename).
    tmp_swept: AtomicU64,
    /// I/O errors on store (the entry is simply not persisted).
    write_errors: AtomicU64,
}

/// Locks `m`, recovering from poisoning: the index is re-derivable from
/// the directory, so a writer that died mid-update leaves nothing worth
/// propagating a panic for.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl DiskTier {
    /// Opens (or creates) the tier at `config.dir`, sweeping `.tmp-`
    /// leftovers and indexing existing entries by file size and mtime.
    ///
    /// # Errors
    ///
    /// Propagates directory creation/scan failures.
    pub fn open(config: DiskTierConfig) -> std::io::Result<DiskTier> {
        fs::create_dir_all(&config.dir)?;
        let mut index = Index::default();
        // Seed the LRU order from mtimes: oldest files get the smallest
        // access stamps, so a budget-shrinking restart evicts them first.
        let mut found: Vec<(u64, u64, std::time::SystemTime)> = Vec::new();
        let mut tmp_swept = 0u64;
        for entry in fs::read_dir(&config.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(".tmp-") {
                // A writer died between create and rename: the final path
                // was never touched, so the leftover is pure garbage.
                let _ = fs::remove_file(entry.path());
                tmp_swept += 1;
                continue;
            }
            let Some(key) = entry_key(name) else { continue };
            let Ok(meta) = entry.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            found.push((key, meta.len(), mtime));
        }
        found.sort_by_key(|&(key, _, mtime)| (mtime, key));
        for (key, bytes, _) in found {
            index.insert(key, bytes);
        }
        let tier = DiskTier {
            dir: config.dir,
            budget_bytes: config.budget_bytes.max(1),
            index: Mutex::new(index),
            write_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt_evicted: AtomicU64::new(0),
            tmp_swept: AtomicU64::new(tmp_swept),
            write_errors: AtomicU64::new(0),
        };
        // A restart may come up with a smaller budget than the directory
        // currently holds; enforce it immediately.
        tier.evict_to_budget();
        Ok(tier)
    }

    /// The directory this tier persists into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// `.tmp-` files swept at startup (kill-mid-write leftovers).
    #[must_use]
    pub fn tmp_swept(&self) -> u64 {
        self.tmp_swept.load(Ordering::Relaxed)
    }

    fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.sic"))
    }

    /// Removes a file that failed validation and counts the quarantine.
    fn quarantine(&self, key: u64) {
        let _ = fs::remove_file(self.path_for(key));
        lock_recover(&self.index).remove(key);
        self.corrupt_evicted.fetch_add(1, Ordering::Relaxed);
    }

    /// Evicts LRU entries until the directory fits the byte budget.
    fn evict_to_budget(&self) {
        loop {
            // Pick the victim under the lock, delete outside it.
            let victim = {
                let mut index = lock_recover(&self.index);
                if index.total_bytes <= self.budget_bytes {
                    return;
                }
                let Some(victim) = index.lru() else { return };
                index.remove(victim);
                victim
            };
            let _ = fs::remove_file(self.path_for(victim));
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Reads the raw serialized bytes for `key` — magic, checksum and
    /// all — but only after validating them, so a peer warming its cache
    /// over `GET /v1/cache/:key` can never receive a torn or corrupt
    /// entry. A file that fails validation is quarantined exactly as a
    /// [`CacheTier::load`] would (`corrupt_evicted` increments, the next
    /// read is a clean miss).
    ///
    /// This is the transfer format of the replica-warming protocol: the
    /// bytes round-trip unchanged into a peer's [`DiskTier::ingest`].
    #[must_use]
    pub fn read_validated(&self, key: u64) -> Option<Vec<u8>> {
        let bytes = match fs::read(self.path_for(key)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(_) => {
                self.quarantine(key);
                return None;
            }
        };
        if decode(key, &bytes).is_none() {
            self.quarantine(key);
            return None;
        }
        lock_recover(&self.index).touch(key);
        Some(bytes)
    }

    /// Validates and persists an entry serialized by a *peer* tier (the
    /// receiving half of the warming protocol). The bytes must be a
    /// complete, checksummed format-v1 entry for exactly this `key`;
    /// anything else is dropped without touching the directory. Returns
    /// whether the entry landed.
    pub fn ingest(&self, key: u64, bytes: &[u8]) -> bool {
        if decode(key, bytes).is_none() {
            return false;
        }
        self.write_atomic(key, bytes)
    }

    /// write → fsync → rename: a kill at any instant leaves either no
    /// entry (tmp swept at next startup) or the complete entry.
    fn write_atomic(&self, key: u64, buf: &[u8]) -> bool {
        let seq = self.write_seq.fetch_add(1, Ordering::Relaxed);
        let pid = std::process::id();
        let tmp = self.dir.join(format!(".tmp-{key:016x}-{pid}-{seq}"));
        let final_path = self.path_for(key);
        let written = (|| -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(buf)?;
            f.sync_all()?;
            fs::rename(&tmp, &final_path)?;
            Ok(())
        })();
        match written {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                lock_recover(&self.index).insert(key, buf.len() as u64);
                self.evict_to_budget();
                true
            }
            Err(_) => {
                let _ = fs::remove_file(&tmp);
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Test/chaos hook: plants a *torn* entry at `key`'s final path — a
    /// valid prefix cut off mid-payload, as a non-atomic writer killed
    /// mid-write would leave. The tier must refuse to serve it: the next
    /// load quarantines the file and the job re-solves.
    #[doc(hidden)]
    pub fn plant_torn_entry_for_test(&self, key: u64, out: &JobOutput) {
        let buf = encode(key, out);
        let torn = &buf[..buf.len() / 2];
        fs::write(self.path_for(key), torn).expect("plant torn entry");
        lock_recover(&self.index).insert(key, torn.len() as u64);
    }

    /// Test/chaos hook: plants a `.tmp-` leftover, as a writer killed
    /// *before* its atomic rename would leave. Startup must sweep it.
    #[doc(hidden)]
    pub fn plant_tmp_leftover_for_test(dir: &Path, key: u64) {
        let _ = fs::create_dir_all(dir);
        fs::write(
            dir.join(format!(".tmp-{key:016x}-dead")),
            b"partial write, never renamed",
        )
        .expect("plant tmp leftover");
    }
}

impl CacheTier for DiskTier {
    fn name(&self) -> &'static str {
        "disk"
    }

    fn load(&self, key: u64) -> Option<Arc<JobOutput>> {
        let path = self.path_for(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                // Unreadable (permissions, I/O error): treat as corrupt —
                // better to re-solve than to serve a maybe.
                self.quarantine(key);
                return None;
            }
        };
        match decode(key, &bytes) {
            Some(out) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                lock_recover(&self.index).touch(key);
                Some(Arc::new(out))
            }
            None => {
                self.quarantine(key);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: u64, out: &Arc<JobOutput>) {
        let buf = encode(key, out);
        self.write_atomic(key, &buf);
    }

    fn stats(&self) -> TierStats {
        let (entries, bytes) = {
            let index = lock_recover(&self.index);
            (index.entries.len() as u64, index.total_bytes)
        };
        TierStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt_evicted: self.corrupt_evicted.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

/// Parses `"{key:016x}.sic"` back to its key.
fn entry_key(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(".sic")?;
    if stem.len() != 16 {
        return None;
    }
    u64::from_str_radix(stem, 16).ok()
}

/// Serializes one entry, checksum included.
fn encode(key: u64, out: &JobOutput) -> Vec<u8> {
    let metric_bytes: usize = out.metrics.iter().map(|(k, _)| 4 + k.len() + 8).sum();
    let mut buf =
        Vec::with_capacity(HEADER_BYTES + out.values.len() * 8 + metric_bytes + FOOTER_BYTES);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&key.to_le_bytes());
    buf.extend_from_slice(&(out.values.len() as u64).to_le_bytes());
    buf.extend_from_slice(&(out.metrics.len() as u64).to_le_bytes());
    for v in &out.values {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    for (name, value) in &out.metrics {
        buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }
    let mut hasher = Fnv1a::new();
    hasher.mix_bytes(&buf);
    buf.extend_from_slice(&hasher.finish().to_le_bytes());
    buf
}

/// Validates and deserializes one entry; `None` means corrupt/foreign
/// (wrong magic, future version, key mismatch, truncation, checksum
/// failure) and the caller must quarantine.
fn decode(key: u64, bytes: &[u8]) -> Option<JobOutput> {
    if bytes.len() < HEADER_BYTES + FOOTER_BYTES {
        return None;
    }
    let (payload, footer) = bytes.split_at(bytes.len() - FOOTER_BYTES);
    let mut hasher = Fnv1a::new();
    hasher.mix_bytes(payload);
    if hasher.finish() != u64::from_le_bytes(footer.try_into().ok()?) {
        return None;
    }
    let mut r = Reader(payload);
    if r.take(8)? != MAGIC {
        return None;
    }
    if u32::from_le_bytes(r.take(4)?.try_into().ok()?) != FORMAT_VERSION {
        return None;
    }
    if u64::from_le_bytes(r.take(8)?.try_into().ok()?) != key {
        return None;
    }
    let n_values = u64::from_le_bytes(r.take(8)?.try_into().ok()?) as usize;
    let n_metrics = u64::from_le_bytes(r.take(8)?.try_into().ok()?) as usize;
    // Reject fields that promise more than the file holds before
    // allocating for them.
    if n_values.checked_mul(8)? > r.0.len() {
        return None;
    }
    let mut values = Vec::with_capacity(n_values);
    for _ in 0..n_values {
        values.push(f64::from_bits(u64::from_le_bytes(
            r.take(8)?.try_into().ok()?,
        )));
    }
    let mut metrics = Vec::with_capacity(n_metrics.min(1024));
    for _ in 0..n_metrics {
        let name_len = u32::from_le_bytes(r.take(4)?.try_into().ok()?) as usize;
        let name = String::from_utf8(r.take(name_len)?.to_vec()).ok()?;
        let value = f64::from_bits(u64::from_le_bytes(r.take(8)?.try_into().ok()?));
        metrics.push((name, value));
    }
    if !r.0.is_empty() {
        return None; // trailing garbage under a (coincidentally) valid checksum
    }
    Some(JobOutput { values, metrics })
}

/// A bounds-checked byte cursor.
struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if n > self.0.len() {
            return None;
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Some(head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "si-disk-tier-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn output(n: usize, seed: f64) -> Arc<JobOutput> {
        Arc::new(JobOutput {
            values: (0..n).map(|k| seed + k as f64 * 0.125).collect(),
            metrics: vec![("scenarios".to_string(), n as f64)],
        })
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let dir = tmpdir("roundtrip");
        let tier = DiskTier::open(DiskTierConfig::at(&dir)).unwrap();
        let out = Arc::new(JobOutput {
            values: vec![1.5, -0.0, f64::MIN_POSITIVE, 1e300],
            metrics: vec![("newton_iterations".to_string(), 7.0)],
        });
        tier.store(42, &out);
        let back = tier.load(42).expect("stored entry loads");
        assert_eq!(back.values.len(), out.values.len());
        for (a, b) in back.values.iter().zip(out.values.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.metrics, out.metrics);
        let stats = tier.stats();
        assert_eq!((stats.writes, stats.hits, stats.entries), (1, 1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_survive_reopen() {
        let dir = tmpdir("reopen");
        {
            let tier = DiskTier::open(DiskTierConfig::at(&dir)).unwrap();
            tier.store(7, &output(3, 1.0));
        }
        let tier = DiskTier::open(DiskTierConfig::at(&dir)).unwrap();
        assert_eq!(tier.load(7).unwrap().values, output(3, 1.0).values);
        assert_eq!(tier.stats().entries, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    /// ISSUE 8 satellite: the byte budget is enforced LRU-by-access and
    /// the eviction counters are exact.
    #[test]
    fn byte_budget_evicts_lru_with_exact_counters() {
        let dir = tmpdir("budget");
        let one_entry = encode(0, &output(16, 0.0)).len() as u64;
        // Room for exactly two entries.
        let tier = DiskTier::open(DiskTierConfig {
            dir: dir.clone(),
            budget_bytes: one_entry * 2,
        })
        .unwrap();
        tier.store(1, &output(16, 1.0));
        tier.store(2, &output(16, 2.0));
        assert_eq!(tier.stats().evictions, 0);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(tier.load(1).is_some());
        tier.store(3, &output(16, 3.0));
        let stats = tier.stats();
        assert_eq!(stats.evictions, 1, "exactly one eviction: {stats:?}");
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= one_entry * 2);
        assert!(tier.load(2).is_none(), "LRU entry 2 must be evicted");
        assert!(tier.load(1).is_some(), "recently-touched entry 1 survives");
        assert!(tier.load(3).is_some(), "newest entry 3 survives");
        let _ = fs::remove_dir_all(&dir);
    }

    /// ISSUE 10 satellite: every read path refreshes LRU recency — a
    /// `load` hit and a `read_validated` hit (the warming/transfer path)
    /// both move the entry to the back of the eviction order, so an
    /// entry kept hot by *either* path survives a budget squeeze.
    #[test]
    fn read_paths_refresh_lru_recency() {
        let dir = tmpdir("recency");
        let one_entry = encode(0, &output(16, 0.0)).len() as u64;
        let tier = DiskTier::open(DiskTierConfig {
            dir: dir.clone(),
            budget_bytes: one_entry * 3,
        })
        .unwrap();
        tier.store(1, &output(16, 1.0));
        tier.store(2, &output(16, 2.0));
        tier.store(3, &output(16, 3.0));
        // Access order is 1, 2, 3. Touch 1 via `load` and 2 via
        // `read_validated`; the untouched 3 becomes the LRU victim.
        assert!(tier.load(1).is_some());
        assert!(tier.read_validated(2).is_some());
        tier.store(4, &output(16, 4.0));
        let stats = tier.stats();
        assert_eq!(stats.evictions, 1, "exactly one eviction: {stats:?}");
        assert!(
            tier.load(3).is_none(),
            "untouched entry 3 must be the victim"
        );
        assert!(tier.load(1).is_some(), "`load` must refresh recency");
        assert!(
            tier.load(2).is_some(),
            "`read_validated` must refresh recency"
        );
        assert!(tier.load(4).is_some(), "newest entry survives");
        let _ = fs::remove_dir_all(&dir);
    }

    /// ISSUE 8 satellite: a pre-seeded corrupt file is quarantined —
    /// `corrupt_evicted` increments, the file is gone, and the key reads
    /// as a miss (so the job transparently re-solves).
    #[test]
    fn corrupt_files_are_quarantined_never_served() {
        let dir = tmpdir("corrupt");
        let tier = DiskTier::open(DiskTierConfig::at(&dir)).unwrap();
        let out = output(8, 4.0);
        tier.store(9, &out);

        // Flip one payload bit.
        let path = tier.path_for(9);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        assert!(tier.load(9).is_none(), "corrupt entry must not be served");
        assert_eq!(tier.stats().corrupt_evicted, 1);
        assert!(!path.exists(), "corrupt file must be deleted");
        // The key is reusable: a fresh store serves again.
        tier.store(9, &out);
        assert!(tier.load(9).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Foreign files (wrong magic), future versions, wrong-key files, and
    /// truncations are all quarantined, not served.
    #[test]
    fn foreign_and_torn_files_are_rejected() {
        let dir = tmpdir("foreign");
        let tier = DiskTier::open(DiskTierConfig::at(&dir)).unwrap();
        let out = output(4, 2.0);

        // Wrong magic.
        fs::write(tier.path_for(1), b"NOTCACHEgarbage").unwrap();
        assert!(tier.load(1).is_none());
        // Future version: valid checksum, version 2.
        let mut buf = encode(2, &out);
        buf[8..12].copy_from_slice(&2u32.to_le_bytes());
        let body_len = buf.len() - FOOTER_BYTES;
        let mut hasher = Fnv1a::new();
        hasher.mix_bytes(&buf[..body_len]);
        let sum = hasher.finish().to_le_bytes();
        buf[body_len..].copy_from_slice(&sum);
        fs::write(tier.path_for(2), &buf).unwrap();
        assert!(tier.load(2).is_none());
        // Key mismatch: entry for key 3 stored at key 4's path.
        fs::write(tier.path_for(4), encode(3, &out)).unwrap();
        assert!(tier.load(4).is_none());
        // Torn entry via the chaos hook.
        tier.plant_torn_entry_for_test(5, &out);
        assert!(tier.load(5).is_none());
        assert_eq!(tier.stats().corrupt_evicted, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A writer killed before its rename leaves only a `.tmp-` file; the
    /// next startup sweeps it and the final path stays absent.
    #[test]
    fn tmp_leftovers_are_swept_at_startup() {
        let dir = tmpdir("sweep");
        DiskTier::plant_tmp_leftover_for_test(&dir, 77);
        let tier = DiskTier::open(DiskTierConfig::at(&dir)).unwrap();
        assert_eq!(tier.tmp_swept(), 1);
        assert!(tier.load(77).is_none());
        assert!(
            !dir.join(".tmp-000000000000004d-dead").exists(),
            "tmp leftover must be deleted"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// ISSUE 9 satellite: eviction strictly follows the access clock —
    /// with four resident entries and a budget squeeze to one, victims
    /// fall in exact least-recently-*accessed* order, not insertion
    /// order.
    #[test]
    fn byte_budget_eviction_follows_access_order_exactly() {
        let dir = tmpdir("evict-order");
        let one_entry = encode(0, &output(16, 0.0)).len() as u64;
        let tier = DiskTier::open(DiskTierConfig {
            dir: dir.clone(),
            budget_bytes: one_entry * 4,
        })
        .unwrap();
        for k in 1..=4 {
            tier.store(k, &output(16, k as f64));
        }
        // Access order now: 1 < 2 < 3 < 4. Touch 2 then 1, making the
        // LRU order 3 < 4 < 2 < 1.
        assert!(tier.load(2).is_some());
        assert!(tier.load(1).is_some());
        // Each new store displaces exactly the current LRU victim.
        tier.store(5, &output(16, 5.0)); // evicts 3
        assert!(!tier.path_for(3).exists(), "3 is the LRU, evicted first");
        assert!(tier.path_for(4).exists());
        tier.store(6, &output(16, 6.0)); // evicts 4
        assert!(!tier.path_for(4).exists(), "4 evicted second");
        assert!(tier.path_for(2).exists());
        tier.store(7, &output(16, 7.0)); // evicts 2
        assert!(!tier.path_for(2).exists(), "2 evicted third");
        assert!(tier.path_for(1).exists(), "most-recently-touched survives");
        assert_eq!(tier.stats().evictions, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    /// ISSUE 9 satellite: `read_validated` (the `GET /v1/cache/:key`
    /// source) serves only checksummed-valid bytes. A corrupt entry is
    /// quarantined — `corrupt_evicted` increments, the file is deleted —
    /// and never leaves the process.
    #[test]
    fn read_validated_never_serves_corrupt_bytes() {
        let dir = tmpdir("read-validated");
        let tier = DiskTier::open(DiskTierConfig::at(&dir)).unwrap();
        let out = output(8, 3.0);
        tier.store(11, &out);

        // The happy path returns the exact on-disk serialization.
        let bytes = tier.read_validated(11).expect("valid entry is served");
        assert_eq!(bytes, encode(11, &out));
        // Absent keys are a plain miss, not a quarantine.
        assert!(tier.read_validated(12).is_none());
        assert_eq!(tier.stats().corrupt_evicted, 0);

        // Flip a payload bit: the read must refuse and quarantine.
        let path = tier.path_for(11);
        let mut raw = fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x10;
        fs::write(&path, &raw).unwrap();
        assert!(tier.read_validated(11).is_none());
        assert_eq!(tier.stats().corrupt_evicted, 1);
        assert!(!path.exists(), "corrupt file must be quarantined");
        // A torn prefix is likewise refused.
        tier.plant_torn_entry_for_test(13, &out);
        assert!(tier.read_validated(13).is_none());
        assert_eq!(tier.stats().corrupt_evicted, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    /// ISSUE 9: `ingest` round-trips `read_validated` bytes between two
    /// tiers bit-exactly, and drops anything that fails validation
    /// (corrupt payloads, key mismatches) without touching the directory.
    #[test]
    fn ingest_validates_peer_bytes_before_persisting() {
        let src_dir = tmpdir("ingest-src");
        let dst_dir = tmpdir("ingest-dst");
        let src = DiskTier::open(DiskTierConfig::at(&src_dir)).unwrap();
        let dst = DiskTier::open(DiskTierConfig::at(&dst_dir)).unwrap();
        let out = output(8, 6.0);
        src.store(21, &out);

        // Peer transfer: read from src, ingest into dst, serve bit-exact.
        let bytes = src.read_validated(21).unwrap();
        assert!(dst.ingest(21, &bytes));
        let back = dst.load(21).expect("ingested entry is servable");
        for (a, b) in back.values.iter().zip(out.values.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(dst.stats().writes, 1);

        // A corrupt transfer is refused before any write.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        assert!(!dst.ingest(22, &bad));
        // Valid bytes under the wrong key are refused too: the key in the
        // header must match the slot being filled.
        assert!(!dst.ingest(23, &bytes));
        assert!(!dst.path_for(22).exists());
        assert!(!dst.path_for(23).exists());
        assert_eq!(dst.stats().writes, 1, "no write for refused ingests");
        let _ = fs::remove_dir_all(&src_dir);
        let _ = fs::remove_dir_all(&dst_dir);
    }

    /// Reopening with a smaller budget evicts down to it immediately,
    /// oldest mtimes first.
    #[test]
    fn reopen_with_smaller_budget_evicts_immediately() {
        let dir = tmpdir("shrink");
        let one_entry = encode(0, &output(16, 0.0)).len() as u64;
        {
            let tier = DiskTier::open(DiskTierConfig::at(&dir)).unwrap();
            for k in 0..4 {
                tier.store(k, &output(16, k as f64));
            }
        }
        let tier = DiskTier::open(DiskTierConfig {
            dir: dir.clone(),
            budget_bytes: one_entry * 2,
        })
        .unwrap();
        let stats = tier.stats();
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.entries, 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
