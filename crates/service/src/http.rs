//! A hand-rolled, readiness-driven HTTP/1.1 front end over
//! `std::net::TcpListener`.
//!
//! The build environment carries no network crates, and the service's
//! needs are narrow: small JSON bodies, `Content-Length` framing,
//! keep-alive, four routes. PR 5's thread-per-connection model was
//! bounded but paid one thread per *open* connection; a fleet of idle
//! keep-alive clients is exactly the workload the ROADMAP's north star
//! promises, and threads are the wrong currency for idleness. This
//! version runs **one event-loop thread** over nonblocking sockets:
//!
//! - every connection is a slot in a `poll(2)` set (hand-declared FFI on
//!   unix — std links the platform C library; elsewhere a short-tick
//!   scan loop stands in) driving a per-connection state machine:
//!   **Reading** (accumulate request bytes) → **Waiting** (a handler
//!   thread runs the blocking solve) → **Writing** (drain the response)
//!   → back to Reading on keep-alive,
//! - only in-flight `POST /v1/jobs` requests occupy a thread; `GET`s,
//!   errors, and idle connections are serviced entirely on the loop,
//! - a wake pipe lets handler threads hand finished responses back to
//!   the loop without waiting out a poll tick.
//!
//! Every limit from the threaded listener survives, enforced by the loop
//! instead of socket options:
//!
//! - a global connection cap ([`HttpConfig::max_connections`]); excess
//!   connections are shed immediately with `503` + `Retry-After`,
//! - a per-request read deadline **fixed when the request cycle starts**
//!   — a client trickling bytes (slowloris) can no longer reset the
//!   timer with each byte; expiry yields a typed `408`,
//! - a write deadline per response; a peer that stops draining its
//!   socket is disconnected,
//! - a body-size cap enforced from the `Content-Length` header, before
//!   the body arrives (typed `413`),
//! - malformed framing (missing or garbage `Content-Length` on a POST,
//!   a non-UTF-8 body, a garbled request line, an oversized header
//!   section) gets a typed `400` instead of a silent hang-up.
//!
//! Routes:
//!
//! | Method | Path             | Behavior                                  |
//! |--------|------------------|-------------------------------------------|
//! | POST   | `/v1/jobs`       | Run (or fetch) a job; blocks until done   |
//! | GET    | `/v1/jobs/:id`   | Non-blocking lookup of a finished job     |
//! | GET    | `/v1/cache/:key` | Raw checksummed `.sic` entry (warming)    |
//! | POST   | `/v1/warm`       | Pull listed keys from a peer's cache      |
//! | GET    | `/metrics`       | Service / cache / pool / engine / http    |
//! | GET    | `/healthz`       | Liveness probe (is the process up)        |
//! | GET    | `/readyz`        | Readiness probe (should a router send here)|
//!
//! `POST /v1/jobs` accepts an optional `"timeout_ms"` field beside the
//! spec; admission-control rejections surface as `503` with `Retry-After`
//! and a JSON error body, deadline misses as `504`.
//!
//! `/healthz` and `/readyz` split liveness from readiness (ISSUE 9): the
//! former answers `200` for as long as the event loop runs, the latter
//! consults [`SiService::readiness`] — a drained pool or a degraded cache
//! directory turns it into a `503` so the `si-router` ring (and CI) can
//! tell "up" from "serving". `GET /v1/cache/:key` serves the disk tier's
//! validated `.sic` bytes as `application/octet-stream` — the transfer
//! format of replica cache warming — and `POST /v1/warm`
//! (`{"peer":"host:port","keys":["16-hex",…]}`) makes this replica pull
//! those entries from a peer.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::error::ServiceError;
use crate::jobspec::JobSpec;
use crate::json::{self, Json};
use crate::service::{job_response_body, SiService};

const MAX_HEADER_LINES: usize = 100;
/// Cap on the buffered request-line + header section; past this the
/// framing is hostile, not slow.
const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Upper bound on one poll wait; deadline sweeps happen at least this
/// often even with no I/O (shutdown is faster: the wake pipe interrupts).
const MAX_POLL_WAIT_MS: i32 = 1000;

/// Listener hardening knobs. The defaults suit tests and small
/// deployments; `si_serve` exposes each as a flag.
#[derive(Debug, Clone, Copy)]
pub struct HttpConfig {
    /// Per-request read deadline (request line, headers, and body),
    /// fixed when the request cycle starts; expiry yields a typed `408`.
    pub read_timeout: Duration,
    /// Per-response write deadline; a peer that stops draining its
    /// socket gets disconnected instead of pinning a poll slot forever.
    pub write_timeout: Duration,
    /// Largest accepted request body; a bigger `Content-Length` is
    /// rejected with `413` before any body byte is read.
    pub max_body_bytes: usize,
    /// Concurrent-connection cap; excess connections are shed with `503`
    /// + `Retry-After` without occupying a poll slot.
    pub max_connections: usize,
    /// The `Retry-After` value (seconds) sent with every `503`.
    pub retry_after_secs: u64,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_body_bytes: 1 << 20,
            max_connections: 256,
            retry_after_secs: 1,
        }
    }
}

/// Listener-level counters and gauges, surfaced as the `"http"` section
/// of `/metrics`.
#[derive(Debug, Default)]
pub struct HttpStats {
    /// Connections accepted and served.
    pub accepted: AtomicU64,
    /// Connections shed at the cap with `503`.
    pub shed_connections: AtomicU64,
    /// Requests rejected with `400` (malformed framing or body).
    pub bad_requests: AtomicU64,
    /// Requests rejected with `413` (body over the cap).
    pub too_large: AtomicU64,
    /// Requests that hit the read deadline (`408`).
    pub timeouts: AtomicU64,
    /// Connections the peer dropped mid-request (truncated body, reset,
    /// or vanished before the response was written).
    pub dropped_mid_request: AtomicU64,
    /// Responses successfully written.
    pub responses: AtomicU64,
    /// Gauge: connections currently open (poll slots in use).
    pub open_connections: AtomicU64,
    /// Gauge: open connections idle between keep-alive requests — the
    /// population that used to cost a thread each and now costs none.
    pub idle_keepalive: AtomicU64,
}

impl HttpStats {
    fn to_json(&self) -> Json {
        let num = |v: &AtomicU64| Json::Number(v.load(Ordering::Relaxed) as f64);
        Json::Object(vec![
            ("accepted".to_string(), num(&self.accepted)),
            ("shed_connections".to_string(), num(&self.shed_connections)),
            ("bad_requests".to_string(), num(&self.bad_requests)),
            ("too_large".to_string(), num(&self.too_large)),
            ("timeouts".to_string(), num(&self.timeouts)),
            (
                "dropped_mid_request".to_string(),
                num(&self.dropped_mid_request),
            ),
            ("responses".to_string(), num(&self.responses)),
            ("open_connections".to_string(), num(&self.open_connections)),
            ("idle_keepalive".to_string(), num(&self.idle_keepalive)),
        ])
    }
}

/// Hand-declared `poll(2)`. The environment vendors no libc crate, but
/// std always links the platform C library, so the one syscall wrapper
/// the loop needs is declared here.
#[cfg(unix)]
mod poll_sys {
    use std::os::raw::{c_int, c_short};

    #[repr(C)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;

    #[cfg(target_os = "linux")]
    pub type NFds = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    pub type NFds = std::os::raw::c_uint;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: NFds, timeout: c_int) -> c_int;
    }
}

/// Wakes the event loop from another thread. On unix this is a
/// socketpair the loop polls alongside its connections; elsewhere the
/// loop ticks every couple of milliseconds and the waker is a no-op.
#[derive(Debug)]
struct Waker {
    #[cfg(unix)]
    tx: std::os::unix::net::UnixStream,
    #[cfg(unix)]
    rx: std::os::unix::net::UnixStream,
}

impl Waker {
    fn new() -> std::io::Result<Waker> {
        #[cfg(unix)]
        {
            let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            Ok(Waker { tx, rx })
        }
        #[cfg(not(unix))]
        {
            Ok(Waker {})
        }
    }

    /// Best-effort: a full pipe already guarantees a pending wake.
    fn wake(&self) {
        #[cfg(unix)]
        {
            let _ = (&self.tx).write(&[1]);
        }
    }

    fn drain(&self) {
        #[cfg(unix)]
        {
            let mut sink = [0u8; 64];
            while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
        }
    }
}

/// A finished `POST /v1/jobs` handed back from a handler thread.
struct Completion {
    token: usize,
    status: u16,
    body: String,
    keep_alive: bool,
}

/// The handler-thread → event-loop channel: a mutexed queue plus the
/// wake pipe that interrupts the loop's poll wait.
#[derive(Debug)]
struct Completions {
    queue: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl Completions {
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Completion>> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn push(&self, completion: Completion) {
        self.lock().push(completion);
        self.waker.wake();
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.lock())
    }
}

impl std::fmt::Debug for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completion")
            .field("token", &self.token)
            .field("status", &self.status)
            .finish_non_exhaustive()
    }
}

/// Per-connection state machine position.
enum ConnState {
    /// Accumulating request bytes; `deadline` is the fixed per-request
    /// read deadline (the slowloris clock).
    Reading,
    /// A handler thread owns the request; the loop neither polls nor
    /// times out this connection — the service's own deadlines govern.
    Waiting,
    /// Draining a response; `deadline` is the write deadline.
    Writing {
        out: Vec<u8>,
        pos: usize,
        keep_alive: bool,
    },
}

struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes (may hold pipelined follow-up requests).
    buf: Vec<u8>,
    state: ConnState,
    deadline: Instant,
    /// Responses completed on this connection (drives the
    /// `idle_keepalive` gauge).
    served: u64,
}

enum FlushResult {
    Done { keep_alive: bool },
    Pending,
    Failed,
}

impl Conn {
    fn start_write(&mut self, out: Vec<u8>, keep_alive: bool, write_timeout: Duration) {
        self.state = ConnState::Writing {
            out,
            pos: 0,
            keep_alive,
        };
        self.deadline = Instant::now() + write_timeout;
    }

    /// Writes as much of the pending response as the socket accepts.
    fn flush_some(&mut self) -> FlushResult {
        let ConnState::Writing {
            out,
            pos,
            keep_alive,
        } = &mut self.state
        else {
            return FlushResult::Pending;
        };
        let keep_alive = *keep_alive;
        loop {
            if *pos >= out.len() {
                return FlushResult::Done { keep_alive };
            }
            match (&self.stream).write(&out[*pos..]) {
                Ok(0) => return FlushResult::Failed,
                Ok(n) => *pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return FlushResult::Pending
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return FlushResult::Failed,
            }
        }
    }
}

/// What the loop should do with a connection after driving it.
enum Disposition {
    Keep,
    Close { dropped: bool },
}

/// Everything the event loop and its handler threads share.
struct LoopCtx {
    service: Arc<SiService>,
    stats: Arc<HttpStats>,
    config: HttpConfig,
    completions: Arc<Completions>,
}

/// A running HTTP server bound to a local address.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    loop_thread: Option<thread::JoinHandle<()>>,
    service: Arc<SiService>,
    stats: Arc<HttpStats>,
    completions: Arc<Completions>,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) with the default
    /// [`HttpConfig`] and starts the event loop.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, service: Arc<SiService>) -> std::io::Result<HttpServer> {
        HttpServer::bind_with(addr, service, HttpConfig::default())
    }

    /// [`HttpServer::bind`] with explicit listener hardening knobs.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_with(
        addr: &str,
        service: Arc<SiService>,
        config: HttpConfig,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(HttpStats::default());
        let completions = Arc::new(Completions {
            queue: Mutex::new(Vec::new()),
            waker: Waker::new()?,
        });
        let ctx = LoopCtx {
            service: Arc::clone(&service),
            stats: Arc::clone(&stats),
            config,
            completions: Arc::clone(&completions),
        };
        let loop_stop = Arc::clone(&stop);
        let loop_thread = thread::Builder::new()
            .name("si-http-loop".to_string())
            .spawn(move || event_loop(&listener, &loop_stop, &ctx))?;
        Ok(HttpServer {
            addr: local,
            stop,
            loop_thread: Some(loop_thread),
            service,
            stats,
            completions,
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Listener counter snapshot (shared with the event loop).
    #[must_use]
    pub fn http_stats(&self) -> &HttpStats {
        &self.stats
    }

    /// Stops the event loop and drains the service workers. In-flight
    /// solves finish; new submissions are rejected.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.completions.waker.wake();
        if let Some(handle) = self.loop_thread.take() {
            let _ = handle.join();
        }
        self.service.shutdown();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Which sources `poll` reported ready.
#[derive(Default)]
struct ReadySet {
    listener: bool,
    conns: Vec<usize>,
}

/// One poll wait on unix: the wake pipe, the listener, and every
/// connection whose state wants I/O.
#[cfg(unix)]
fn poll_wait(
    waker: &Waker,
    listener: &TcpListener,
    conns: &[Option<Conn>],
    timeout_ms: i32,
) -> ReadySet {
    use poll_sys::{poll, NFds, PollFd, POLLIN, POLLOUT};
    use std::os::unix::io::AsRawFd;

    let mut fds = vec![
        PollFd {
            fd: waker.rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        },
        PollFd {
            fd: listener.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        },
    ];
    let mut tokens = Vec::new();
    for (token, slot) in conns.iter().enumerate() {
        let Some(conn) = slot else { continue };
        let events = match conn.state {
            ConnState::Reading => POLLIN,
            ConnState::Writing { .. } => POLLOUT,
            ConnState::Waiting => continue,
        };
        fds.push(PollFd {
            fd: conn.stream.as_raw_fd(),
            events,
            revents: 0,
        });
        tokens.push(token);
    }
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms) };
    if rc <= 0 {
        // Timeout or EINTR: the caller sweeps deadlines either way.
        return ReadySet::default();
    }
    ReadySet {
        listener: fds[1].revents != 0,
        conns: tokens
            .iter()
            .zip(&fds[2..])
            .filter(|(_, f)| f.revents != 0)
            .map(|(t, _)| *t)
            .collect(),
    }
}

/// Portable fallback: tick every 2 ms and optimistically try everything
/// (nonblocking sockets make spurious attempts cheap).
#[cfg(not(unix))]
fn poll_wait(
    _waker: &Waker,
    _listener: &TcpListener,
    conns: &[Option<Conn>],
    timeout_ms: i32,
) -> ReadySet {
    thread::sleep(Duration::from_millis(timeout_ms.clamp(0, 2) as u64));
    ReadySet {
        listener: true,
        conns: conns
            .iter()
            .enumerate()
            .filter(|(_, slot)| {
                slot.as_ref()
                    .is_some_and(|c| !matches!(c.state, ConnState::Waiting))
            })
            .map(|(t, _)| t)
            .collect(),
    }
}

fn event_loop(listener: &TcpListener, stop: &AtomicBool, ctx: &LoopCtx) {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let timeout_ms = next_timeout_ms(&conns);
        let ready = poll_wait(&ctx.completions.waker, listener, &conns, timeout_ms);
        ctx.completions.waker.drain();
        if stop.load(Ordering::SeqCst) {
            return;
        }

        // Finished handler threads first: their connections move from
        // Waiting to Writing and start draining this same iteration.
        for completion in ctx.completions.drain() {
            let Some(slot) = conns.get_mut(completion.token) else {
                continue;
            };
            let Some(conn) = slot.as_mut() else { continue };
            if !matches!(conn.state, ConnState::Waiting) {
                continue;
            }
            let retry_after = (completion.status == 503).then_some(ctx.config.retry_after_secs);
            conn.start_write(
                response_bytes(
                    completion.status,
                    &completion.body,
                    completion.keep_alive,
                    retry_after,
                ),
                completion.keep_alive,
                ctx.config.write_timeout,
            );
            let disposition = drive(conn, completion.token, ctx);
            settle(&mut conns, completion.token, disposition, ctx);
        }

        if ready.listener {
            accept_ready(listener, &mut conns, ctx);
        }

        for token in ready.conns {
            let Some(conn) = conns.get_mut(token).and_then(Option::as_mut) else {
                continue;
            };
            let disposition = match conn.state {
                ConnState::Reading => handle_readable(conn, token, ctx),
                ConnState::Writing { .. } => drive(conn, token, ctx),
                ConnState::Waiting => continue,
            };
            settle(&mut conns, token, disposition, ctx);
        }

        sweep_deadlines(&mut conns, ctx);
        update_gauges(&conns, &ctx.stats);
    }
}

/// Milliseconds until the nearest read/write deadline, capped at
/// [`MAX_POLL_WAIT_MS`].
fn next_timeout_ms(conns: &[Option<Conn>]) -> i32 {
    let now = Instant::now();
    let mut timeout = MAX_POLL_WAIT_MS;
    for conn in conns.iter().flatten() {
        if matches!(conn.state, ConnState::Waiting) {
            continue;
        }
        let remaining = conn.deadline.saturating_duration_since(now).as_millis() as i32;
        // +1 so the wake lands just past the deadline, not just before.
        timeout = timeout.min(remaining.saturating_add(1));
    }
    timeout.max(0)
}

fn accept_ready(listener: &TcpListener, conns: &mut Vec<Option<Conn>>, ctx: &LoopCtx) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(_) => return,
        };
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let open = conns.iter().filter(|c| c.is_some()).count();
        if open >= ctx.config.max_connections {
            // Shed *before* taking a slot. One best-effort write: a
            // fresh socket's send buffer always has room for ~200 bytes.
            ctx.stats.shed_connections.fetch_add(1, Ordering::Relaxed);
            let err = ServiceError::Overloaded {
                queue_capacity: ctx.config.max_connections,
            };
            let bytes = response_bytes(
                503,
                &error_body(&err),
                false,
                Some(ctx.config.retry_after_secs),
            );
            let _ = (&stream).write(&bytes);
            continue;
        }
        ctx.stats.accepted.fetch_add(1, Ordering::Relaxed);
        let conn = Conn {
            stream,
            buf: Vec::new(),
            state: ConnState::Reading,
            deadline: Instant::now() + ctx.config.read_timeout,
            served: 0,
        };
        match conns.iter_mut().find(|slot| slot.is_none()) {
            Some(slot) => *slot = Some(conn),
            None => conns.push(Some(conn)),
        }
    }
}

/// Reads whatever the socket holds, then advances the state machine.
fn handle_readable(conn: &mut Conn, token: usize, ctx: &LoopCtx) -> Disposition {
    let mut chunk = [0u8; 8192];
    loop {
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => {
                // EOF. Between requests it's a clean close; mid-request
                // the peer vanished with bytes outstanding.
                return Disposition::Close {
                    dropped: !conn.buf.is_empty(),
                };
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                if n < chunk.len() {
                    break; // level-triggered poll reports any remainder
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Disposition::Close { dropped: true },
        }
    }
    drive(conn, token, ctx)
}

/// Advances a connection's state machine as far as it will go without
/// blocking: parse → dispatch → write → (keep-alive) parse again.
fn drive(conn: &mut Conn, token: usize, ctx: &LoopCtx) -> Disposition {
    loop {
        match conn.state {
            ConnState::Waiting => return Disposition::Keep,
            ConnState::Reading => {
                match try_parse(&conn.buf, ctx.config.max_body_bytes) {
                    Parse::NeedMore => return Disposition::Keep,
                    Parse::Bad(msg) => {
                        ctx.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                        let err = ServiceError::InvalidSpec(msg);
                        // Framing is unreliable after a parse failure:
                        // answer and close.
                        conn.start_write(
                            response_bytes(400, &error_body(&err), false, None),
                            false,
                            ctx.config.write_timeout,
                        );
                    }
                    Parse::TooLarge => {
                        ctx.stats.too_large.fetch_add(1, Ordering::Relaxed);
                        let err = ServiceError::InvalidSpec(format!(
                            "request body exceeds {} bytes",
                            ctx.config.max_body_bytes
                        ));
                        // The unread body is still in the pipe: close.
                        conn.start_write(
                            response_bytes(413, &error_body(&err), false, None),
                            false,
                            ctx.config.write_timeout,
                        );
                    }
                    Parse::Request { request, consumed } => {
                        conn.buf.drain(..consumed);
                        if request.method == "POST" && request.path == "/v1/warm" {
                            // Warming pulls entries over the network from
                            // a peer replica — blocking by nature, so it
                            // runs on a handler thread like a solve.
                            conn.state = ConnState::Waiting;
                            let body = request.body;
                            spawn_blocking(token, request.keep_alive, ctx, move |service| {
                                warm_job(&body, service)
                            });
                            return Disposition::Keep;
                        }
                        if request.method == "GET" && request.path.starts_with("/v1/cache/") {
                            // Binary route: the validated `.sic` bytes go
                            // out as octet-stream, straight from the loop
                            // (one local file read).
                            let out = cache_entry_response(&request, ctx);
                            conn.start_write(out, request.keep_alive, ctx.config.write_timeout);
                            continue;
                        }
                        if request.method == "POST" && request.path == "/v1/jobs" {
                            // Hits already resident in the memory tier are
                            // answered right here on the loop — no handler
                            // thread, no completion round trip. Everything
                            // else (misses, disk probes, netlists, bad
                            // bodies) parks the connection and lets a
                            // handler thread run the blocking path.
                            if let Some((status, body)) = try_post_inline(&request.body, ctx) {
                                conn.start_write(
                                    response_bytes(status, &body, request.keep_alive, None),
                                    request.keep_alive,
                                    ctx.config.write_timeout,
                                );
                                continue;
                            }
                            // The blocking route: park the connection and
                            // let a handler thread run the solve.
                            conn.state = ConnState::Waiting;
                            spawn_post(token, request, ctx);
                            return Disposition::Keep;
                        }
                        let (status, body) = route_inline(&request, ctx);
                        let retry_after = (status == 503).then_some(ctx.config.retry_after_secs);
                        conn.start_write(
                            response_bytes(status, &body, request.keep_alive, retry_after),
                            request.keep_alive,
                            ctx.config.write_timeout,
                        );
                    }
                }
            }
            ConnState::Writing { .. } => match conn.flush_some() {
                FlushResult::Pending => return Disposition::Keep,
                FlushResult::Failed => return Disposition::Close { dropped: true },
                FlushResult::Done { keep_alive } => {
                    ctx.stats.responses.fetch_add(1, Ordering::Relaxed);
                    conn.served += 1;
                    if !keep_alive {
                        return Disposition::Close { dropped: false };
                    }
                    // Next request cycle: a fresh fixed read deadline,
                    // and any pipelined bytes parse immediately.
                    conn.state = ConnState::Reading;
                    conn.deadline = Instant::now() + ctx.config.read_timeout;
                }
            },
        }
    }
}

/// Applies a [`Disposition`], freeing the slot and counting drops.
fn settle(conns: &mut [Option<Conn>], token: usize, disposition: Disposition, ctx: &LoopCtx) {
    if let Disposition::Close { dropped } = disposition {
        if dropped {
            ctx.stats
                .dropped_mid_request
                .fetch_add(1, Ordering::Relaxed);
        }
        conns[token] = None;
    }
}

/// Enforces the fixed read deadline (`408`) and the write deadline
/// (disconnect). Waiting connections are exempt: the service's own
/// deadline machinery governs in-flight solves.
fn sweep_deadlines(conns: &mut [Option<Conn>], ctx: &LoopCtx) {
    let now = Instant::now();
    for token in 0..conns.len() {
        let Some(conn) = conns[token].as_mut() else {
            continue;
        };
        if matches!(conn.state, ConnState::Waiting) || now < conn.deadline {
            continue;
        }
        match conn.state {
            ConnState::Reading => {
                ctx.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                let err = ServiceError::InvalidSpec("request not received in time".to_string());
                conn.start_write(
                    response_bytes(408, &error_body(&err), false, None),
                    false,
                    ctx.config.write_timeout,
                );
                let disposition = drive(conn, token, ctx);
                settle(conns, token, disposition, ctx);
            }
            ConnState::Writing { .. } => {
                settle(conns, token, Disposition::Close { dropped: true }, ctx);
            }
            ConnState::Waiting => {}
        }
    }
}

fn update_gauges(conns: &[Option<Conn>], stats: &HttpStats) {
    let mut open = 0u64;
    let mut idle = 0u64;
    for conn in conns.iter().flatten() {
        open += 1;
        if matches!(conn.state, ConnState::Reading) && conn.buf.is_empty() && conn.served > 0 {
            idle += 1;
        }
    }
    stats.open_connections.store(open, Ordering::Relaxed);
    stats.idle_keepalive.store(idle, Ordering::Relaxed);
}

struct Request {
    method: String,
    path: String,
    body: String,
    keep_alive: bool,
}

/// What one attempt to parse the buffered bytes produced.
enum Parse {
    /// The buffer holds a prefix of a valid request; read more.
    NeedMore,
    /// A complete request; `consumed` bytes belong to it.
    Request { request: Request, consumed: usize },
    /// Broken framing or body → `400` with this message.
    Bad(String),
    /// `Content-Length` over the cap → `413`.
    TooLarge,
}

fn try_parse(buf: &[u8], max_body_bytes: usize) -> Parse {
    // Locate the blank line ending the header section without assuming
    // the bytes are UTF-8 yet.
    let mut line_start = 0;
    let mut lines: Vec<(usize, usize)> = Vec::new();
    let mut header_end = None;
    for (i, byte) in buf.iter().enumerate() {
        if *byte != b'\n' {
            continue;
        }
        let mut end = i;
        if end > line_start && buf[end - 1] == b'\r' {
            end -= 1;
        }
        if !lines.is_empty() && end == line_start {
            header_end = Some(i + 1);
            break;
        }
        lines.push((line_start, end));
        line_start = i + 1;
        if lines.len() > MAX_HEADER_LINES + 1 {
            return Parse::Bad(format!("more than {MAX_HEADER_LINES} header lines"));
        }
    }
    let Some(header_end) = header_end else {
        if buf.len() > MAX_HEADER_BYTES {
            return Parse::Bad(format!("header section exceeds {MAX_HEADER_BYTES} bytes"));
        }
        return Parse::NeedMore;
    };

    let Ok(request_line) = std::str::from_utf8(&buf[lines[0].0..lines[0].1]) else {
        return Parse::Bad("request line is not valid UTF-8".to_string());
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Parse::Bad("malformed request line".to_string());
    };
    let method = method.to_string();
    let path = path.to_string();

    let mut content_length: Option<Result<usize, ()>> = None;
    let mut keep_alive = true; // HTTP/1.1 default
    for &(start, end) in &lines[1..] {
        let Ok(header) = std::str::from_utf8(&buf[start..end]) else {
            return Parse::Bad("header is not valid UTF-8".to_string());
        };
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = Some(value.parse::<usize>().map_err(|_| ()));
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    let content_length = match content_length {
        // Methods that carry a body must declare its length; without it
        // the framing of everything after is guesswork.
        None if method == "POST" || method == "PUT" => {
            return Parse::Bad("POST requires a Content-Length header".to_string())
        }
        None => 0,
        Some(Err(())) => {
            return Parse::Bad("Content-Length is not a non-negative integer".to_string())
        }
        Some(Ok(n)) => n,
    };
    if content_length > max_body_bytes {
        return Parse::TooLarge;
    }
    let body_end = header_end + content_length;
    if buf.len() < body_end {
        return Parse::NeedMore;
    }
    let Ok(body) = std::str::from_utf8(&buf[header_end..body_end]) else {
        return Parse::Bad("request body is not valid UTF-8".to_string());
    };
    Parse::Request {
        request: Request {
            method,
            path,
            body: body.to_string(),
            keep_alive,
        },
        consumed: body_end,
    }
}

/// Runs the blocking `POST /v1/jobs` route on its own thread and hands
/// the response back through the completion queue.
fn spawn_post(token: usize, request: Request, ctx: &LoopCtx) {
    let body = request.body;
    spawn_blocking(token, request.keep_alive, ctx, move |service| {
        post_job(&body, service)
    });
}

/// Runs `handler` on its own thread against the service and hands the
/// response back through the completion queue — the dispatch shared by
/// every route too blocking for the event loop (`POST /v1/jobs`,
/// `POST /v1/warm`).
fn spawn_blocking(
    token: usize,
    keep_alive: bool,
    ctx: &LoopCtx,
    handler: impl FnOnce(&SiService) -> (u16, String) + Send + 'static,
) {
    let service = Arc::clone(&ctx.service);
    let completions = Arc::clone(&ctx.completions);
    let spawned = thread::Builder::new()
        .name("si-http-post".to_string())
        .spawn(move || {
            let (status, body) = handler(&service);
            completions.push(Completion {
                token,
                status,
                body,
                keep_alive,
            });
        });
    if spawned.is_err() {
        let err = ServiceError::Internal("could not spawn a request handler".to_string());
        ctx.completions.push(Completion {
            token,
            status: 500,
            body: error_body(&err),
            keep_alive: false,
        });
    }
}

fn response_bytes(
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after_secs: Option<u64>,
) -> Vec<u8> {
    response_bytes_typed(
        status,
        body.as_bytes(),
        "application/json",
        keep_alive,
        retry_after_secs,
    )
}

/// [`response_bytes`] generalized over the body encoding: the
/// `GET /v1/cache/:key` route ships raw `.sic` entries as
/// `application/octet-stream`, everything else stays JSON.
fn response_bytes_typed(
    status: u16,
    body: &[u8],
    content_type: &str,
    keep_alive: bool,
    retry_after_secs: Option<u64>,
) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        499 => "Client Closed Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let retry_after = retry_after_secs
        .map(|s| format!("Retry-After: {s}\r\n"))
        .unwrap_or_default();
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{retry_after}Connection: {connection}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

pub(crate) fn error_body(err: &ServiceError) -> String {
    Json::Object(vec![
        ("error".to_string(), Json::String(err.code().to_string())),
        ("message".to_string(), Json::String(err.to_string())),
    ])
    .to_string_compact()
}

/// Every route except the blocking `POST /v1/jobs`, all cheap enough to
/// run on the loop thread.
fn route_inline(request: &Request, ctx: &LoopCtx) -> (u16, String) {
    let service = ctx.service.as_ref();
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/metrics") => (200, metrics_with_http(ctx)),
        ("GET", "/healthz") => (200, r#"{"status":"ok"}"#.to_string()),
        ("GET", "/readyz") => {
            // Liveness ≠ readiness: the loop answering at all proves the
            // process is up; this verdict says whether a router should
            // *send jobs* here. 503 lets probes distinguish the two with
            // the status code alone.
            let status = if service.is_ready() { 200 } else { 503 };
            (status, service.readiness().to_string_compact())
        }
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            get_job(&path["/v1/jobs/".len()..], service)
        }
        ("POST" | "GET", _) => (
            404,
            r#"{"error":"not_found","message":"unknown route"}"#.to_string(),
        ),
        _ => (
            405,
            r#"{"error":"method_not_allowed","message":"use GET or POST"}"#.to_string(),
        ),
    }
}

/// The service `/metrics` document with the listener's `"http"` section
/// appended.
fn metrics_with_http(ctx: &LoopCtx) -> String {
    let mut doc = ctx.service.metrics();
    if let Json::Object(pairs) = &mut doc {
        pairs.push(("http".to_string(), ctx.stats.to_json()));
    }
    doc.to_string_compact()
}

/// Serves a `POST /v1/jobs` inline when the answer is already resident
/// in the memory tier: parse, probe, respond — the event loop's fast
/// path. `None` means the request needs a handler thread: a cache miss,
/// a netlist (whose admission gauntlet parses the full text), or a body
/// the blocking path should diagnose (its error answer is identical,
/// just off-loop).
fn try_post_inline(body: &str, ctx: &LoopCtx) -> Option<(u16, String)> {
    let parsed = json::parse(body).ok()?;
    let spec = JobSpec::from_json(&parsed).ok()?;
    let out = ctx.service.serve_cached(&spec)?;
    let id = SiService::job_id(&spec);
    Some((
        200,
        job_response_body(&id, spec.kind(), true, &out).to_string_compact(),
    ))
}

fn post_job(body: &str, service: &SiService) -> (u16, String) {
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(msg) => {
            let err = ServiceError::InvalidSpec(format!("body is not JSON: {msg}"));
            return (err.http_status(), error_body(&err));
        }
    };
    let spec = match JobSpec::from_json(&parsed) {
        Ok(s) => s,
        Err(err) => return (err.http_status(), error_body(&err)),
    };
    let deadline = parsed
        .get("timeout_ms")
        .and_then(Json::as_f64)
        .filter(|ms| *ms > 0.0)
        .map(|ms| Duration::from_secs_f64(ms / 1000.0));
    match service.submit_blocking(&spec, deadline) {
        Ok((out, cached)) => {
            let id = SiService::job_id(&spec);
            let body = job_response_body(&id, spec.kind(), cached, &out).to_string_compact();
            (200, body)
        }
        Err(err) => (err.http_status(), error_body(&err)),
    }
}

/// `GET /v1/cache/:key`: the sending half of the warming protocol. Only
/// checksummed-valid entries leave the process — `read_validated`
/// quarantines anything torn or corrupt (counted in `corrupt_evicted`)
/// and the response degrades to a 404, so a peer can trust every byte it
/// ingests. Returns complete response bytes (the one binary route).
fn cache_entry_response(request: &Request, ctx: &LoopCtx) -> Vec<u8> {
    let id = &request.path["/v1/cache/".len()..];
    let Some(key) = SiService::parse_job_id(id) else {
        let err = ServiceError::InvalidSpec("cache keys are 16 hex digits".to_string());
        return response_bytes(400, &error_body(&err), request.keep_alive, None);
    };
    match ctx.service.disk_cache().and_then(|d| d.read_validated(key)) {
        Some(bytes) => response_bytes_typed(
            200,
            &bytes,
            "application/octet-stream",
            request.keep_alive,
            None,
        ),
        None => response_bytes(
            404,
            r#"{"error":"not_found","message":"no valid cache entry for key"}"#,
            request.keep_alive,
            None,
        ),
    }
}

/// `POST /v1/warm`: `{"peer":"host:port","keys":["16-hex",…]}` makes
/// this replica pull the listed entries from `peer`'s cache endpoint
/// into its own disk tier. Warming is best-effort — the response reports
/// `pulled`/`failed` and a failed key just re-solves locally later.
fn warm_job(body: &str, service: &SiService) -> (u16, String) {
    let invalid = |msg: &str| {
        let err = ServiceError::InvalidSpec(msg.to_string());
        (err.http_status(), error_body(&err))
    };
    let Ok(parsed) = json::parse(body) else {
        return invalid("body is not JSON");
    };
    let Some(peer) = parsed.get("peer").and_then(Json::as_str) else {
        return invalid("missing \"peer\" (host:port)");
    };
    let Some(Json::Array(items)) = parsed.get("keys") else {
        return invalid("missing \"keys\" array");
    };
    let mut keys = Vec::with_capacity(items.len());
    for item in items {
        let Some(key) = item.as_str().and_then(SiService::parse_job_id) else {
            return invalid("keys must be 16-hex-digit job keys");
        };
        keys.push(key);
    }
    let (pulled, failed) = service.warm_from_peer(peer, &keys);
    let body = Json::Object(vec![
        ("pulled".to_string(), Json::Number(pulled as f64)),
        ("failed".to_string(), Json::Number(failed as f64)),
    ])
    .to_string_compact();
    (200, body)
}

fn get_job(id: &str, service: &SiService) -> (u16, String) {
    let Some(key) = SiService::parse_job_id(id) else {
        let err = ServiceError::InvalidSpec("job ids are 16 hex digits".to_string());
        return (err.http_status(), error_body(&err));
    };
    match service.lookup(key) {
        Some((kind, Some(out))) => {
            let body = job_response_body(id, kind, true, &out).to_string_compact();
            (200, body)
        }
        // A key with a live single-flight leader is *running*, not
        // missing: answer 202 with a typed pending body so pollers can
        // tell "come back later" from "you never submitted this".
        // Streaming jobs enrich the body with per-chunk progress.
        Some((kind, None)) if service.in_flight(key) => {
            let mut pairs = vec![
                ("id".to_string(), Json::String(id.to_string())),
                ("kind".to_string(), Json::String(kind.to_string())),
                ("status".to_string(), Json::String("running".to_string())),
            ];
            if let Some((done, total)) = service.progress(key) {
                pairs.push(("chunks_done".to_string(), Json::Number(done as f64)));
                pairs.push(("chunks_total".to_string(), Json::Number(total as f64)));
            }
            (202, Json::Object(pairs).to_string_compact())
        }
        Some((kind, None)) => (
            404,
            Json::Object(vec![
                ("error".to_string(), Json::String("not_ready".to_string())),
                ("kind".to_string(), Json::String(kind.to_string())),
            ])
            .to_string_compact(),
        ),
        None => (
            404,
            r#"{"error":"not_found","message":"unknown job id"}"#.to_string(),
        ),
    }
}

/// A minimal blocking HTTP/1.1 client for tests and the load generator:
/// one request per call, `Connection: close`.
///
/// # Errors
///
/// Propagates socket errors; malformed responses yield
/// `io::ErrorKind::InvalidData`.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let (status, payload) = http_request_bytes(addr, method, path, body)?;
    let payload = String::from_utf8(payload).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 response body")
    })?;
    Ok((status, payload))
}

/// [`http_request`] without the UTF-8 assumption on the response body:
/// the warming path fetches raw `.sic` entries (`GET /v1/cache/:key`),
/// whose bytes are a checksummed binary format, not text.
///
/// # Errors
///
/// Propagates socket errors; malformed response framing yields
/// `io::ErrorKind::InvalidData`.
pub fn http_request_bytes(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: si-serve\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut response = Vec::new();
    BufReader::new(stream).read_to_end(&mut response)?;
    let bad = || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response");
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(bad)?;
    let head = std::str::from_utf8(&response[..split]).map_err(|_| bad())?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(bad)?;
    Ok((status, response[split + 4..].to_vec()))
}

/// Chaos-harness client fault: sends a request that *promises*
/// `body.len()` bytes but transmits only the first `sent_bytes` before
/// dropping the connection. The server must count a dropped-mid-request
/// connection and move on — no response is expected.
///
/// # Errors
///
/// Propagates connect/write errors (the deliberate drop itself is not an
/// error).
pub fn http_drop_mid_body(
    addr: SocketAddr,
    path: &str,
    body: &str,
    sent_bytes: usize,
) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    let partial = &body[..sent_bytes.min(body.len())];
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: si-serve\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{partial}",
        body.len()
    )?;
    stream.flush()?;
    // Dropping the stream here closes the socket mid-body.
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use std::io::BufRead;

    fn serve() -> HttpServer {
        serve_with(HttpConfig::default())
    }

    fn serve_with(config: HttpConfig) -> HttpServer {
        let service = Arc::new(SiService::new(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            ..ServiceConfig::default()
        }));
        HttpServer::bind_with("127.0.0.1:0", service, config).expect("bind loopback")
    }

    #[test]
    fn health_and_404() {
        let mut server = serve();
        let addr = server.local_addr();
        let (status, body) = http_request(addr, "GET", "/healthz", None).unwrap();
        assert_eq!((status, body.as_str()), (200, r#"{"status":"ok"}"#));
        let (status, _) = http_request(addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn post_then_get_round_trip() {
        let mut server = serve();
        let addr = server.local_addr();
        let spec = r#"{"kind":"delay_line_dc","stages":3,"bias_ua":20,"input_ua":1}"#;
        let (status, body) = http_request(addr, "POST", "/v1/jobs", Some(spec)).unwrap();
        assert_eq!(status, 200, "{body}");
        let parsed = json::parse(&body).unwrap();
        assert_eq!(parsed.get("cached"), Some(&Json::Bool(false)));
        let id = parsed.get("id").unwrap().as_str().unwrap().to_string();

        // Second POST of the same spec: served from cache.
        let (_, body2) = http_request(addr, "POST", "/v1/jobs", Some(spec)).unwrap();
        let parsed2 = json::parse(&body2).unwrap();
        assert_eq!(parsed2.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(parsed2.get("values"), parsed.get("values"));

        // GET by id finds the cached job.
        let (status, got) = http_request(addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
        assert_eq!(status, 200, "{got}");
        // Metrics reflect one miss and one hit, and carry the listener
        // section.
        let (_, metrics) = http_request(addr, "GET", "/metrics", None).unwrap();
        let m = json::parse(&metrics).unwrap();
        assert_eq!(
            m.get("cache").unwrap().get("hits").unwrap().as_f64(),
            Some(1.0)
        );
        assert!(m.get("http").is_some(), "metrics missing http section");
        server.shutdown();
    }

    /// ISSUE 6: a batch spec rides the same `POST /v1/jobs` wire — one
    /// submission, one id, per-scenario values concatenated in the body,
    /// and the batch counters visible in `/metrics`.
    #[test]
    fn batch_job_posts_as_one_submission() {
        let mut server = serve();
        let addr = server.local_addr();
        let spec =
            r#"{"kind":"delay_line_dc_batch","stages":3,"bias_ua":20,"inputs_ua":[0.5,1,2]}"#;
        let (status, body) = http_request(addr, "POST", "/v1/jobs", Some(spec)).unwrap();
        assert_eq!(status, 200, "{body}");
        let parsed = json::parse(&body).unwrap();
        assert_eq!(
            parsed.get("kind").unwrap().as_str(),
            Some("delay_line_dc_batch")
        );
        // 3 scenarios × 3 stage nodes, scenario-major.
        assert_eq!(parsed.get("n_values").unwrap().as_f64(), Some(9.0));
        let metrics = parsed.get("metrics").unwrap();
        assert_eq!(metrics.get("scenarios").unwrap().as_f64(), Some(3.0));
        assert_eq!(
            metrics.get("values_per_scenario").unwrap().as_f64(),
            Some(3.0)
        );
        let (_, m) = http_request(addr, "GET", "/metrics", None).unwrap();
        let m = json::parse(&m).unwrap();
        let service = m.get("service").unwrap();
        assert_eq!(service.get("batch_submitted").unwrap().as_f64(), Some(1.0));
        assert_eq!(service.get("batch_scenarios").unwrap().as_f64(), Some(3.0));
        server.shutdown();
    }

    /// ISSUE 10 satellite: polling a job whose single-flight leader is
    /// still computing answers `202 Accepted` with a typed pending body
    /// (with per-chunk progress for streams), not the `404` it used to
    /// share with never-submitted ids. Unknown ids still get `404`.
    #[test]
    fn polling_in_flight_job_gets_202_with_progress() {
        let service = Arc::new(SiService::new(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServiceConfig::default()
        }));
        // Stall every per-chunk fault draw 20 ms so the job is observably
        // in flight while we poll.
        service.install_fault_injector(Arc::new(crate::fault::FaultInjector::new(
            crate::fault::FaultPlan {
                seed: 0,
                panic_pm: 0,
                stall_pm: 1000,
                transient_pm: 0,
                drop_pm: 0,
                panic_mid_chunk_pm: 0,
                stall: Duration::from_millis(20),
                max_faults: u64::MAX,
            },
        )));
        let mut server =
            HttpServer::bind_with("127.0.0.1:0", Arc::clone(&service), HttpConfig::default())
                .expect("bind loopback");
        let addr = server.local_addr();
        let spec = JobSpec::TranStream {
            stages: 3,
            bias_ua: 20.0,
            input_ua: 2.0,
            steps: 900,
            dt_ns: 50.0,
            clock_hz: 2.0e6,
            chunk_steps: 128,
            seg_len: 256,
        };
        let id = SiService::job_id(&spec);
        let body = spec.to_json().to_string_compact();

        // Truly unknown key: 404 with the not_found body.
        let (status, missing) = http_request(addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
        assert_eq!(status, 404);
        assert!(missing.contains("not_found"), "{missing}");

        let poster = std::thread::spawn(move || {
            http_request(addr, "POST", "/v1/jobs", Some(&body)).unwrap()
        });
        let mut pending_with_progress = None;
        for _ in 0..2000 {
            let (status, got) = http_request(addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
            if status == 202 {
                let parsed = json::parse(&got).unwrap();
                assert_eq!(parsed.get("status").unwrap().as_str(), Some("running"));
                assert_eq!(parsed.get("kind").unwrap().as_str(), Some("tran_stream"));
                if parsed.get("chunks_total").is_some() {
                    pending_with_progress = Some(parsed);
                    break;
                }
            } else if status == 200 {
                break; // raced past completion without seeing progress
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let pending = pending_with_progress.expect("never observed a 202 with chunk progress");
        assert_eq!(pending.get("chunks_total").unwrap().as_f64(), Some(8.0));
        assert!(pending.get("chunks_done").unwrap().as_f64().unwrap() < 8.0);

        let (status, _) = poster.join().unwrap();
        assert_eq!(status, 200);
        // Done: polling now serves the finished job.
        let (status, done) = http_request(addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
        assert_eq!(status, 200, "{done}");
        server.shutdown();
    }

    #[test]
    fn invalid_bodies_get_400() {
        let mut server = serve();
        let addr = server.local_addr();
        let (status, _) = http_request(addr, "POST", "/v1/jobs", Some("not json")).unwrap();
        assert_eq!(status, 400);
        let (status, _) =
            http_request(addr, "POST", "/v1/jobs", Some(r#"{"kind":"mystery"}"#)).unwrap();
        assert_eq!(status, 400);
        let bad_range = r#"{"kind":"delay_line_dc","stages":0,"bias_ua":20,"input_ua":1}"#;
        let (status, _) = http_request(addr, "POST", "/v1/jobs", Some(bad_range)).unwrap();
        assert_eq!(status, 400);
        server.shutdown();
    }

    /// Writes `raw` verbatim and returns the status line's code, if any
    /// response arrives at all.
    fn raw_request(addr: SocketAddr, raw: &[u8]) -> Option<u16> {
        let mut stream = TcpStream::connect(addr).ok()?;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .ok()?;
        stream.write_all(raw).ok()?;
        stream.flush().ok()?;
        let mut response = String::new();
        BufReader::new(stream).read_to_string(&mut response).ok()?;
        response.split_whitespace().nth(1)?.parse().ok()
    }

    /// Regression (ISSUE 5): a POST with no `Content-Length` used to be
    /// parsed as a zero-length body; now it is a typed `400`.
    #[test]
    fn post_without_content_length_is_400() {
        let mut server = serve();
        let addr = server.local_addr();
        let status = raw_request(
            addr,
            b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, Some(400));
        assert_eq!(server.http_stats().bad_requests.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    /// Regression (ISSUE 5): garbage `Content-Length` used to be treated
    /// as zero; now it is a typed `400`.
    #[test]
    fn garbage_content_length_is_400() {
        let mut server = serve();
        let addr = server.local_addr();
        let status = raw_request(
            addr,
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: banana\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, Some(400));
        let status = raw_request(
            addr,
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: -3\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, Some(400));
        server.shutdown();
    }

    /// Regression (ISSUE 5): an oversized `Content-Length` used to close
    /// the socket silently; now it is a typed `413` sent before any body
    /// byte is read.
    #[test]
    fn oversized_body_is_413() {
        let mut server = serve_with(HttpConfig {
            max_body_bytes: 64,
            ..HttpConfig::default()
        });
        let addr = server.local_addr();
        let status = raw_request(
            addr,
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 1048576\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, Some(413));
        assert_eq!(server.http_stats().too_large.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    /// Regression (ISSUE 5): a slow client that never finishes its body
    /// gets a typed `408` when the read deadline expires.
    #[test]
    fn truncated_body_past_timeout_is_408() {
        let mut server = serve_with(HttpConfig {
            read_timeout: Duration::from_millis(100),
            ..HttpConfig::default()
        });
        let addr = server.local_addr();
        // Promise 100 bytes, send 5, keep the socket open.
        let status = raw_request(
            addr,
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 100\r\nConnection: close\r\n\r\nhello",
        );
        assert_eq!(status, Some(408));
        assert_eq!(server.http_stats().timeouts.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    /// ISSUE 8 satellite (slowloris): the read deadline is fixed when the
    /// request cycle starts. A client trickling header bytes — each gap
    /// well under the old per-read timeout — used to reset the timer
    /// every byte and hold its slot indefinitely; now it gets `408` when
    /// the fixed deadline lapses, while the drip is still in progress.
    #[test]
    fn slowloris_drip_hits_fixed_deadline() {
        let mut server = serve_with(HttpConfig {
            read_timeout: Duration::from_millis(300),
            ..HttpConfig::default()
        });
        let addr = server.local_addr();
        let started = Instant::now();
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Drip one byte every 25 ms from a second thread — far faster
        // than the 300 ms timeout, so a per-read timer would never fire.
        let drip = {
            let stream = stream.try_clone().unwrap();
            thread::spawn(move || {
                let raw = b"POST /v1/jobs HTTP/1.1\r\nX-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
                for byte in raw {
                    if (&stream).write_all(&[*byte]).is_err() {
                        return; // server closed on us: exactly the point
                    }
                    thread::sleep(Duration::from_millis(25));
                }
            })
        };
        let mut response = String::new();
        BufReader::new(&stream).read_to_string(&mut response).ok();
        let elapsed = started.elapsed();
        drip.join().unwrap();
        assert!(
            response.starts_with("HTTP/1.1 408"),
            "expected 408, got: {response:?}"
        );
        assert!(
            elapsed < Duration::from_millis(1600),
            "408 must arrive near the fixed deadline, took {elapsed:?}"
        );
        assert_eq!(server.http_stats().timeouts.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    /// ISSUE 8: one connection serves several requests back-to-back
    /// (keep-alive) and even pipelined ones, with no thread parked on it
    /// in between.
    #[test]
    fn keep_alive_and_pipelined_requests_share_one_connection() {
        let mut server = serve();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let read_one = |reader: &mut BufReader<TcpStream>| -> (u16, String) {
            let mut status_line = String::new();
            reader.read_line(&mut status_line).unwrap();
            let status: u16 = status_line
                .split_whitespace()
                .nth(1)
                .unwrap()
                .parse()
                .unwrap();
            let mut content_length = 0usize;
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                let line = line.trim_end();
                if line.is_empty() {
                    break;
                }
                if let Some((name, value)) = line.split_once(':') {
                    if name.eq_ignore_ascii_case("content-length") {
                        content_length = value.trim().parse().unwrap();
                    }
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).unwrap();
            (status, String::from_utf8(body).unwrap())
        };
        // Two sequential keep-alive requests.
        write!(stream, "GET /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n").unwrap();
        assert_eq!(read_one(&mut reader).0, 200);
        write!(stream, "GET /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n").unwrap();
        assert_eq!(read_one(&mut reader).0, 200);
        // Two pipelined in a single write.
        write!(
            stream,
            "GET /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\nGET /metrics HTTP/1.1\r\nContent-Length: 0\r\n\r\n"
        )
        .unwrap();
        assert_eq!(read_one(&mut reader).0, 200);
        let (status, metrics) = read_one(&mut reader);
        assert_eq!(status, 200);
        // All four responses rode one accepted connection.
        let m = json::parse(&metrics).unwrap();
        assert_eq!(
            m.get("http").unwrap().get("accepted").unwrap().as_f64(),
            Some(1.0)
        );
        server.shutdown();
    }

    /// ISSUE 8: idle keep-alive connections are visible as gauges — a
    /// poll-set slot each, not a thread each.
    #[test]
    fn idle_keepalive_connections_are_gauged() {
        let mut server = serve_with(HttpConfig {
            read_timeout: Duration::from_secs(60),
            ..HttpConfig::default()
        });
        let addr = server.local_addr();
        // Three clients each complete one request and then sit idle.
        let mut idlers = Vec::new();
        for _ in 0..3 {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            write!(stream, "GET /healthz HTTP/1.1\r\nContent-Length: 0\r\n\r\n").unwrap();
            let mut first = [0u8; 12];
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            reader.read_exact(&mut first).unwrap(); // "HTTP/1.1 200"
            idlers.push((stream, reader));
        }
        // Poll metrics until the gauges settle.
        let deadline = Instant::now() + Duration::from_secs(10);
        let (mut open, mut idle) = (0.0, 0.0);
        while Instant::now() < deadline {
            let (_, metrics) = http_request(addr, "GET", "/metrics", None).unwrap();
            let m = json::parse(&metrics).unwrap();
            let http = m.get("http").unwrap();
            open = http.get("open_connections").unwrap().as_f64().unwrap();
            idle = http.get("idle_keepalive").unwrap().as_f64().unwrap();
            if idle >= 3.0 {
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        assert!(idle >= 3.0, "idle_keepalive gauge stuck at {idle}");
        assert!(open >= 3.0, "open_connections gauge stuck at {open}");
        drop(idlers);
        server.shutdown();
    }

    /// Regression (ISSUE 5): a client dropping its connection mid-body is
    /// counted and cleaned up, never wedging a worker.
    #[test]
    fn dropped_mid_body_is_counted() {
        let mut server = serve();
        let addr = server.local_addr();
        let body = r#"{"kind":"delay_line_dc","stages":3,"bias_ua":20,"input_ua":1}"#;
        http_drop_mid_body(addr, "/v1/jobs", body, body.len() / 2).unwrap();
        // The drop is asynchronous; poll the counter briefly.
        let mut dropped = 0;
        for _ in 0..200 {
            dropped = server
                .http_stats()
                .dropped_mid_request
                .load(Ordering::Relaxed);
            if dropped > 0 {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(dropped, 1);
        // The server still answers.
        let (status, _) = http_request(addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    /// Regression (ISSUE 5): connections beyond the cap are shed with
    /// `503` + `Retry-After` instead of occupying poll slots unboundedly.
    #[test]
    fn connection_cap_sheds_with_503() {
        let mut server = serve_with(HttpConfig {
            max_connections: 1,
            retry_after_secs: 7,
            // Keep the held connection parked (and its slot occupied)
            // for the whole probing window.
            read_timeout: Duration::from_secs(120),
            ..HttpConfig::default()
        });
        let addr = server.local_addr();
        // Hold one connection open (no request yet) to occupy the cap,
        // and wait until the loop has registered it.
        let held = TcpStream::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.http_stats().accepted.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < deadline, "held connection never accepted");
            thread::sleep(Duration::from_millis(5));
        }
        // Generous fresh deadline: under a fully loaded test machine the
        // loop can be starved for seconds at a time.
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut shed = None;
        while Instant::now() < deadline {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap();
            let mut response = String::new();
            if BufReader::new(stream).read_to_string(&mut response).is_ok() {
                if let Some(code) = response.split_whitespace().nth(1) {
                    if code == "503" {
                        assert!(
                            response.contains("Retry-After: 7"),
                            "503 without Retry-After: {response}"
                        );
                        shed = Some(());
                        break;
                    }
                }
            }
            thread::sleep(Duration::from_millis(10));
        }
        assert!(shed.is_some(), "cap of 1 never shed a connection");
        assert!(server.http_stats().shed_connections.load(Ordering::Relaxed) >= 1);
        drop(held);
        server.shutdown();
    }

    /// ISSUE 9 satellite: `/healthz` is liveness, `/readyz` is readiness.
    /// Draining the pool flips `/readyz` to 503 while `/healthz` (and the
    /// event loop) stay up — exactly the split the router probes on.
    #[test]
    fn readyz_splits_from_healthz() {
        let service = Arc::new(SiService::new(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            ..ServiceConfig::default()
        }));
        let mut server =
            HttpServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind loopback");
        let addr = server.local_addr();
        let (status, body) = http_request(addr, "GET", "/readyz", None).unwrap();
        assert_eq!(status, 200, "{body}");
        let parsed = json::parse(&body).unwrap();
        assert_eq!(parsed.get("ready"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("pool_admitting"), Some(&Json::Bool(true)));

        // Drain the pool only: the process (and loop) are still alive.
        service.shutdown();
        let (status, _) = http_request(addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200, "liveness must survive a drained pool");
        let (status, body) = http_request(addr, "GET", "/readyz", None).unwrap();
        assert_eq!(status, 503, "{body}");
        let parsed = json::parse(&body).unwrap();
        assert_eq!(parsed.get("ready"), Some(&Json::Bool(false)));
        assert_eq!(parsed.get("pool_admitting"), Some(&Json::Bool(false)));
        server.shutdown();
    }

    fn serve_with_disk(tag: &str) -> (HttpServer, Arc<SiService>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "si-http-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let service = Arc::new(SiService::new(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            cache_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        }));
        let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind loopback");
        (server, service, dir)
    }

    /// Waits until the write-through to the disk tier has landed (workers
    /// persist after replying, so a probe can race the write).
    fn wait_disk_writes(service: &SiService, want: f64) {
        for _ in 0..400 {
            let m = service.metrics();
            let writes = m
                .get("cache")
                .unwrap()
                .get("disk_writes")
                .unwrap()
                .as_f64()
                .unwrap();
            if writes >= want {
                return;
            }
            thread::sleep(Duration::from_millis(5));
        }
        panic!("disk write never landed");
    }

    /// ISSUE 9 satellite: `GET /v1/cache/:key` serves only
    /// checksummed-valid entries. Valid → 200 octet-stream with the raw
    /// `.sic` bytes; corrupt → 404 with `corrupt_evicted` counted and the
    /// file quarantined; bogus key → 400; absent → 404.
    #[test]
    fn cache_endpoint_serves_only_checksummed_valid_entries() {
        let (mut server, service, dir) = serve_with_disk("valid");
        let addr = server.local_addr();
        let spec = r#"{"kind":"delay_line_dc","stages":3,"bias_ua":20,"input_ua":1}"#;
        let (status, body) = http_request(addr, "POST", "/v1/jobs", Some(spec)).unwrap();
        assert_eq!(status, 200, "{body}");
        let id = json::parse(&body)
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        wait_disk_writes(&service, 1.0);

        // Valid entry: raw bytes, identical to the on-disk file.
        let (status, bytes) =
            http_request_bytes(addr, "GET", &format!("/v1/cache/{id}"), None).unwrap();
        assert_eq!(status, 200);
        let on_disk = std::fs::read(dir.join(format!("{id}.sic"))).unwrap();
        assert_eq!(bytes, on_disk, "endpoint must ship the exact .sic bytes");

        // Bogus key shape → 400; absent key → 404.
        let (status, _) = http_request(addr, "GET", "/v1/cache/nope", None).unwrap();
        assert_eq!(status, 400);
        let (status, _) = http_request(addr, "GET", "/v1/cache/00000000000000ff", None).unwrap();
        assert_eq!(status, 404);

        // Corrupt the entry: the endpoint must refuse and quarantine.
        let path = dir.join(format!("{id}.sic"));
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x20;
        std::fs::write(&path, &raw).unwrap();
        let (status, _) = http_request(addr, "GET", &format!("/v1/cache/{id}"), None).unwrap();
        assert_eq!(status, 404, "corrupt entries must never be served");
        assert!(!path.exists(), "corrupt entry must be quarantined");
        let m = service.metrics();
        assert_eq!(
            m.get("cache")
                .unwrap()
                .get("corrupt_evicted")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// ISSUE 9: `POST /v1/warm` pulls entries from a peer replica's cache
    /// endpoint into this replica's disk tier, after which the warmed
    /// replica serves them as cache hits bit-identical to the peer's.
    #[test]
    fn warm_endpoint_pulls_entries_from_peer() {
        let (mut peer_srv, peer_svc, peer_dir) = serve_with_disk("warm-peer");
        let (mut repl_srv, repl_svc, repl_dir) = serve_with_disk("warm-repl");
        let peer_addr = peer_srv.local_addr();
        let repl_addr = repl_srv.local_addr();

        let spec = r#"{"kind":"delay_line_dc","stages":4,"bias_ua":20,"input_ua":1.5}"#;
        let (status, body) = http_request(peer_addr, "POST", "/v1/jobs", Some(spec)).unwrap();
        assert_eq!(status, 200, "{body}");
        let peer_resp = json::parse(&body).unwrap();
        let id = peer_resp.get("id").unwrap().as_str().unwrap().to_string();
        wait_disk_writes(&peer_svc, 1.0);

        // Warm the replica: one real key plus one the peer doesn't have.
        let warm = format!(r#"{{"peer":"{peer_addr}","keys":["{id}","00000000000000aa"]}}"#);
        let (status, body) = http_request(repl_addr, "POST", "/v1/warm", Some(&warm)).unwrap();
        assert_eq!(status, 200, "{body}");
        let parsed = json::parse(&body).unwrap();
        assert_eq!(parsed.get("pulled").unwrap().as_f64(), Some(1.0));
        assert_eq!(parsed.get("failed").unwrap().as_f64(), Some(1.0));

        // The replica now answers the job from its own disk tier — no
        // solve, values bit-identical to the peer's response.
        let (status, body) = http_request(repl_addr, "POST", "/v1/jobs", Some(spec)).unwrap();
        assert_eq!(status, 200, "{body}");
        let repl_resp = json::parse(&body).unwrap();
        assert_eq!(repl_resp.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(repl_resp.get("values"), peer_resp.get("values"));
        let m = repl_svc.metrics();
        assert_eq!(
            m.get("service")
                .unwrap()
                .get("warm_pulled")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert_eq!(
            m.get("cache").unwrap().get("disk_hits").unwrap().as_f64(),
            Some(1.0)
        );
        repl_srv.shutdown();
        peer_srv.shutdown();
        let _ = std::fs::remove_dir_all(&peer_dir);
        let _ = std::fs::remove_dir_all(&repl_dir);
    }

    /// Regression (ISSUE 5): `shutdown()` returns promptly — the wake
    /// pipe interrupts the poll wait instead of waiting out a tick.
    #[test]
    fn shutdown_is_prompt() {
        let mut server = serve();
        let started = Instant::now();
        server.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "shutdown took {:?}",
            started.elapsed()
        );
        // Idempotent.
        server.shutdown();
    }
}
