//! A hand-rolled HTTP/1.1 front end over `std::net::TcpListener`.
//!
//! The build environment carries no network crates, and the service's
//! needs are narrow: small JSON bodies, `Content-Length` framing,
//! keep-alive, four routes. A thread per connection is plenty — real
//! concurrency control lives in the worker pool behind the service, not
//! in the listener — but the listener is still **bounded and hardened**:
//!
//! - a global connection cap ([`HttpConfig::max_connections`]); excess
//!   connections are shed immediately with `503` + `Retry-After` instead
//!   of spawning threads without bound,
//! - per-connection read *and* write timeouts, so a stalled peer cannot
//!   pin a connection thread forever (slow requests get a typed `408`),
//! - a body-size cap enforced **before** the body is read; oversized
//!   `Content-Length` gets a typed `413`,
//! - malformed framing (missing or garbage `Content-Length` on a POST,
//!   a non-UTF-8 body, a garbled request line) gets a typed `400`
//!   instead of a silent hang-up,
//! - the accept loop polls a nonblocking listener, so
//!   [`HttpServer::shutdown`] never needs the old dial-yourself trick to
//!   unblock it (which could hang when the listener was unreachable).
//!
//! Routes:
//!
//! | Method | Path           | Behavior                                    |
//! |--------|----------------|---------------------------------------------|
//! | POST   | `/v1/jobs`     | Run (or fetch) a job; blocks until done     |
//! | GET    | `/v1/jobs/:id` | Non-blocking lookup of a finished job       |
//! | GET    | `/metrics`     | Service / cache / pool / engine / http      |
//! | GET    | `/healthz`     | Liveness probe                              |
//!
//! `POST /v1/jobs` accepts an optional `"timeout_ms"` field beside the
//! spec; admission-control rejections surface as `503` with `Retry-After`
//! and a JSON error body, deadline misses as `504`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::error::ServiceError;
use crate::jobspec::JobSpec;
use crate::json::{self, Json};
use crate::service::{job_response_body, SiService};

const MAX_HEADER_LINES: usize = 100;
/// How long the accept loop sleeps between polls of the nonblocking
/// listener (also the shutdown-latency bound).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Listener hardening knobs. The defaults suit tests and small
/// deployments; `si_serve` exposes each as a flag.
#[derive(Debug, Clone, Copy)]
pub struct HttpConfig {
    /// Per-connection read timeout (request line, headers, and body);
    /// expiry yields a typed `408`.
    pub read_timeout: Duration,
    /// Per-connection write timeout; a peer that stops draining its
    /// socket gets disconnected instead of pinning the thread.
    pub write_timeout: Duration,
    /// Largest accepted request body; a bigger `Content-Length` is
    /// rejected with `413` before any body byte is read.
    pub max_body_bytes: usize,
    /// Concurrent-connection cap; excess connections are shed with `503`
    /// + `Retry-After` without spawning a thread.
    pub max_connections: usize,
    /// The `Retry-After` value (seconds) sent with every `503`.
    pub retry_after_secs: u64,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_body_bytes: 1 << 20,
            max_connections: 256,
            retry_after_secs: 1,
        }
    }
}

/// Listener-level counters, surfaced as the `"http"` section of
/// `/metrics`.
#[derive(Debug, Default)]
pub struct HttpStats {
    /// Connections accepted and served.
    pub accepted: AtomicU64,
    /// Connections shed at the cap with `503`.
    pub shed_connections: AtomicU64,
    /// Requests rejected with `400` (malformed framing or body).
    pub bad_requests: AtomicU64,
    /// Requests rejected with `413` (body over the cap).
    pub too_large: AtomicU64,
    /// Requests that timed out mid-read (`408`).
    pub timeouts: AtomicU64,
    /// Connections the peer dropped mid-request (truncated body or
    /// vanished before the response was written).
    pub dropped_mid_request: AtomicU64,
    /// Responses successfully written.
    pub responses: AtomicU64,
}

impl HttpStats {
    fn to_json(&self) -> Json {
        let num = |v: &AtomicU64| Json::Number(v.load(Ordering::Relaxed) as f64);
        Json::Object(vec![
            ("accepted".to_string(), num(&self.accepted)),
            ("shed_connections".to_string(), num(&self.shed_connections)),
            ("bad_requests".to_string(), num(&self.bad_requests)),
            ("too_large".to_string(), num(&self.too_large)),
            ("timeouts".to_string(), num(&self.timeouts)),
            (
                "dropped_mid_request".to_string(),
                num(&self.dropped_mid_request),
            ),
            ("responses".to_string(), num(&self.responses)),
        ])
    }
}

/// Everything one connection thread needs.
struct ConnCtx {
    service: Arc<SiService>,
    stats: Arc<HttpStats>,
    config: HttpConfig,
    active: Arc<AtomicUsize>,
}

/// Decrements the active-connection count when a connection thread
/// exits, however it exits.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running HTTP server bound to a local address.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    service: Arc<SiService>,
    stats: Arc<HttpStats>,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) with the default
    /// [`HttpConfig`] and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, service: Arc<SiService>) -> std::io::Result<HttpServer> {
        HttpServer::bind_with(addr, service, HttpConfig::default())
    }

    /// [`HttpServer::bind`] with explicit listener hardening knobs.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_with(
        addr: &str,
        service: Arc<SiService>,
        config: HttpConfig,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        // Nonblocking so the accept loop can observe the stop flag
        // without being woken by a connection.
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(HttpStats::default());
        let active = Arc::new(AtomicUsize::new(0));
        let accept_stop = Arc::clone(&stop);
        let accept_service = Arc::clone(&service);
        let accept_stats = Arc::clone(&stats);
        let accept_thread = thread::Builder::new()
            .name("si-http-accept".to_string())
            .spawn(move || {
                accept_loop(
                    &listener,
                    &accept_stop,
                    &accept_service,
                    &accept_stats,
                    &active,
                    config,
                );
            })?;
        Ok(HttpServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
            service,
            stats,
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Listener counter snapshot (shared with the accept loop).
    #[must_use]
    pub fn http_stats(&self) -> &HttpStats {
        &self.stats
    }

    /// Stops accepting connections and drains the service workers.
    /// In-flight solves finish; new submissions are rejected.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.service.shutdown();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    service: &Arc<SiService>,
    stats: &Arc<HttpStats>,
    active: &Arc<AtomicUsize>,
    config: HttpConfig,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
                continue;
            }
            Err(_) => continue,
        };
        // Accepted sockets may inherit the listener's nonblocking mode;
        // connection threads want plain blocking reads with timeouts.
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        let _ = stream.set_read_timeout(Some(config.read_timeout));
        let _ = stream.set_write_timeout(Some(config.write_timeout));

        // Global connection cap: shed *before* spawning a thread.
        if active.fetch_add(1, Ordering::SeqCst) >= config.max_connections {
            active.fetch_sub(1, Ordering::SeqCst);
            stats.shed_connections.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let err = ServiceError::Overloaded {
                queue_capacity: config.max_connections,
            };
            let _ = write_response(
                &mut stream,
                503,
                &error_body(&err),
                false,
                Some(config.retry_after_secs),
            );
            continue;
        }
        stats.accepted.fetch_add(1, Ordering::Relaxed);
        let ctx = ConnCtx {
            service: Arc::clone(service),
            stats: Arc::clone(stats),
            config,
            active: Arc::clone(active),
        };
        let spawned = thread::Builder::new()
            .name("si-http-conn".to_string())
            .spawn(move || {
                let _guard = ConnGuard(Arc::clone(&ctx.active));
                handle_connection(stream, &ctx);
            });
        if spawned.is_err() {
            active.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

struct Request {
    method: String,
    path: String,
    body: String,
    keep_alive: bool,
}

/// What one attempt to read a request produced.
enum ReadOutcome {
    /// A well-formed request.
    Request(Request),
    /// Clean EOF between requests — the peer is done.
    Closed,
    /// The peer vanished mid-request (truncated body, reset).
    Dropped,
    /// The read timeout expired → `408`.
    TimedOut,
    /// Broken framing or body → `400` with this message.
    Bad(String),
    /// `Content-Length` over the cap → `413`.
    TooLarge,
}

fn handle_connection(stream: TcpStream, ctx: &ConnCtx) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    loop {
        let (status, body, keep_alive) = match read_request(&mut reader, ctx.config.max_body_bytes)
        {
            ReadOutcome::Request(request) => {
                let keep_alive = request.keep_alive;
                let (status, body) = route(&request, ctx);
                (status, body, keep_alive)
            }
            ReadOutcome::Closed => return,
            ReadOutcome::Dropped => {
                ctx.stats
                    .dropped_mid_request
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
            ReadOutcome::TimedOut => {
                ctx.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                let err = ServiceError::InvalidSpec("request not received in time".to_string());
                (408, error_body(&err), false)
            }
            ReadOutcome::Bad(msg) => {
                ctx.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                let err = ServiceError::InvalidSpec(msg);
                // Framing is unreliable after a parse failure: close.
                (400, error_body(&err), false)
            }
            ReadOutcome::TooLarge => {
                ctx.stats.too_large.fetch_add(1, Ordering::Relaxed);
                let err = ServiceError::InvalidSpec(format!(
                    "request body exceeds {} bytes",
                    ctx.config.max_body_bytes
                ));
                // The unread body is still in the pipe: close.
                (413, error_body(&err), false)
            }
        };
        let retry_after = (status == 503).then_some(ctx.config.retry_after_secs);
        match write_response(&mut stream, status, &body, keep_alive, retry_after) {
            Ok(()) => {
                ctx.stats.responses.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                ctx.stats
                    .dropped_mid_request
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        if !keep_alive {
            return;
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn read_request(reader: &mut BufReader<TcpStream>, max_body_bytes: usize) -> ReadOutcome {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return ReadOutcome::Closed,
        Ok(_) => {}
        Err(e) if is_timeout(&e) => return ReadOutcome::TimedOut,
        // Non-UTF-8 garbage on the wire surfaces as InvalidData here.
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            return ReadOutcome::Bad("request line is not valid UTF-8".to_string())
        }
        Err(_) => return ReadOutcome::Dropped,
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return ReadOutcome::Bad("malformed request line".to_string());
    };
    let method = method.to_string();
    let path = path.to_string();

    let mut content_length: Option<Result<usize, ()>> = None;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut terminated = false;
    for _ in 0..MAX_HEADER_LINES {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => return ReadOutcome::Dropped,
            Ok(_) => {}
            Err(e) if is_timeout(&e) => return ReadOutcome::TimedOut,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                return ReadOutcome::Bad("header is not valid UTF-8".to_string())
            }
            Err(_) => return ReadOutcome::Dropped,
        }
        let header = header.trim_end();
        if header.is_empty() {
            terminated = true;
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = Some(value.parse::<usize>().map_err(|_| ()));
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if !terminated {
        return ReadOutcome::Bad(format!("more than {MAX_HEADER_LINES} header lines"));
    }
    let content_length = match content_length {
        // Methods that carry a body must declare its length; without it
        // the framing of everything after is guesswork.
        None if method == "POST" || method == "PUT" => {
            return ReadOutcome::Bad("POST requires a Content-Length header".to_string())
        }
        None => 0,
        Some(Err(())) => {
            return ReadOutcome::Bad("Content-Length is not a non-negative integer".to_string())
        }
        Some(Ok(n)) => n,
    };
    if content_length > max_body_bytes {
        return ReadOutcome::TooLarge;
    }
    let mut body = vec![0u8; content_length];
    match reader.read_exact(&mut body) {
        Ok(()) => {}
        Err(e) if is_timeout(&e) => return ReadOutcome::TimedOut,
        // Fewer body bytes than promised: the peer hung up mid-body.
        Err(_) => return ReadOutcome::Dropped,
    }
    let Ok(body) = String::from_utf8(body) else {
        return ReadOutcome::Bad("request body is not valid UTF-8".to_string());
    };
    ReadOutcome::Request(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after_secs: Option<u64>,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        499 => "Client Closed Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let retry_after = retry_after_secs
        .map(|s| format!("Retry-After: {s}\r\n"))
        .unwrap_or_default();
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{retry_after}Connection: {connection}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

fn error_body(err: &ServiceError) -> String {
    Json::Object(vec![
        ("error".to_string(), Json::String(err.code().to_string())),
        ("message".to_string(), Json::String(err.to_string())),
    ])
    .to_string_compact()
}

fn route(request: &Request, ctx: &ConnCtx) -> (u16, String) {
    let service = ctx.service.as_ref();
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/jobs") => post_job(&request.body, service),
        ("GET", "/metrics") => (200, metrics_with_http(ctx)),
        ("GET", "/healthz") => (200, r#"{"status":"ok"}"#.to_string()),
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            get_job(&path["/v1/jobs/".len()..], service)
        }
        ("POST" | "GET", _) => (
            404,
            r#"{"error":"not_found","message":"unknown route"}"#.to_string(),
        ),
        _ => (
            405,
            r#"{"error":"method_not_allowed","message":"use GET or POST"}"#.to_string(),
        ),
    }
}

/// The service `/metrics` document with the listener's `"http"` section
/// appended.
fn metrics_with_http(ctx: &ConnCtx) -> String {
    let mut doc = ctx.service.metrics();
    if let Json::Object(pairs) = &mut doc {
        pairs.push(("http".to_string(), ctx.stats.to_json()));
    }
    doc.to_string_compact()
}

fn post_job(body: &str, service: &SiService) -> (u16, String) {
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(msg) => {
            let err = ServiceError::InvalidSpec(format!("body is not JSON: {msg}"));
            return (err.http_status(), error_body(&err));
        }
    };
    let spec = match JobSpec::from_json(&parsed) {
        Ok(s) => s,
        Err(err) => return (err.http_status(), error_body(&err)),
    };
    let deadline = parsed
        .get("timeout_ms")
        .and_then(Json::as_f64)
        .filter(|ms| *ms > 0.0)
        .map(|ms| Duration::from_secs_f64(ms / 1000.0));
    match service.submit_blocking(&spec, deadline) {
        Ok((out, cached)) => {
            let id = SiService::job_id(&spec);
            let body = job_response_body(&id, spec.kind(), cached, &out).to_string_compact();
            (200, body)
        }
        Err(err) => (err.http_status(), error_body(&err)),
    }
}

fn get_job(id: &str, service: &SiService) -> (u16, String) {
    let Some(key) = SiService::parse_job_id(id) else {
        let err = ServiceError::InvalidSpec("job ids are 16 hex digits".to_string());
        return (err.http_status(), error_body(&err));
    };
    match service.lookup(key) {
        Some((kind, Some(out))) => {
            let body = job_response_body(id, kind, true, &out).to_string_compact();
            (200, body)
        }
        Some((kind, None)) => (
            404,
            Json::Object(vec![
                ("error".to_string(), Json::String("not_ready".to_string())),
                ("kind".to_string(), Json::String(kind.to_string())),
            ])
            .to_string_compact(),
        ),
        None => (
            404,
            r#"{"error":"not_found","message":"unknown job id"}"#.to_string(),
        ),
    }
}

/// A minimal blocking HTTP/1.1 client for tests and the load generator:
/// one request per call, `Connection: close`.
///
/// # Errors
///
/// Propagates socket errors; malformed responses yield
/// `io::ErrorKind::InvalidData`.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: si-serve\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response)?;
    let bad = || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response");
    let (head, payload) = response.split_once("\r\n\r\n").ok_or_else(bad)?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(bad)?;
    Ok((status, payload.to_string()))
}

/// Chaos-harness client fault: sends a request that *promises*
/// `body.len()` bytes but transmits only the first `sent_bytes` before
/// dropping the connection. The server must count a dropped-mid-request
/// connection and move on — no response is expected.
///
/// # Errors
///
/// Propagates connect/write errors (the deliberate drop itself is not an
/// error).
pub fn http_drop_mid_body(
    addr: SocketAddr,
    path: &str,
    body: &str,
    sent_bytes: usize,
) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    let partial = &body[..sent_bytes.min(body.len())];
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: si-serve\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{partial}",
        body.len()
    )?;
    stream.flush()?;
    // Dropping the stream here closes the socket mid-body.
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    fn serve() -> HttpServer {
        serve_with(HttpConfig::default())
    }

    fn serve_with(config: HttpConfig) -> HttpServer {
        let service = Arc::new(SiService::new(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            ..ServiceConfig::default()
        }));
        HttpServer::bind_with("127.0.0.1:0", service, config).expect("bind loopback")
    }

    #[test]
    fn health_and_404() {
        let mut server = serve();
        let addr = server.local_addr();
        let (status, body) = http_request(addr, "GET", "/healthz", None).unwrap();
        assert_eq!((status, body.as_str()), (200, r#"{"status":"ok"}"#));
        let (status, _) = http_request(addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn post_then_get_round_trip() {
        let mut server = serve();
        let addr = server.local_addr();
        let spec = r#"{"kind":"delay_line_dc","stages":3,"bias_ua":20,"input_ua":1}"#;
        let (status, body) = http_request(addr, "POST", "/v1/jobs", Some(spec)).unwrap();
        assert_eq!(status, 200, "{body}");
        let parsed = json::parse(&body).unwrap();
        assert_eq!(parsed.get("cached"), Some(&Json::Bool(false)));
        let id = parsed.get("id").unwrap().as_str().unwrap().to_string();

        // Second POST of the same spec: served from cache.
        let (_, body2) = http_request(addr, "POST", "/v1/jobs", Some(spec)).unwrap();
        let parsed2 = json::parse(&body2).unwrap();
        assert_eq!(parsed2.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(parsed2.get("values"), parsed.get("values"));

        // GET by id finds the cached job.
        let (status, got) = http_request(addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
        assert_eq!(status, 200, "{got}");
        // Metrics reflect one miss and one hit, and carry the listener
        // section.
        let (_, metrics) = http_request(addr, "GET", "/metrics", None).unwrap();
        let m = json::parse(&metrics).unwrap();
        assert_eq!(
            m.get("cache").unwrap().get("hits").unwrap().as_f64(),
            Some(1.0)
        );
        assert!(m.get("http").is_some(), "metrics missing http section");
        server.shutdown();
    }

    /// ISSUE 6: a batch spec rides the same `POST /v1/jobs` wire — one
    /// submission, one id, per-scenario values concatenated in the body,
    /// and the batch counters visible in `/metrics`.
    #[test]
    fn batch_job_posts_as_one_submission() {
        let mut server = serve();
        let addr = server.local_addr();
        let spec =
            r#"{"kind":"delay_line_dc_batch","stages":3,"bias_ua":20,"inputs_ua":[0.5,1,2]}"#;
        let (status, body) = http_request(addr, "POST", "/v1/jobs", Some(spec)).unwrap();
        assert_eq!(status, 200, "{body}");
        let parsed = json::parse(&body).unwrap();
        assert_eq!(
            parsed.get("kind").unwrap().as_str(),
            Some("delay_line_dc_batch")
        );
        // 3 scenarios × 3 stage nodes, scenario-major.
        assert_eq!(parsed.get("n_values").unwrap().as_f64(), Some(9.0));
        let metrics = parsed.get("metrics").unwrap();
        assert_eq!(metrics.get("scenarios").unwrap().as_f64(), Some(3.0));
        assert_eq!(
            metrics.get("values_per_scenario").unwrap().as_f64(),
            Some(3.0)
        );
        let (_, m) = http_request(addr, "GET", "/metrics", None).unwrap();
        let m = json::parse(&m).unwrap();
        let service = m.get("service").unwrap();
        assert_eq!(service.get("batch_submitted").unwrap().as_f64(), Some(1.0));
        assert_eq!(service.get("batch_scenarios").unwrap().as_f64(), Some(3.0));
        server.shutdown();
    }

    #[test]
    fn invalid_bodies_get_400() {
        let mut server = serve();
        let addr = server.local_addr();
        let (status, _) = http_request(addr, "POST", "/v1/jobs", Some("not json")).unwrap();
        assert_eq!(status, 400);
        let (status, _) =
            http_request(addr, "POST", "/v1/jobs", Some(r#"{"kind":"mystery"}"#)).unwrap();
        assert_eq!(status, 400);
        let bad_range = r#"{"kind":"delay_line_dc","stages":0,"bias_ua":20,"input_ua":1}"#;
        let (status, _) = http_request(addr, "POST", "/v1/jobs", Some(bad_range)).unwrap();
        assert_eq!(status, 400);
        server.shutdown();
    }

    /// Writes `raw` verbatim and returns the status line's code, if any
    /// response arrives at all.
    fn raw_request(addr: SocketAddr, raw: &[u8]) -> Option<u16> {
        let mut stream = TcpStream::connect(addr).ok()?;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .ok()?;
        stream.write_all(raw).ok()?;
        stream.flush().ok()?;
        let mut response = String::new();
        BufReader::new(stream).read_to_string(&mut response).ok()?;
        response.split_whitespace().nth(1)?.parse().ok()
    }

    /// Regression (ISSUE 5): a POST with no `Content-Length` used to be
    /// parsed as a zero-length body; now it is a typed `400`.
    #[test]
    fn post_without_content_length_is_400() {
        let mut server = serve();
        let addr = server.local_addr();
        let status = raw_request(
            addr,
            b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, Some(400));
        assert_eq!(server.http_stats().bad_requests.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    /// Regression (ISSUE 5): garbage `Content-Length` used to be treated
    /// as zero; now it is a typed `400`.
    #[test]
    fn garbage_content_length_is_400() {
        let mut server = serve();
        let addr = server.local_addr();
        let status = raw_request(
            addr,
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: banana\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, Some(400));
        let status = raw_request(
            addr,
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: -3\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, Some(400));
        server.shutdown();
    }

    /// Regression (ISSUE 5): an oversized `Content-Length` used to close
    /// the socket silently; now it is a typed `413` sent before any body
    /// byte is read.
    #[test]
    fn oversized_body_is_413() {
        let mut server = serve_with(HttpConfig {
            max_body_bytes: 64,
            ..HttpConfig::default()
        });
        let addr = server.local_addr();
        let status = raw_request(
            addr,
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 1048576\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, Some(413));
        assert_eq!(server.http_stats().too_large.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    /// Regression (ISSUE 5): a slow client that never finishes its body
    /// gets a typed `408` when the read timeout expires, instead of
    /// pinning the connection thread for the 30 s default.
    #[test]
    fn truncated_body_past_timeout_is_408() {
        let mut server = serve_with(HttpConfig {
            read_timeout: Duration::from_millis(100),
            ..HttpConfig::default()
        });
        let addr = server.local_addr();
        // Promise 100 bytes, send 5, keep the socket open.
        let status = raw_request(
            addr,
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 100\r\nConnection: close\r\n\r\nhello",
        );
        assert_eq!(status, Some(408));
        assert_eq!(server.http_stats().timeouts.load(Ordering::Relaxed), 1);
        server.shutdown();
    }

    /// Regression (ISSUE 5): a client dropping its connection mid-body is
    /// counted and cleaned up, never wedging a worker.
    #[test]
    fn dropped_mid_body_is_counted() {
        let mut server = serve();
        let addr = server.local_addr();
        let body = r#"{"kind":"delay_line_dc","stages":3,"bias_ua":20,"input_ua":1}"#;
        http_drop_mid_body(addr, "/v1/jobs", body, body.len() / 2).unwrap();
        // The drop is asynchronous; poll the counter briefly.
        let mut dropped = 0;
        for _ in 0..200 {
            dropped = server
                .http_stats()
                .dropped_mid_request
                .load(Ordering::Relaxed);
            if dropped > 0 {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(dropped, 1);
        // The server still answers.
        let (status, _) = http_request(addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    /// Regression (ISSUE 5): connections beyond the cap are shed with
    /// `503` + `Retry-After` instead of spawning unbounded threads.
    #[test]
    fn connection_cap_sheds_with_503() {
        let mut server = serve_with(HttpConfig {
            max_connections: 1,
            retry_after_secs: 7,
            // Keep the held connection's handler parked (and its slot
            // occupied) for the whole probing window.
            read_timeout: Duration::from_secs(120),
            ..HttpConfig::default()
        });
        let addr = server.local_addr();
        // Hold one connection open (no request yet) to occupy the cap,
        // and wait until the accept loop has registered it.
        let held = TcpStream::connect(addr).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while server.http_stats().accepted.load(Ordering::Relaxed) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "held connection never accepted"
            );
            thread::sleep(Duration::from_millis(5));
        }
        // Generous fresh deadline: under a fully loaded test machine the
        // accept loop can be starved for seconds at a time.
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        let mut shed = None;
        while std::time::Instant::now() < deadline {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap();
            let mut response = String::new();
            if BufReader::new(stream).read_to_string(&mut response).is_ok() {
                if let Some(code) = response.split_whitespace().nth(1) {
                    if code == "503" {
                        assert!(
                            response.contains("Retry-After: 7"),
                            "503 without Retry-After: {response}"
                        );
                        shed = Some(());
                        break;
                    }
                }
            }
            thread::sleep(Duration::from_millis(10));
        }
        assert!(shed.is_some(), "cap of 1 never shed a connection");
        assert!(server.http_stats().shed_connections.load(Ordering::Relaxed) >= 1);
        drop(held);
        server.shutdown();
    }

    /// Regression (ISSUE 5): `shutdown()` returns promptly without the
    /// old dial-yourself unblocking trick.
    #[test]
    fn shutdown_is_prompt() {
        let mut server = serve();
        let started = std::time::Instant::now();
        server.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "shutdown took {:?}",
            started.elapsed()
        );
        // Idempotent.
        server.shutdown();
    }
}
