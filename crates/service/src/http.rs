//! A hand-rolled HTTP/1.1 front end over `std::net::TcpListener`.
//!
//! The build environment carries no network crates, and the service's
//! needs are narrow: small JSON bodies, `Content-Length` framing,
//! keep-alive, four routes. A thread per connection is plenty — real
//! concurrency control lives in the worker pool behind the service, not
//! in the listener.
//!
//! Routes:
//!
//! | Method | Path           | Behavior                                    |
//! |--------|----------------|---------------------------------------------|
//! | POST   | `/v1/jobs`     | Run (or fetch) a job; blocks until done     |
//! | GET    | `/v1/jobs/:id` | Non-blocking lookup of a finished job       |
//! | GET    | `/metrics`     | Service / cache / pool / engine counters    |
//! | GET    | `/healthz`     | Liveness probe                              |
//!
//! `POST /v1/jobs` accepts an optional `"timeout_ms"` field beside the
//! spec; admission-control rejections surface as `429` with a JSON error
//! body, deadline misses as `504`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::error::ServiceError;
use crate::jobspec::JobSpec;
use crate::json::{self, Json};
use crate::service::{job_response_body, SiService};

const MAX_BODY_BYTES: usize = 1 << 20;
const MAX_HEADER_LINES: usize = 100;

/// A running HTTP server bound to a local address.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    service: Arc<SiService>,
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, service: Arc<SiService>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_service = Arc::clone(&service);
        let accept_thread = thread::Builder::new()
            .name("si-http-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let service = Arc::clone(&accept_service);
                    let _ = thread::Builder::new()
                        .name("si-http-conn".to_string())
                        .spawn(move || handle_connection(stream, &service));
                }
            })?;
        Ok(HttpServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
            service,
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and drains the service workers.
    /// In-flight solves finish; new submissions are rejected.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.service.shutdown();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct Request {
    method: String,
    path: String,
    body: String,
    keep_alive: bool,
}

fn handle_connection(stream: TcpStream, service: &SiService) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) | Err(_) => return, // closed or malformed
        };
        let keep_alive = request.keep_alive;
        let (status, body) = route(&request, service);
        if write_response(&mut stream, status, &body, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

fn read_request(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Ok(None);
    };
    let method = method.to_string();
    let path = path.to_string();

    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    for _ in 0..MAX_HEADER_LINES {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Ok(None);
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().unwrap_or(0);
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Ok(None);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).unwrap_or_default();
    Ok(Some(Request {
        method,
        path,
        body,
        keep_alive,
    }))
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        499 => "Client Closed Request",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

fn error_body(err: &ServiceError) -> String {
    Json::Object(vec![
        ("error".to_string(), Json::String(err.code().to_string())),
        ("message".to_string(), Json::String(err.to_string())),
    ])
    .to_string_compact()
}

fn route(request: &Request, service: &SiService) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/jobs") => post_job(&request.body, service),
        ("GET", "/metrics") => (200, service.metrics_json()),
        ("GET", "/healthz") => (200, r#"{"status":"ok"}"#.to_string()),
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            get_job(&path["/v1/jobs/".len()..], service)
        }
        ("POST" | "GET", _) => (
            404,
            r#"{"error":"not_found","message":"unknown route"}"#.to_string(),
        ),
        _ => (
            405,
            r#"{"error":"method_not_allowed","message":"use GET or POST"}"#.to_string(),
        ),
    }
}

fn post_job(body: &str, service: &SiService) -> (u16, String) {
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(msg) => {
            let err = ServiceError::InvalidSpec(format!("body is not JSON: {msg}"));
            return (err.http_status(), error_body(&err));
        }
    };
    let spec = match JobSpec::from_json(&parsed) {
        Ok(s) => s,
        Err(err) => return (err.http_status(), error_body(&err)),
    };
    let deadline = parsed
        .get("timeout_ms")
        .and_then(Json::as_f64)
        .filter(|ms| *ms > 0.0)
        .map(|ms| Duration::from_secs_f64(ms / 1000.0));
    match service.submit_blocking(&spec, deadline) {
        Ok((out, cached)) => {
            let id = SiService::job_id(&spec);
            let body = job_response_body(&id, spec.kind(), cached, &out).to_string_compact();
            (200, body)
        }
        Err(err) => (err.http_status(), error_body(&err)),
    }
}

fn get_job(id: &str, service: &SiService) -> (u16, String) {
    let Some(key) = SiService::parse_job_id(id) else {
        let err = ServiceError::InvalidSpec("job ids are 16 hex digits".to_string());
        return (err.http_status(), error_body(&err));
    };
    match service.lookup(key) {
        Some((kind, Some(out))) => {
            let body = job_response_body(id, kind, true, &out).to_string_compact();
            (200, body)
        }
        Some((kind, None)) => (
            404,
            Json::Object(vec![
                ("error".to_string(), Json::String("not_ready".to_string())),
                ("kind".to_string(), Json::String(kind.to_string())),
            ])
            .to_string_compact(),
        ),
        None => (
            404,
            r#"{"error":"not_found","message":"unknown job id"}"#.to_string(),
        ),
    }
}

/// A minimal blocking HTTP/1.1 client for tests and the load generator:
/// one request per call, `Connection: close`.
///
/// # Errors
///
/// Propagates socket errors; malformed responses yield
/// `io::ErrorKind::InvalidData`.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: si-serve\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response)?;
    let bad = || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response");
    let (head, payload) = response.split_once("\r\n\r\n").ok_or_else(bad)?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(bad)?;
    Ok((status, payload.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    fn serve() -> HttpServer {
        let service = Arc::new(SiService::new(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            default_deadline: None,
        }));
        HttpServer::bind("127.0.0.1:0", service).expect("bind loopback")
    }

    #[test]
    fn health_and_404() {
        let mut server = serve();
        let addr = server.local_addr();
        let (status, body) = http_request(addr, "GET", "/healthz", None).unwrap();
        assert_eq!((status, body.as_str()), (200, r#"{"status":"ok"}"#));
        let (status, _) = http_request(addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn post_then_get_round_trip() {
        let mut server = serve();
        let addr = server.local_addr();
        let spec = r#"{"kind":"delay_line_dc","stages":3,"bias_ua":20,"input_ua":1}"#;
        let (status, body) = http_request(addr, "POST", "/v1/jobs", Some(spec)).unwrap();
        assert_eq!(status, 200, "{body}");
        let parsed = json::parse(&body).unwrap();
        assert_eq!(parsed.get("cached"), Some(&Json::Bool(false)));
        let id = parsed.get("id").unwrap().as_str().unwrap().to_string();

        // Second POST of the same spec: served from cache.
        let (_, body2) = http_request(addr, "POST", "/v1/jobs", Some(spec)).unwrap();
        let parsed2 = json::parse(&body2).unwrap();
        assert_eq!(parsed2.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(parsed2.get("values"), parsed.get("values"));

        // GET by id finds the cached job.
        let (status, got) = http_request(addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
        assert_eq!(status, 200, "{got}");
        // Metrics reflect one miss and one hit.
        let (_, metrics) = http_request(addr, "GET", "/metrics", None).unwrap();
        let m = json::parse(&metrics).unwrap();
        assert_eq!(
            m.get("cache").unwrap().get("hits").unwrap().as_f64(),
            Some(1.0)
        );
        server.shutdown();
    }

    #[test]
    fn invalid_bodies_get_400() {
        let mut server = serve();
        let addr = server.local_addr();
        let (status, _) = http_request(addr, "POST", "/v1/jobs", Some("not json")).unwrap();
        assert_eq!(status, 400);
        let (status, _) =
            http_request(addr, "POST", "/v1/jobs", Some(r#"{"kind":"mystery"}"#)).unwrap();
        assert_eq!(status, 400);
        let bad_range = r#"{"kind":"delay_line_dc","stages":0,"bias_ua":20,"input_ua":1}"#;
        let (status, _) = http_request(addr, "POST", "/v1/jobs", Some(bad_range)).unwrap();
        assert_eq!(status, 400);
        server.shutdown();
    }
}
