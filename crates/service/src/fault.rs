//! Deterministic fault injection for chaos testing the service.
//!
//! A [`FaultPlan`] decides, purely from a seed and a monotonically
//! increasing event index, whether the `n`-th job execution should be
//! sabotaged and how: the worker can *panic* mid-job, *stall* for a fixed
//! duration (long enough to blow a caller's deadline), or report a
//! *transient* non-convergence. A fourth kind, dropping a connection
//! mid-body, is executed by the HTTP client side of the chaos harness but
//! scheduled by the same plan so one seed reproduces the whole run.
//!
//! Nothing here consults the wall clock or an RNG at decision time — the
//! schedule is a pure function of `(seed, index)` — so a chaos run with a
//! given seed injects exactly the same faults at exactly the same
//! execution indices every time, which is what lets the harness gate on
//! exact counts ("N injected, zero wedged, cache bit-identical").
//!
//! The injector is a *test-only hook*: production builds never install
//! one ([`crate::service::SiService::install_fault_injector`] is called
//! only by tests and the `si_chaos` load generator), and an uninstalled
//! hook costs one `Option` check per job.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// The ways a fault plan can sabotage one job execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// The worker thread panics mid-job (after taking flight leadership).
    PanicWorker,
    /// The worker sleeps for the plan's stall duration before solving —
    /// long enough to push the job past a caller-side deadline.
    Stall,
    /// The job reports [`crate::ServiceError::Transient`] instead of
    /// running, imitating a Newton budget exhaustion that a retry clears.
    Transient,
    /// The client drops its connection mid-request-body (HTTP harness
    /// only; the service side just observes a truncated read).
    DropConnection,
    /// The worker panics between two chunks of a streaming job — after at
    /// least one checkpoint exists — so the retry must *resume* from the
    /// checkpoint rather than rerun from scratch. Drawn per chunk (not
    /// per job) by the streaming executor; non-streaming jobs never see
    /// this kind.
    PanicMidChunk,
}

impl FaultKind {
    /// Stable wire/report tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::PanicWorker => "panic_worker",
            FaultKind::Stall => "stall",
            FaultKind::Transient => "transient",
            FaultKind::DropConnection => "drop_connection",
            FaultKind::PanicMidChunk => "panic_mid_chunk",
        }
    }
}

/// SplitMix64: a tiny, well-mixed permutation used to derive each
/// decision from `(seed, index)` without any RNG state.
#[must_use]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic, seedable schedule of injected faults.
///
/// Per mille rates (`panic_pm + stall_pm + transient_pm + drop_pm`
/// must be ≤ 1000) partition the hash space: event `n` draws
/// `splitmix64(seed ^ n) % 1000` and the bucket it lands in picks the
/// fault (or none). `max_faults` caps the total so a run always has a
/// clean, fault-free tail for recovery verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed deriving every decision.
    pub seed: u64,
    /// Worker-panic rate, per 1000 events.
    pub panic_pm: u64,
    /// Stall rate, per 1000 events.
    pub stall_pm: u64,
    /// Transient-error rate, per 1000 events.
    pub transient_pm: u64,
    /// Dropped-connection rate, per 1000 events (client-side kind).
    pub drop_pm: u64,
    /// Mid-chunk panic rate, per 1000 events. Only the streaming
    /// executor's per-chunk draws can land in this bucket; job-level
    /// draws treat it like any other scheduled fault.
    pub panic_mid_chunk_pm: u64,
    /// How long a [`FaultKind::Stall`] sleeps.
    pub stall: Duration,
    /// Hard cap on total injected faults (`u64::MAX` for unlimited).
    pub max_faults: u64,
}

impl FaultPlan {
    /// A balanced plan: ~24 % of events faulted, evenly split across the
    /// three worker-side kinds, with an 80 ms stall.
    #[must_use]
    pub fn balanced(seed: u64, max_faults: u64) -> Self {
        FaultPlan {
            seed,
            panic_pm: 80,
            stall_pm: 80,
            transient_pm: 80,
            drop_pm: 0,
            panic_mid_chunk_pm: 0,
            stall: Duration::from_millis(80),
            max_faults,
        }
    }

    /// A streaming-chaos plan: every drawn event is a mid-chunk panic,
    /// capped at `max_faults` so the run has a clean recovery tail. Used
    /// by the chaos/loadgen harnesses to force resume-from-checkpoint.
    #[must_use]
    pub fn mid_chunk(seed: u64, max_faults: u64) -> Self {
        FaultPlan {
            seed,
            panic_pm: 0,
            stall_pm: 0,
            transient_pm: 0,
            drop_pm: 0,
            panic_mid_chunk_pm: 1000,
            stall: Duration::from_millis(80),
            max_faults,
        }
    }

    /// The fault (if any) scheduled for event `index`, ignoring the
    /// `max_faults` cap — the pure decision function.
    #[must_use]
    pub fn decide(&self, index: u64) -> Option<FaultKind> {
        let roll = splitmix64(self.seed ^ index.wrapping_mul(0x2545_f491_4f6c_dd1d)) % 1000;
        let mut edge = self.panic_pm;
        if roll < edge {
            return Some(FaultKind::PanicWorker);
        }
        edge += self.stall_pm;
        if roll < edge {
            return Some(FaultKind::Stall);
        }
        edge += self.transient_pm;
        if roll < edge {
            return Some(FaultKind::Transient);
        }
        edge += self.drop_pm;
        if roll < edge {
            return Some(FaultKind::DropConnection);
        }
        edge += self.panic_mid_chunk_pm;
        if roll < edge {
            return Some(FaultKind::PanicMidChunk);
        }
        None
    }
}

/// Monotonic counters of what a [`FaultInjector`] has actually injected.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Total faults injected (all kinds).
    pub injected: u64,
    /// Worker panics injected.
    pub panics: u64,
    /// Stalls injected.
    pub stalls: u64,
    /// Transient errors injected.
    pub transients: u64,
    /// Connection drops scheduled (executed by the HTTP client harness).
    pub dropped_connections: u64,
    /// Mid-chunk panics injected by the streaming executor.
    pub panic_mid_chunks: u64,
    /// Faults whose request later completed successfully (recorded by the
    /// chaos harness once a faulted key is re-verified).
    pub survived: u64,
}

/// The runtime half of a [`FaultPlan`]: owns the shared event counter and
/// the injected-fault statistics, and can be disarmed for a run's
/// verification tail.
///
/// One injector is shared (via `Arc`) between the service's worker tasks
/// and — in HTTP chaos mode — the client threads; the single atomic
/// event counter serializes the schedule across both.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    armed: AtomicBool,
    next_event: AtomicU64,
    injected: AtomicU64,
    panics: AtomicU64,
    stalls: AtomicU64,
    transients: AtomicU64,
    dropped_connections: AtomicU64,
    panic_mid_chunks: AtomicU64,
    survived: AtomicU64,
}

impl FaultInjector {
    /// An armed injector executing `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            armed: AtomicBool::new(true),
            next_event: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            transients: AtomicU64::new(0),
            dropped_connections: AtomicU64::new(0),
            panic_mid_chunks: AtomicU64::new(0),
            survived: AtomicU64::new(0),
        }
    }

    /// The plan this injector executes.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Stops injecting (already-consumed decisions stand). Used before a
    /// chaos run's recovery-verification phase.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Whether the injector is still injecting.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }

    /// Draws the next event index and returns the fault to inject, if
    /// any. Disarmed injectors and exhausted `max_faults` budgets return
    /// `None` (the index still advances, keeping the schedule aligned).
    pub fn next_fault(&self) -> Option<FaultKind> {
        let index = self.next_event.fetch_add(1, Ordering::SeqCst);
        if !self.is_armed() {
            return None;
        }
        let kind = self.plan.decide(index)?;
        // Reserve a slot under the cap; back out on overshoot.
        if self.injected.fetch_add(1, Ordering::SeqCst) >= self.plan.max_faults {
            self.injected.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        match kind {
            FaultKind::PanicWorker => self.panics.fetch_add(1, Ordering::SeqCst),
            FaultKind::Stall => self.stalls.fetch_add(1, Ordering::SeqCst),
            FaultKind::Transient => self.transients.fetch_add(1, Ordering::SeqCst),
            FaultKind::DropConnection => self.dropped_connections.fetch_add(1, Ordering::SeqCst),
            FaultKind::PanicMidChunk => self.panic_mid_chunks.fetch_add(1, Ordering::SeqCst),
        };
        Some(kind)
    }

    /// Records that a previously faulted request completed successfully.
    pub fn record_survival(&self, n: u64) {
        self.survived.fetch_add(n, Ordering::SeqCst);
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            injected: self.injected.load(Ordering::SeqCst),
            panics: self.panics.load(Ordering::SeqCst),
            stalls: self.stalls.load(Ordering::SeqCst),
            transients: self.transients.load(Ordering::SeqCst),
            dropped_connections: self.dropped_connections.load(Ordering::SeqCst),
            panic_mid_chunks: self.panic_mid_chunks.load(Ordering::SeqCst),
            survived: self.survived.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_in_seed_and_index() {
        let plan = FaultPlan::balanced(42, u64::MAX);
        let first: Vec<_> = (0..256).map(|n| plan.decide(n)).collect();
        let second: Vec<_> = (0..256).map(|n| plan.decide(n)).collect();
        assert_eq!(first, second);
        // A different seed reshuffles the schedule.
        let other = FaultPlan::balanced(43, u64::MAX);
        assert_ne!(first, (0..256).map(|n| other.decide(n)).collect::<Vec<_>>());
    }

    #[test]
    fn rates_partition_the_event_space() {
        let plan = FaultPlan::balanced(7, u64::MAX);
        let n = 10_000u64;
        let faulted = (0..n).filter(|&k| plan.decide(k).is_some()).count() as f64;
        let expected = n as f64 * 0.24;
        assert!(
            (faulted - expected).abs() < n as f64 * 0.05,
            "fault rate {faulted}/{n} far from expected {expected}"
        );
        let none = FaultPlan {
            panic_pm: 0,
            stall_pm: 0,
            transient_pm: 0,
            drop_pm: 0,
            ..plan
        };
        assert!((0..n).all(|k| none.decide(k).is_none()));
    }

    #[test]
    fn injector_respects_cap_and_disarm() {
        let injector = FaultInjector::new(FaultPlan {
            panic_pm: 1000, // every event faults
            stall_pm: 0,
            transient_pm: 0,
            drop_pm: 0,
            ..FaultPlan::balanced(1, 3)
        });
        let fired: Vec<_> = (0..10).filter_map(|_| injector.next_fault()).collect();
        assert_eq!(fired.len(), 3, "cap of 3 not enforced: {fired:?}");
        assert_eq!(injector.stats().injected, 3);
        assert_eq!(injector.stats().panics, 3);

        let fresh = FaultInjector::new(FaultPlan::balanced(1, u64::MAX));
        fresh.disarm();
        assert!((0..100).all(|_| fresh.next_fault().is_none()));
    }

    #[test]
    fn stats_track_each_kind() {
        let plan = FaultPlan {
            seed: 99,
            panic_pm: 200,
            stall_pm: 200,
            transient_pm: 200,
            drop_pm: 200,
            panic_mid_chunk_pm: 200,
            stall: Duration::from_millis(1),
            max_faults: u64::MAX,
        };
        let injector = FaultInjector::new(plan);
        for _ in 0..1000 {
            injector.next_fault();
        }
        let s = injector.stats();
        assert_eq!(
            s.injected,
            s.panics + s.stalls + s.transients + s.dropped_connections + s.panic_mid_chunks
        );
        assert_eq!(
            s.injected, 1000,
            "rates sum to 1000/1000: every event faults"
        );
        for (kind, count) in [
            ("panics", s.panics),
            ("stalls", s.stalls),
            ("transients", s.transients),
            ("drops", s.dropped_connections),
            ("mid-chunk panics", s.panic_mid_chunks),
        ] {
            assert!(count > 120, "{kind} implausibly rare: {count}/1000");
        }
    }

    #[test]
    fn mid_chunk_plan_only_draws_mid_chunk_panics() {
        let plan = FaultPlan::mid_chunk(5, u64::MAX);
        assert!((0..256).all(|n| plan.decide(n) == Some(FaultKind::PanicMidChunk)));
        let capped = FaultInjector::new(FaultPlan::mid_chunk(5, 1));
        let fired: Vec<_> = (0..10).filter_map(|_| capped.next_fault()).collect();
        assert_eq!(fired, vec![FaultKind::PanicMidChunk]);
        assert_eq!(capped.stats().panic_mid_chunks, 1);
    }
}
