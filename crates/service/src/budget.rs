//! Pre-solve admission budget for user-submitted circuits.
//!
//! User netlists are priced *before* any factorization or Newton iteration
//! runs: node and device counts come straight off the parsed
//! [`Circuit`], the matrix dimension from [`Circuit::mna_dimension`], and
//! the fill from [`mna_pattern`]'s nonzero count — all linear-time
//! bookkeeping, no numerics. Anything over budget is rejected with a typed
//! [`ServiceError::BudgetExceeded`] (HTTP `413`), so an oversized
//! submission costs the service a parse and a pattern walk, never a
//! factorization.

use crate::error::ServiceError;
use si_analog::mna::mna_pattern;
use si_analog::netlist::Circuit;

/// Resource ceilings applied to submitted netlists at admission.
///
/// The defaults comfortably admit every circuit family in this repo (the
/// largest canned workload, a 4096-stage delay line, prices at ~4k nodes
/// and ~20k nonzeros) while bounding the work a hostile submission can
/// force: the priced quantities are exactly the drivers of factorization
/// cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionBudget {
    /// Maximum netlist text size in bytes.
    pub max_netlist_bytes: usize,
    /// Maximum node count (including ground).
    pub max_nodes: usize,
    /// Maximum element count.
    pub max_devices: usize,
    /// Maximum MNA dimension (nodes − 1 + voltage-source branches).
    pub max_mna_dim: usize,
    /// Maximum structural nonzeros in the MNA matrix.
    pub max_nonzeros: usize,
}

impl Default for AdmissionBudget {
    fn default() -> Self {
        AdmissionBudget {
            max_netlist_bytes: 256 * 1024,
            max_nodes: 8192,
            max_devices: 32768,
            max_mna_dim: 8192,
            max_nonzeros: 131_072,
        }
    }
}

/// What a parsed circuit costs, in the units the budget prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitCost {
    /// Node count including ground.
    pub nodes: usize,
    /// Element count.
    pub devices: usize,
    /// MNA system dimension.
    pub mna_dim: usize,
    /// Structural nonzeros of the MNA matrix.
    pub nonzeros: usize,
}

/// Prices a parsed circuit. Walks the sparsity pattern but performs no
/// factorization.
#[must_use]
pub fn price_circuit(circuit: &Circuit) -> CircuitCost {
    CircuitCost {
        nodes: circuit.node_count(),
        devices: circuit.elements().len(),
        mna_dim: circuit.mna_dimension(),
        nonzeros: mna_pattern(circuit).nnz(),
    }
}

impl AdmissionBudget {
    /// Checks raw netlist text size before it is even parsed.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::BudgetExceeded`] with resource
    /// `netlist_bytes` when the text is too large.
    pub fn admit_bytes(&self, len: usize) -> Result<(), ServiceError> {
        if len > self.max_netlist_bytes {
            return Err(ServiceError::BudgetExceeded {
                resource: "netlist_bytes",
                actual: len as u64,
                limit: self.max_netlist_bytes as u64,
            });
        }
        Ok(())
    }

    /// Checks a priced circuit against every ceiling.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::BudgetExceeded`] naming the first resource
    /// over budget (checked in order: nodes, devices, mna_dim, nonzeros).
    pub fn admit(&self, cost: &CircuitCost) -> Result<(), ServiceError> {
        let checks: [(&'static str, usize, usize); 4] = [
            ("nodes", cost.nodes, self.max_nodes),
            ("devices", cost.devices, self.max_devices),
            ("mna_dim", cost.mna_dim, self.max_mna_dim),
            ("nonzeros", cost.nonzeros, self.max_nonzeros),
        ];
        for (resource, actual, limit) in checks {
            if actual > limit {
                return Err(ServiceError::BudgetExceeded {
                    resource,
                    actual: actual as u64,
                    limit: limit as u64,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_analog::cells::si_cell_chain;

    #[test]
    fn default_budget_admits_canned_workloads() {
        let line = si_cell_chain(64).unwrap();
        let cost = price_circuit(&line.circuit);
        assert_eq!(cost.nodes, 65);
        assert_eq!(cost.mna_dim, 64);
        assert!(cost.nonzeros > 0);
        AdmissionBudget::default().admit(&cost).unwrap();
    }

    #[test]
    fn rejection_names_the_first_overbudget_resource() {
        let line = si_cell_chain(16).unwrap();
        let cost = price_circuit(&line.circuit);
        let tight = AdmissionBudget {
            max_nodes: 4,
            max_nonzeros: 1,
            ..AdmissionBudget::default()
        };
        let err = tight.admit(&cost).unwrap_err();
        assert_eq!(
            err,
            ServiceError::BudgetExceeded {
                resource: "nodes",
                actual: cost.nodes as u64,
                limit: 4,
            }
        );
        assert_eq!(err.http_status(), 413);
    }

    #[test]
    fn byte_cap_applies_before_parsing() {
        let b = AdmissionBudget {
            max_netlist_bytes: 10,
            ..AdmissionBudget::default()
        };
        b.admit_bytes(10).unwrap();
        let err = b.admit_bytes(11).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::BudgetExceeded {
                resource: "netlist_bytes",
                actual: 11,
                limit: 10,
            }
        ));
    }
}
