//! The content-addressed result cache with single-flight deduplication.
//!
//! Keys are [`JobSpec::job_key`](crate::jobspec::JobSpec::job_key) values;
//! entries are `Arc`-shared [`JobOutput`](crate::jobspec::JobOutput)s.
//! When several clients ask for the same key concurrently, exactly one
//! (the *leader*) computes; the rest (*followers*) block on a condvar and
//! receive the leader's result — the "single-flight" discipline that
//! keeps a thundering herd of identical jobs from multiplying solver
//! work. Errors are handed to waiting followers but never cached: a
//! transient non-convergence should not poison the key forever.
//!
//! Batch jobs ([`JobSpec::DelayLineDcBatch`](crate::jobspec::JobSpec))
//! cache at the same granularity as everything else: one key, one entry,
//! holding *all* scenarios' values. A batch is published only by the one
//! `complete` call that carries its full output; a leader that dies
//! mid-batch (worker panic between scenarios) goes through the same
//! abandoned-flight path as any other crash, so a partial batch can never
//! become a ready entry — there is simply no API through which fewer than
//! all scenarios could be published.
//!
//! The map is sharded by the low bits of the key so unrelated jobs do not
//! contend on one lock; each shard's critical sections only move `Arc`s.
//!
//! # Crash safety
//!
//! Two independent mechanisms make a panicking leader survivable:
//!
//! 1. [`LeadGuard`] owns a handle back to the cache. If the leader
//!    unwinds without calling [`ResultCache::complete`], the guard's
//!    `Drop` completes the flight with [`ServiceError::Internal`], so
//!    followers are *released with a typed error* — never stranded, and
//!    never handed a poisoned mutex.
//! 2. Every lock acquisition recovers from poisoning via
//!    [`std::sync::PoisonError::into_inner`]. The shard maps and flight
//!    slots hold only `Arc`s and plain enums whose invariants are
//!    re-established by the completing write, so a poisoned lock carries
//!    no torn state worth propagating; recoveries are counted in
//!    [`CacheStats::poison_recoveries`] so chaos runs can assert they
//!    stay observable.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::error::ServiceError;
use crate::jobspec::JobOutput;

const SHARDS: usize = 16;

type JobResult = Result<Arc<JobOutput>, ServiceError>;

/// One in-progress computation that followers wait on.
#[derive(Debug)]
struct Flight {
    slot: Mutex<Option<JobResult>>,
    done: Condvar,
}

#[derive(Debug, Clone)]
enum Entry {
    Ready(Arc<JobOutput>),
    InFlight(Arc<Flight>),
}

/// What [`ResultCache::get_or_lead`] tells the caller to do.
#[derive(Debug)]
pub enum CacheOutcome {
    /// The result was already cached.
    Hit(Arc<JobOutput>),
    /// Another thread is computing this key; the caller was blocked until
    /// it finished and this is its result.
    Coalesced(JobResult),
    /// The caller is the leader: it must compute and then call
    /// [`ResultCache::complete`] with the outcome.
    Lead(LeadGuard),
}

/// Proof of leadership for one key. The leader normally consumes the
/// guard via [`ResultCache::complete`]; if it unwinds instead (panic,
/// early return), `Drop` completes the flight with
/// [`ServiceError::Internal`] so followers wake with a typed error
/// instead of waiting forever.
#[derive(Debug)]
pub struct LeadGuard {
    key: u64,
    cache: Arc<CacheInner>,
    completed: bool,
}

/// Monotonic counters describing cache behavior since startup.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a ready entry.
    pub hits: u64,
    /// Lookups that became leaders (the job actually ran).
    pub misses: u64,
    /// Lookups that waited on another thread's in-flight computation.
    pub coalesced: u64,
    /// Ready entries currently resident.
    pub entries: u64,
    /// Flights completed by [`LeadGuard`]'s drop backstop because the
    /// leader unwound without publishing (worker panic).
    pub abandoned_flights: u64,
    /// Poisoned locks recovered via `into_inner` (a thread panicked while
    /// holding a cache lock; the data survived).
    pub poison_recoveries: u64,
}

#[derive(Debug)]
struct CacheInner {
    shards: Vec<Mutex<HashMap<u64, Entry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    abandoned_flights: AtomicU64,
    poison_recoveries: AtomicU64,
}

impl CacheInner {
    /// Locks `m`, recovering (and counting) mutex poisoning: the caller
    /// gets a usable guard either way.
    fn lock<'a, T>(&self, m: &'a Mutex<T>) -> MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|poisoned| {
            self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, Entry>> {
        &self.shards[(key as usize) % SHARDS]
    }

    /// Publishes a flight's result: successes become ready entries,
    /// failures evict the key; all followers wake with a clone.
    fn publish(&self, key: u64, result: JobResult) {
        let flight = {
            let mut shard = self.lock(self.shard(key));
            let prev = match &result {
                Ok(out) => shard.insert(key, Entry::Ready(Arc::clone(out))),
                Err(_) => shard.remove(&key),
            };
            match prev {
                Some(Entry::InFlight(flight)) => Some(flight),
                // A Ready entry can only appear here if the same key was
                // completed twice, which leadership rules out; tolerate it.
                _ => None,
            }
        };
        if let Some(flight) = flight {
            let mut slot = self.lock(&flight.slot);
            *slot = Some(result);
            flight.done.notify_all();
        }
    }
}

/// A sharded, single-flight, content-addressed cache of job results.
#[derive(Debug)]
pub struct ResultCache {
    inner: Arc<CacheInner>,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new()
    }
}

impl ResultCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        ResultCache {
            inner: Arc::new(CacheInner {
                shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                abandoned_flights: AtomicU64::new(0),
                poison_recoveries: AtomicU64::new(0),
            }),
        }
    }

    /// Looks up `key`; on a miss the caller becomes the leader and must
    /// call [`ResultCache::complete`]. Blocks (briefly) if another thread
    /// is already computing the key.
    pub fn get_or_lead(&self, key: u64) -> CacheOutcome {
        let inner = &self.inner;
        let flight = {
            let mut shard = inner.lock(inner.shard(key));
            match shard.get(&key) {
                Some(Entry::Ready(out)) => {
                    inner.hits.fetch_add(1, Ordering::Relaxed);
                    return CacheOutcome::Hit(Arc::clone(out));
                }
                Some(Entry::InFlight(flight)) => Arc::clone(flight),
                None => {
                    shard.insert(
                        key,
                        Entry::InFlight(Arc::new(Flight {
                            slot: Mutex::new(None),
                            done: Condvar::new(),
                        })),
                    );
                    inner.misses.fetch_add(1, Ordering::Relaxed);
                    return CacheOutcome::Lead(LeadGuard {
                        key,
                        cache: Arc::clone(inner),
                        completed: false,
                    });
                }
            }
        };
        // Follower: wait outside the shard lock. The leader always
        // publishes — by `complete` or by its guard's drop backstop — so
        // this wait cannot strand; poisoned waits recover the guard.
        inner.coalesced.fetch_add(1, Ordering::Relaxed);
        let mut slot = inner.lock(&flight.slot);
        while slot.is_none() {
            slot = flight.done.wait(slot).unwrap_or_else(|poisoned| {
                inner.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                poisoned.into_inner()
            });
        }
        CacheOutcome::Coalesced(slot.as_ref().expect("checked above").clone())
    }

    /// Publishes the leader's result: successes become ready entries,
    /// failures evict the key. Either way, all followers wake with a
    /// clone of `result`.
    pub fn complete(&self, mut guard: LeadGuard, result: JobResult) {
        guard.completed = true;
        self.inner.publish(guard.key, result);
    }

    /// A non-leading lookup: returns the cached result if ready, without
    /// counting a hit or joining an in-flight computation. Used by
    /// `GET /v1/jobs/:id`, which must not block or become a leader.
    pub fn peek(&self, key: u64) -> Option<Arc<JobOutput>> {
        let shard = self.inner.lock(self.inner.shard(key));
        match shard.get(&key) {
            Some(Entry::Ready(out)) => Some(Arc::clone(out)),
            _ => None,
        }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = &self.inner;
        let entries = inner
            .shards
            .iter()
            .map(|s| {
                inner
                    .lock(s)
                    .values()
                    .filter(|e| matches!(e, Entry::Ready(_)))
                    .count() as u64
            })
            .sum();
        CacheStats {
            hits: inner.hits.load(Ordering::Relaxed),
            misses: inner.misses.load(Ordering::Relaxed),
            coalesced: inner.coalesced.load(Ordering::Relaxed),
            entries,
            abandoned_flights: inner.abandoned_flights.load(Ordering::Relaxed),
            poison_recoveries: inner.poison_recoveries.load(Ordering::Relaxed),
        }
    }

    /// Test/chaos hook: poisons the mutex of `key`'s shard by panicking a
    /// throwaway thread while it holds the lock. Regression tests use
    /// this to prove lookups recover instead of propagating the panic.
    #[doc(hidden)]
    pub fn poison_shard_for_test(&self, key: u64) {
        let inner = Arc::clone(&self.inner);
        let handle = std::thread::spawn(move || {
            let _guard = inner
                .shard(key)
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            panic!("deliberate poison for test");
        });
        assert!(handle.join().is_err(), "poison thread must panic");
    }
}

impl Drop for LeadGuard {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        // The leader unwound (panic or early return) without publishing.
        // Complete with a typed error so followers are released and the
        // key is evicted — the crash-safe half of single-flight.
        self.completed = true;
        self.cache.abandoned_flights.fetch_add(1, Ordering::Relaxed);
        self.cache.publish(
            self.key,
            Err(ServiceError::Internal(
                "leader abandoned the flight (worker panic or unwind)".to_string(),
            )),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn output(v: f64) -> Arc<JobOutput> {
        Arc::new(JobOutput {
            values: vec![v],
            metrics: vec![],
        })
    }

    #[test]
    fn miss_then_hit() {
        let cache = ResultCache::new();
        let guard = match cache.get_or_lead(7) {
            CacheOutcome::Lead(g) => g,
            other => panic!("expected Lead, got {other:?}"),
        };
        cache.complete(guard, Ok(output(1.0)));
        match cache.get_or_lead(7) {
            CacheOutcome::Hit(out) => assert_eq!(out.values, vec![1.0]),
            other => panic!("expected Hit, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn followers_coalesce_onto_one_leader() {
        let cache = Arc::new(ResultCache::new());
        let guard = match cache.get_or_lead(42) {
            CacheOutcome::Lead(g) => g,
            other => panic!("expected Lead, got {other:?}"),
        };
        let mut joins = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            joins.push(thread::spawn(move || match cache.get_or_lead(42) {
                CacheOutcome::Coalesced(Ok(out)) => out.values[0],
                other => panic!("expected Coalesced, got {other:?}"),
            }));
        }
        // Give followers time to park, then publish.
        thread::sleep(std::time::Duration::from_millis(20));
        cache.complete(guard, Ok(output(9.0)));
        for j in joins {
            assert_eq!(j.join().unwrap(), 9.0);
        }
        assert_eq!(cache.stats().coalesced, 4);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn errors_propagate_but_are_not_cached() {
        let cache = ResultCache::new();
        let guard = match cache.get_or_lead(3) {
            CacheOutcome::Lead(g) => g,
            other => panic!("expected Lead, got {other:?}"),
        };
        cache.complete(guard, Err(ServiceError::Analysis("diverged".into())));
        // The key is free again: the next lookup leads, not hits.
        match cache.get_or_lead(3) {
            CacheOutcome::Lead(g) => cache.complete(g, Ok(output(2.0))),
            other => panic!("expected Lead after error, got {other:?}"),
        }
        assert_eq!(cache.stats().entries, 1);
    }

    /// Regression (ISSUE 5): a leader that panics mid-job must release
    /// its followers with a typed error and leave the key usable, not
    /// strand them or poison the shard for every later request.
    #[test]
    fn panicking_leader_releases_followers_and_frees_the_key() {
        let cache = Arc::new(ResultCache::new());
        let guard = match cache.get_or_lead(11) {
            CacheOutcome::Lead(g) => g,
            other => panic!("expected Lead, got {other:?}"),
        };
        let mut followers = Vec::new();
        for _ in 0..3 {
            let cache = Arc::clone(&cache);
            followers.push(thread::spawn(move || match cache.get_or_lead(11) {
                CacheOutcome::Coalesced(result) => result,
                other => panic!("expected Coalesced, got {other:?}"),
            }));
        }
        thread::sleep(std::time::Duration::from_millis(20));
        // The "worker": panics while owning the guard.
        let leader = thread::spawn(move || {
            let _guard = guard;
            panic!("injected worker panic");
        });
        assert!(leader.join().is_err());
        for f in followers {
            let result = f.join().expect("follower must not be stranded");
            assert!(
                matches!(result, Err(ServiceError::Internal(_))),
                "followers get the typed abandonment error, got {result:?}"
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.abandoned_flights, 1);
        // The key is free: the next caller leads and can cache normally.
        match cache.get_or_lead(11) {
            CacheOutcome::Lead(g) => cache.complete(g, Ok(output(5.0))),
            other => panic!("expected Lead after abandonment, got {other:?}"),
        }
        match cache.get_or_lead(11) {
            CacheOutcome::Hit(out) => assert_eq!(out.values, vec![5.0]),
            other => panic!("expected Hit, got {other:?}"),
        }
    }

    /// Regression (ISSUE 6): a leader that dies *mid-batch* — after some
    /// scenarios solved but before `complete` — must cache nothing. The
    /// only publishable value is the full output passed to `complete`;
    /// the abandonment backstop evicts the key, so the next caller leads
    /// again and recomputes the whole batch.
    #[test]
    fn abandoned_batch_flight_caches_no_partial_scenarios() {
        let cache = Arc::new(ResultCache::new());
        let guard = match cache.get_or_lead(6) {
            CacheOutcome::Lead(g) => g,
            other => panic!("expected Lead, got {other:?}"),
        };
        // The "worker" solves scenario 0 of 3, then panics before the
        // batch completes. Its partial values die with the stack frame.
        let leader = thread::spawn(move || {
            let _guard = guard;
            let _partial = [1.0_f64]; // scenario 0 of 3
            panic!("injected fault: worker panic mid-batch");
        });
        assert!(leader.join().is_err());
        assert!(cache.peek(6).is_none(), "partial batch must not be cached");
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().abandoned_flights, 1);
        // The next caller leads and publishes the complete batch.
        match cache.get_or_lead(6) {
            CacheOutcome::Lead(g) => cache.complete(
                g,
                Ok(Arc::new(JobOutput {
                    values: vec![1.0, 2.0, 3.0],
                    metrics: vec![("scenarios".to_string(), 3.0)],
                })),
            ),
            other => panic!("expected Lead after abandonment, got {other:?}"),
        }
        assert_eq!(cache.peek(6).unwrap().values.len(), 3);
    }

    /// Regression (ISSUE 5): a poisoned shard mutex — a thread panicked
    /// while holding it — must not turn every later lookup on that shard
    /// into a panic. The old code `.expect("cache shard poisoned")`ed.
    #[test]
    fn poisoned_shard_recovers_instead_of_panicking() {
        let cache = ResultCache::new();
        // Seed an entry, then poison its shard.
        match cache.get_or_lead(21) {
            CacheOutcome::Lead(g) => cache.complete(g, Ok(output(7.0))),
            other => panic!("expected Lead, got {other:?}"),
        }
        cache.poison_shard_for_test(21);
        // Data survives the poison: hit still served, peek still works,
        // stats still readable, new keys on the shard still lead.
        match cache.get_or_lead(21) {
            CacheOutcome::Hit(out) => assert_eq!(out.values, vec![7.0]),
            other => panic!("expected Hit through poisoned shard, got {other:?}"),
        }
        assert_eq!(cache.peek(21).unwrap().values, vec![7.0]);
        let same_shard_key = 21 + 16; // SHARDS = 16
        match cache.get_or_lead(same_shard_key) {
            CacheOutcome::Lead(g) => cache.complete(g, Ok(output(8.0))),
            other => panic!("expected Lead, got {other:?}"),
        }
        let stats = cache.stats();
        assert!(
            stats.poison_recoveries >= 1,
            "recovery must be counted: {stats:?}"
        );
        assert_eq!(stats.entries, 2);
    }
}
