//! The tiered, content-addressed result cache with single-flight
//! deduplication.
//!
//! Keys are [`JobSpec::job_key`](crate::jobspec::JobSpec::job_key) values;
//! entries are `Arc`-shared [`JobOutput`](crate::jobspec::JobOutput)s.
//! Storage is a stack of [`CacheTier`]s — an in-memory sharded tier
//! ([`MemoryTier`]) always on top, optionally backed by a persistent
//! disk tier ([`DiskTier`](crate::disk::DiskTier)) underneath:
//!
//! - **Lookup order** walks the stack top-down: memory first, then disk.
//! - **Promotion**: a hit in a lower tier is written back into every tier
//!   above it, so the next lookup is a memory hit.
//! - **Write-through**: a freshly computed result is stored into *every*
//!   tier, so it survives a process restart.
//! - **Never cache errors**: only successful outputs reach any tier; a
//!   transient non-convergence must not poison the key, in memory or on
//!   disk.
//!
//! When several clients ask for the same key concurrently, exactly one
//! (the *leader*) computes; the rest (*followers*) block on a condvar and
//! receive the leader's result — the "single-flight" discipline that
//! keeps a thundering herd of identical jobs from multiplying solver
//! work. The in-flight table is sharded separately from storage, so a
//! disk probe never holds a flight lock. A disk hit is single-flight too:
//! concurrent callers coalesce onto the one caller doing the disk read.
//!
//! Batch jobs ([`JobSpec::DelayLineDcBatch`](crate::jobspec::JobSpec))
//! cache at the same granularity as everything else: one key, one entry,
//! holding *all* scenarios' values. A batch is published only by the one
//! `complete` call that carries its full output; a leader that dies
//! mid-batch (worker panic between scenarios) goes through the same
//! abandoned-flight path as any other crash, so a partial batch can never
//! become a ready entry — in memory or on disk.
//!
//! # Crash safety
//!
//! Two independent mechanisms make a panicking leader survivable:
//!
//! 1. [`LeadGuard`] owns a handle back to the cache. If the leader
//!    unwinds without calling [`ResultCache::complete`], the guard's
//!    `Drop` completes the flight with [`ServiceError::Internal`], so
//!    followers are *released with a typed error* — never stranded, and
//!    never handed a poisoned mutex.
//! 2. Every lock acquisition recovers from poisoning via
//!    [`std::sync::PoisonError::into_inner`]. The shard maps and flight
//!    slots hold only `Arc`s and plain enums whose invariants are
//!    re-established by the completing write, so a poisoned lock carries
//!    no torn state worth propagating; recoveries are counted in
//!    [`CacheStats::poison_recoveries`] so chaos runs can assert they
//!    stay observable.
//!
//! Process-kill crash safety — a `SIGKILL` mid-disk-write — is the disk
//! tier's own atomic-rename discipline; see [`crate::disk`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::disk::DiskTier;
use crate::error::ServiceError;
use crate::jobspec::JobOutput;

const SHARDS: usize = 16;

type JobResult = Result<Arc<JobOutput>, ServiceError>;

/// One storage level of the result cache.
///
/// A tier is a plain key→output store: no single-flight, no error
/// caching, no TTLs — those live in [`ResultCache`], which owns the
/// stack. Implementations must be cheap to probe on a miss and must
/// never serve a value they cannot vouch for (the disk tier quarantines
/// anything failing its checksum instead of returning it).
pub trait CacheTier: Send + Sync + std::fmt::Debug {
    /// Stable tag used in metrics and logs (`"memory"`, `"disk"`).
    fn name(&self) -> &'static str;
    /// Looks up `key`, returning a shared output on a hit. May mutate
    /// internal bookkeeping (LRU clocks, hit counters) but must not
    /// block on anything slower than its own medium.
    fn load(&self, key: u64) -> Option<Arc<JobOutput>>;
    /// Stores `out` under `key`, overwriting any previous entry. Errors
    /// are absorbed (a tier that cannot store simply misses later).
    fn store(&self, key: u64, out: &Arc<JobOutput>);
    /// Monotonic counters plus occupancy gauges for this tier.
    fn stats(&self) -> TierStats;
}

/// Counters and gauges one [`CacheTier`] reports.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TierStats {
    /// Loads that found a valid entry.
    pub hits: u64,
    /// Loads that found nothing (or quarantined what they found).
    pub misses: u64,
    /// Entries written.
    pub writes: u64,
    /// Entries evicted to fit the tier's budget.
    pub evictions: u64,
    /// Entries quarantined because validation failed (corrupt, foreign,
    /// torn, or version-mismatched files; always 0 for the memory tier).
    pub corrupt_evicted: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Bytes currently resident (0 where not tracked).
    pub bytes: u64,
}

/// The always-present top tier: a sharded in-memory map of ready
/// results.
#[derive(Debug)]
pub struct MemoryTier {
    shards: Vec<Mutex<HashMap<u64, Arc<JobOutput>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    poison_recoveries: AtomicU64,
}

impl Default for MemoryTier {
    fn default() -> Self {
        MemoryTier::new()
    }
}

impl MemoryTier {
    /// An empty sharded map.
    #[must_use]
    pub fn new() -> Self {
        MemoryTier {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            poison_recoveries: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, Arc<JobOutput>>> {
        &self.shards[(key as usize) % SHARDS]
    }

    fn lock<'a, T>(&self, m: &'a Mutex<T>) -> MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|poisoned| {
            self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    fn poison_recoveries(&self) -> u64 {
        self.poison_recoveries.load(Ordering::Relaxed)
    }

    /// Test/chaos hook: poisons the mutex of `key`'s shard by panicking a
    /// throwaway thread while it holds the lock.
    #[doc(hidden)]
    pub fn poison_shard_for_test(&self, key: u64) {
        let shard = self.shard(key);
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let _guard = shard
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                panic!("deliberate poison for test");
            });
            assert!(handle.join().is_err(), "poison thread must panic");
        });
    }
}

impl CacheTier for MemoryTier {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn load(&self, key: u64) -> Option<Arc<JobOutput>> {
        let shard = self.lock(self.shard(key));
        match shard.get(&key) {
            Some(out) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(out))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, key: u64, out: &Arc<JobOutput>) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.lock(self.shard(key)).insert(key, Arc::clone(out));
    }

    fn stats(&self) -> TierStats {
        let entries = self.shards.iter().map(|s| self.lock(s).len() as u64).sum();
        TierStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            evictions: 0,
            corrupt_evicted: 0,
            entries,
            bytes: 0,
        }
    }
}

/// One in-progress computation that followers wait on.
#[derive(Debug)]
struct Flight {
    slot: Mutex<Option<JobResult>>,
    done: Condvar,
}

/// What [`ResultCache::get_or_lead`] tells the caller to do.
#[derive(Debug)]
pub enum CacheOutcome {
    /// The result was already cached (in memory, or promoted from disk).
    Hit(Arc<JobOutput>),
    /// Another thread is computing this key; the caller was blocked until
    /// it finished and this is its result.
    Coalesced(JobResult),
    /// The caller is the leader: it must compute and then call
    /// [`ResultCache::complete`] with the outcome.
    Lead(LeadGuard),
}

/// Proof of leadership for one key. The leader normally consumes the
/// guard via [`ResultCache::complete`]; if it unwinds instead (panic,
/// early return), `Drop` completes the flight with
/// [`ServiceError::Internal`] so followers wake with a typed error
/// instead of waiting forever.
#[derive(Debug)]
pub struct LeadGuard {
    key: u64,
    cache: Arc<CacheInner>,
    completed: bool,
}

/// Monotonic counters describing cache behavior since startup.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the in-memory tier.
    pub hits: u64,
    /// Lookups that became leaders (the job actually ran).
    pub misses: u64,
    /// Lookups that waited on another thread's in-flight computation.
    pub coalesced: u64,
    /// Ready entries currently resident in memory.
    pub entries: u64,
    /// Flights completed by [`LeadGuard`]'s drop backstop because the
    /// leader unwound without publishing (worker panic).
    pub abandoned_flights: u64,
    /// Poisoned locks recovered via `into_inner` (a thread panicked while
    /// holding a cache lock; the data survived).
    pub poison_recoveries: u64,
    /// Lookups answered from the disk tier (and promoted to memory).
    pub disk_hits: u64,
    /// Disk-tier probes that found nothing servable.
    pub disk_misses: u64,
    /// Entries persisted to disk.
    pub disk_writes: u64,
    /// Disk entries evicted to fit the byte budget.
    pub disk_evictions: u64,
    /// Disk files quarantined as corrupt/foreign/torn — deleted, counted,
    /// and the job re-solved; never served.
    pub corrupt_evicted: u64,
    /// Disk entries currently resident.
    pub disk_entries: u64,
    /// Bytes currently resident on disk.
    pub disk_bytes: u64,
}

#[derive(Debug)]
struct CacheInner {
    memory: MemoryTier,
    /// Lower storage tiers in lookup order (today: at most the disk
    /// tier). Held as trait objects so the lookup/promotion walk is
    /// tier-agnostic.
    lower: Vec<Arc<dyn CacheTier>>,
    /// The concrete disk tier, when configured — same object as in
    /// `lower`, kept typed for disk-specific stats and chaos hooks.
    disk: Option<Arc<DiskTier>>,
    /// In-flight computations, sharded like storage but independent of
    /// it: a disk probe never holds a flight lock.
    flights: Vec<Mutex<HashMap<u64, Arc<Flight>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    abandoned_flights: AtomicU64,
    poison_recoveries: AtomicU64,
}

impl CacheInner {
    /// Locks `m`, recovering (and counting) mutex poisoning: the caller
    /// gets a usable guard either way.
    fn lock<'a, T>(&self, m: &'a Mutex<T>) -> MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|poisoned| {
            self.poison_recoveries.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }

    fn flight_shard(&self, key: u64) -> &Mutex<HashMap<u64, Arc<Flight>>> {
        &self.flights[(key as usize) % SHARDS]
    }

    /// Publishes a flight's result: successes are stored into the memory
    /// tier (and, when `write_through`, every lower tier); all followers
    /// wake with a clone. Errors are stored nowhere — the key is simply
    /// freed for the next leader.
    fn publish(&self, key: u64, result: JobResult, write_through: bool) {
        if let Ok(out) = &result {
            self.memory.store(key, out);
            if write_through {
                for tier in &self.lower {
                    tier.store(key, out);
                }
            }
        }
        let flight = self.lock(self.flight_shard(key)).remove(&key);
        if let Some(flight) = flight {
            let mut slot = self.lock(&flight.slot);
            *slot = Some(result);
            flight.done.notify_all();
        }
    }
}

/// A sharded, single-flight, tiered, content-addressed cache of job
/// results.
#[derive(Debug)]
pub struct ResultCache {
    inner: Arc<CacheInner>,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new()
    }
}

impl ResultCache {
    /// An in-memory-only cache (no persistence).
    #[must_use]
    pub fn new() -> Self {
        ResultCache::build(None)
    }

    /// A cache with the persistent disk tier under the memory tier.
    #[must_use]
    pub fn with_disk(disk: Arc<DiskTier>) -> Self {
        ResultCache::build(Some(disk))
    }

    fn build(disk: Option<Arc<DiskTier>>) -> Self {
        let lower: Vec<Arc<dyn CacheTier>> = disk
            .iter()
            .map(|d| Arc::clone(d) as Arc<dyn CacheTier>)
            .collect();
        ResultCache {
            inner: Arc::new(CacheInner {
                memory: MemoryTier::new(),
                lower,
                disk,
                flights: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                abandoned_flights: AtomicU64::new(0),
                poison_recoveries: AtomicU64::new(0),
            }),
        }
    }

    /// The persistent tier, when one is configured.
    #[must_use]
    pub fn disk_tier(&self) -> Option<&Arc<DiskTier>> {
        self.inner.disk.as_ref()
    }

    /// Looks up `key`; on a miss in every tier the caller becomes the
    /// leader and must call [`ResultCache::complete`]. Blocks (briefly)
    /// if another thread is already computing the key. A hit in a lower
    /// tier is promoted to memory before returning.
    pub fn get_or_lead(&self, key: u64) -> CacheOutcome {
        let inner = &self.inner;
        if let Some(out) = inner.memory.load(key) {
            inner.hits.fetch_add(1, Ordering::Relaxed);
            return CacheOutcome::Hit(out);
        }
        let existing = {
            let mut shard = inner.lock(inner.flight_shard(key));
            match shard.get(&key) {
                Some(flight) => Some(Arc::clone(flight)),
                None => {
                    shard.insert(
                        key,
                        Arc::new(Flight {
                            slot: Mutex::new(None),
                            done: Condvar::new(),
                        }),
                    );
                    None
                }
            }
        };
        if let Some(flight) = existing {
            // Follower: wait outside the shard lock. The leader always
            // publishes — by `complete`, by disk promotion, or by its
            // guard's drop backstop — so this wait cannot strand;
            // poisoned waits recover the guard.
            inner.coalesced.fetch_add(1, Ordering::Relaxed);
            let mut slot = inner.lock(&flight.slot);
            while slot.is_none() {
                slot = flight.done.wait(slot).unwrap_or_else(|poisoned| {
                    inner.poison_recoveries.fetch_add(1, Ordering::Relaxed);
                    poisoned.into_inner()
                });
            }
            return CacheOutcome::Coalesced(slot.as_ref().expect("checked above").clone());
        }
        // Leader candidate. A racing leader may have completed between
        // the memory probe and the flight insertion: re-check memory
        // before paying for a disk read or a solve.
        if let Some(out) = inner.memory.load(key) {
            inner.hits.fetch_add(1, Ordering::Relaxed);
            inner.publish(key, Ok(Arc::clone(&out)), false);
            return CacheOutcome::Hit(out);
        }
        // Probe lower tiers top-down; a hit is promoted (published to
        // memory, not written back to its own tier) and releases any
        // followers that coalesced while the disk read ran.
        for tier in &inner.lower {
            if let Some(out) = tier.load(key) {
                inner.publish(key, Ok(Arc::clone(&out)), false);
                return CacheOutcome::Hit(out);
            }
        }
        inner.misses.fetch_add(1, Ordering::Relaxed);
        CacheOutcome::Lead(LeadGuard {
            key,
            cache: Arc::clone(inner),
            completed: false,
        })
    }

    /// Publishes the leader's result: successes are written through every
    /// tier, failures free the key. Either way, all followers wake with a
    /// clone of `result`.
    pub fn complete(&self, mut guard: LeadGuard, result: JobResult) {
        guard.completed = true;
        self.inner.publish(guard.key, result, true);
    }

    /// A memory-tier-only probe that counts a cache hit when it lands
    /// and nothing when it does not. The HTTP front end uses it to
    /// decide whether a request can be answered inline on the event
    /// loop; a miss falls back to a full submission, which does its own
    /// counting (so a probe-then-submit sequence counts exactly once).
    pub fn memory_hit(&self, key: u64) -> Option<Arc<JobOutput>> {
        let out = self.inner.memory.load(key)?;
        self.inner.hits.fetch_add(1, Ordering::Relaxed);
        Some(out)
    }

    /// A non-leading lookup: returns the cached result if ready in any
    /// tier, without counting a cache-level hit or joining an in-flight
    /// computation. A disk hit is still promoted to memory. Used by
    /// `GET /v1/jobs/:id`, which must not block or become a leader.
    pub fn peek(&self, key: u64) -> Option<Arc<JobOutput>> {
        let inner = &self.inner;
        if let Some(out) = inner.memory.load(key) {
            return Some(out);
        }
        for tier in &inner.lower {
            if let Some(out) = tier.load(key) {
                inner.memory.store(key, &out);
                return Some(out);
            }
        }
        None
    }

    /// Whether a leader is currently computing `key`. A pure probe: it
    /// never joins the flight, blocks on its result, or counts anything.
    /// `GET /v1/jobs/:id` uses it to distinguish "still running" (202)
    /// from "submitted but nothing in flight and nothing cached" (404).
    #[must_use]
    pub fn in_flight(&self, key: u64) -> bool {
        let inner = &self.inner;
        inner.lock(inner.flight_shard(key)).contains_key(&key)
    }

    /// Current counter snapshot across all tiers.
    pub fn stats(&self) -> CacheStats {
        let inner = &self.inner;
        let memory = inner.memory.stats();
        let disk = inner.disk.as_ref().map(|d| d.stats()).unwrap_or_default();
        CacheStats {
            hits: inner.hits.load(Ordering::Relaxed),
            misses: inner.misses.load(Ordering::Relaxed),
            coalesced: inner.coalesced.load(Ordering::Relaxed),
            entries: memory.entries,
            abandoned_flights: inner.abandoned_flights.load(Ordering::Relaxed),
            poison_recoveries: inner.poison_recoveries.load(Ordering::Relaxed)
                + inner.memory.poison_recoveries(),
            disk_hits: disk.hits,
            disk_misses: disk.misses,
            disk_writes: disk.writes,
            disk_evictions: disk.evictions,
            corrupt_evicted: disk.corrupt_evicted,
            disk_entries: disk.entries,
            disk_bytes: disk.bytes,
        }
    }

    /// Test/chaos hook: poisons the mutex of `key`'s memory shard by
    /// panicking a throwaway thread while it holds the lock. Regression
    /// tests use this to prove lookups recover instead of propagating the
    /// panic.
    #[doc(hidden)]
    pub fn poison_shard_for_test(&self, key: u64) {
        self.inner.memory.poison_shard_for_test(key);
    }
}

impl Drop for LeadGuard {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        // The leader unwound (panic or early return) without publishing.
        // Complete with a typed error so followers are released and the
        // key is evicted — the crash-safe half of single-flight.
        self.completed = true;
        self.cache.abandoned_flights.fetch_add(1, Ordering::Relaxed);
        self.cache.publish(
            self.key,
            Err(ServiceError::Internal(
                "leader abandoned the flight (worker panic or unwind)".to_string(),
            )),
            false,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{DiskTier, DiskTierConfig};
    use std::thread;

    fn output(v: f64) -> Arc<JobOutput> {
        Arc::new(JobOutput {
            values: vec![v],
            metrics: vec![],
        })
    }

    #[test]
    fn miss_then_hit() {
        let cache = ResultCache::new();
        let guard = match cache.get_or_lead(7) {
            CacheOutcome::Lead(g) => g,
            other => panic!("expected Lead, got {other:?}"),
        };
        cache.complete(guard, Ok(output(1.0)));
        match cache.get_or_lead(7) {
            CacheOutcome::Hit(out) => assert_eq!(out.values, vec![1.0]),
            other => panic!("expected Hit, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        // No disk tier: the disk counters stay zero.
        assert_eq!(
            (stats.disk_hits, stats.disk_misses, stats.disk_writes),
            (0, 0, 0)
        );
    }

    #[test]
    fn followers_coalesce_onto_one_leader() {
        let cache = Arc::new(ResultCache::new());
        let guard = match cache.get_or_lead(42) {
            CacheOutcome::Lead(g) => g,
            other => panic!("expected Lead, got {other:?}"),
        };
        let mut joins = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            joins.push(thread::spawn(move || match cache.get_or_lead(42) {
                CacheOutcome::Coalesced(Ok(out)) => out.values[0],
                other => panic!("expected Coalesced, got {other:?}"),
            }));
        }
        // Give followers time to park, then publish.
        thread::sleep(std::time::Duration::from_millis(20));
        cache.complete(guard, Ok(output(9.0)));
        for j in joins {
            assert_eq!(j.join().unwrap(), 9.0);
        }
        assert_eq!(cache.stats().coalesced, 4);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn errors_propagate_but_are_not_cached() {
        let cache = ResultCache::new();
        let guard = match cache.get_or_lead(3) {
            CacheOutcome::Lead(g) => g,
            other => panic!("expected Lead, got {other:?}"),
        };
        cache.complete(guard, Err(ServiceError::Analysis("diverged".into())));
        // The key is free again: the next lookup leads, not hits.
        match cache.get_or_lead(3) {
            CacheOutcome::Lead(g) => cache.complete(g, Ok(output(2.0))),
            other => panic!("expected Lead after error, got {other:?}"),
        }
        assert_eq!(cache.stats().entries, 1);
    }

    /// Regression (ISSUE 5): a leader that panics mid-job must release
    /// its followers with a typed error and leave the key usable, not
    /// strand them or poison the shard for every later request.
    #[test]
    fn panicking_leader_releases_followers_and_frees_the_key() {
        let cache = Arc::new(ResultCache::new());
        let guard = match cache.get_or_lead(11) {
            CacheOutcome::Lead(g) => g,
            other => panic!("expected Lead, got {other:?}"),
        };
        let mut followers = Vec::new();
        for _ in 0..3 {
            let cache = Arc::clone(&cache);
            followers.push(thread::spawn(move || match cache.get_or_lead(11) {
                CacheOutcome::Coalesced(result) => result,
                other => panic!("expected Coalesced, got {other:?}"),
            }));
        }
        thread::sleep(std::time::Duration::from_millis(20));
        // The "worker": panics while owning the guard.
        let leader = thread::spawn(move || {
            let _guard = guard;
            panic!("injected worker panic");
        });
        assert!(leader.join().is_err());
        for f in followers {
            let result = f.join().expect("follower must not be stranded");
            assert!(
                matches!(result, Err(ServiceError::Internal(_))),
                "followers get the typed abandonment error, got {result:?}"
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.abandoned_flights, 1);
        // The key is free: the next caller leads and can cache normally.
        match cache.get_or_lead(11) {
            CacheOutcome::Lead(g) => cache.complete(g, Ok(output(5.0))),
            other => panic!("expected Lead after abandonment, got {other:?}"),
        }
        match cache.get_or_lead(11) {
            CacheOutcome::Hit(out) => assert_eq!(out.values, vec![5.0]),
            other => panic!("expected Hit, got {other:?}"),
        }
    }

    /// Regression (ISSUE 6): a leader that dies *mid-batch* — after some
    /// scenarios solved but before `complete` — must cache nothing. The
    /// only publishable value is the full output passed to `complete`;
    /// the abandonment backstop evicts the key, so the next caller leads
    /// again and recomputes the whole batch.
    #[test]
    fn abandoned_batch_flight_caches_no_partial_scenarios() {
        let cache = Arc::new(ResultCache::new());
        let guard = match cache.get_or_lead(6) {
            CacheOutcome::Lead(g) => g,
            other => panic!("expected Lead, got {other:?}"),
        };
        // The "worker" solves scenario 0 of 3, then panics before the
        // batch completes. Its partial values die with the stack frame.
        let leader = thread::spawn(move || {
            let _guard = guard;
            let _partial = [1.0_f64]; // scenario 0 of 3
            panic!("injected fault: worker panic mid-batch");
        });
        assert!(leader.join().is_err());
        assert!(cache.peek(6).is_none(), "partial batch must not be cached");
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().abandoned_flights, 1);
        // The next caller leads and publishes the complete batch.
        match cache.get_or_lead(6) {
            CacheOutcome::Lead(g) => cache.complete(
                g,
                Ok(Arc::new(JobOutput {
                    values: vec![1.0, 2.0, 3.0],
                    metrics: vec![("scenarios".to_string(), 3.0)],
                })),
            ),
            other => panic!("expected Lead after abandonment, got {other:?}"),
        }
        assert_eq!(cache.peek(6).unwrap().values.len(), 3);
    }

    /// Regression (ISSUE 5): a poisoned shard mutex — a thread panicked
    /// while holding it — must not turn every later lookup on that shard
    /// into a panic. The old code `.expect("cache shard poisoned")`ed.
    #[test]
    fn poisoned_shard_recovers_instead_of_panicking() {
        let cache = ResultCache::new();
        // Seed an entry, then poison its shard.
        match cache.get_or_lead(21) {
            CacheOutcome::Lead(g) => cache.complete(g, Ok(output(7.0))),
            other => panic!("expected Lead, got {other:?}"),
        }
        cache.poison_shard_for_test(21);
        // Data survives the poison: hit still served, peek still works,
        // stats still readable, new keys on the shard still lead.
        match cache.get_or_lead(21) {
            CacheOutcome::Hit(out) => assert_eq!(out.values, vec![7.0]),
            other => panic!("expected Hit through poisoned shard, got {other:?}"),
        }
        assert_eq!(cache.peek(21).unwrap().values, vec![7.0]);
        let same_shard_key = 21 + 16; // SHARDS = 16
        match cache.get_or_lead(same_shard_key) {
            CacheOutcome::Lead(g) => cache.complete(g, Ok(output(8.0))),
            other => panic!("expected Lead, got {other:?}"),
        }
        let stats = cache.stats();
        assert!(
            stats.poison_recoveries >= 1,
            "recovery must be counted: {stats:?}"
        );
        assert_eq!(stats.entries, 2);
    }

    fn disk_cache(tag: &str) -> (ResultCache, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "si-cache-tiered-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = Arc::new(DiskTier::open(DiskTierConfig::at(&dir)).unwrap());
        (ResultCache::with_disk(disk), dir)
    }

    /// ISSUE 8: a completed job is written through to disk, and a *fresh*
    /// cache over the same directory serves it — as a disk hit promoted
    /// to memory — without any leader running.
    #[test]
    fn write_through_survives_a_cache_restart() {
        let (cache, dir) = disk_cache("restart");
        match cache.get_or_lead(99) {
            CacheOutcome::Lead(g) => cache.complete(g, Ok(output(6.5))),
            other => panic!("expected Lead, got {other:?}"),
        }
        assert_eq!(cache.stats().disk_writes, 1);
        drop(cache);

        // "Restart": a brand-new cache (empty memory tier) on the dir.
        let disk = Arc::new(DiskTier::open(DiskTierConfig::at(&dir)).unwrap());
        let cache = ResultCache::with_disk(disk);
        match cache.get_or_lead(99) {
            CacheOutcome::Hit(out) => assert_eq!(out.values, vec![6.5]),
            other => panic!("expected disk Hit after restart, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(stats.misses, 0, "no leader ran");
        // Promotion: the second lookup is a pure memory hit.
        match cache.get_or_lead(99) {
            CacheOutcome::Hit(_) => {}
            other => panic!("expected memory Hit after promotion, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.disk_hits), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// ISSUE 8: errors never reach the disk tier either.
    #[test]
    fn errors_are_never_persisted() {
        let (cache, dir) = disk_cache("errors");
        match cache.get_or_lead(5) {
            CacheOutcome::Lead(g) => {
                cache.complete(g, Err(ServiceError::Analysis("diverged".into())));
            }
            other => panic!("expected Lead, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!(stats.disk_writes, 0);
        assert_eq!(stats.disk_entries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// ISSUE 8: an abandoned (panicked) leader writes nothing to disk —
    /// the drop backstop publishes an error, and errors are not
    /// persisted.
    #[test]
    fn abandoned_flight_persists_nothing() {
        let (cache, dir) = disk_cache("abandon");
        let guard = match cache.get_or_lead(13) {
            CacheOutcome::Lead(g) => g,
            other => panic!("expected Lead, got {other:?}"),
        };
        let leader = thread::spawn(move || {
            let _guard = guard;
            panic!("injected worker panic");
        });
        assert!(leader.join().is_err());
        let stats = cache.stats();
        assert_eq!(stats.abandoned_flights, 1);
        assert_eq!(stats.disk_writes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The disk probe happens under flight leadership, so concurrent
    /// callers of an on-disk key coalesce onto ONE disk read.
    #[test]
    fn disk_promotion_is_single_flight() {
        let (cache, dir) = disk_cache("singleflight");
        match cache.get_or_lead(31) {
            CacheOutcome::Lead(g) => cache.complete(g, Ok(output(3.25))),
            other => panic!("expected Lead, got {other:?}"),
        }
        drop(cache);
        let disk = Arc::new(DiskTier::open(DiskTierConfig::at(&dir)).unwrap());
        let cache = Arc::new(ResultCache::with_disk(disk));
        let mut joins = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            joins.push(thread::spawn(move || match cache.get_or_lead(31) {
                CacheOutcome::Hit(out) | CacheOutcome::Coalesced(Ok(out)) => out.values[0],
                other => panic!("expected Hit/Coalesced, got {other:?}"),
            }));
        }
        for j in joins {
            assert_eq!(j.join().unwrap(), 3.25);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 0, "nobody led a solve");
        assert!(
            stats.disk_hits <= 2,
            "concurrent lookups must coalesce onto few disk reads, saw {}",
            stats.disk_hits
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
