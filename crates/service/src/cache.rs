//! The content-addressed result cache with single-flight deduplication.
//!
//! Keys are [`JobSpec::job_key`](crate::jobspec::JobSpec::job_key) values;
//! entries are `Arc`-shared [`JobOutput`](crate::jobspec::JobOutput)s.
//! When several clients ask for the same key concurrently, exactly one
//! (the *leader*) computes; the rest (*followers*) block on a condvar and
//! receive the leader's result — the "single-flight" discipline that
//! keeps a thundering herd of identical jobs from multiplying solver
//! work. Errors are handed to waiting followers but never cached: a
//! transient non-convergence should not poison the key forever.
//!
//! The map is sharded by the low bits of the key so unrelated jobs do not
//! contend on one lock; each shard's critical sections only move `Arc`s.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::error::ServiceError;
use crate::jobspec::JobOutput;

const SHARDS: usize = 16;

type JobResult = Result<Arc<JobOutput>, ServiceError>;

/// One in-progress computation that followers wait on.
#[derive(Debug)]
struct Flight {
    slot: Mutex<Option<JobResult>>,
    done: Condvar,
}

#[derive(Debug, Clone)]
enum Entry {
    Ready(Arc<JobOutput>),
    InFlight(Arc<Flight>),
}

/// What [`ResultCache::get_or_lead`] tells the caller to do.
#[derive(Debug)]
pub enum CacheOutcome {
    /// The result was already cached.
    Hit(Arc<JobOutput>),
    /// Another thread is computing this key; the caller was blocked until
    /// it finished and this is its result.
    Coalesced(JobResult),
    /// The caller is the leader: it must compute and then call
    /// [`ResultCache::complete`] with the outcome.
    Lead(LeadGuard),
}

/// Proof of leadership for one key. The leader *must* consume the guard
/// via [`ResultCache::complete`]; dropping it without completing would
/// strand followers, so `Drop` completes with [`ServiceError::Canceled`]
/// as a backstop (a panicking worker still wakes its followers).
#[derive(Debug)]
pub struct LeadGuard {
    key: u64,
    completed: bool,
}

/// Monotonic counters describing cache behavior since startup.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a ready entry.
    pub hits: u64,
    /// Lookups that became leaders (the job actually ran).
    pub misses: u64,
    /// Lookups that waited on another thread's in-flight computation.
    pub coalesced: u64,
    /// Ready entries currently resident.
    pub entries: u64,
}

/// A sharded, single-flight, content-addressed cache of job results.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<HashMap<u64, Entry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new()
    }
}

impl ResultCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, Entry>> {
        &self.shards[(key as usize) % SHARDS]
    }

    /// Looks up `key`; on a miss the caller becomes the leader and must
    /// call [`ResultCache::complete`]. Blocks (briefly) if another thread
    /// is already computing the key.
    pub fn get_or_lead(&self, key: u64) -> CacheOutcome {
        let flight = {
            let mut shard = self.shard(key).lock().expect("cache shard poisoned");
            match shard.get(&key) {
                Some(Entry::Ready(out)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return CacheOutcome::Hit(Arc::clone(out));
                }
                Some(Entry::InFlight(flight)) => Arc::clone(flight),
                None => {
                    shard.insert(
                        key,
                        Entry::InFlight(Arc::new(Flight {
                            slot: Mutex::new(None),
                            done: Condvar::new(),
                        })),
                    );
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return CacheOutcome::Lead(LeadGuard {
                        key,
                        completed: false,
                    });
                }
            }
        };
        // Follower: wait outside the shard lock.
        self.coalesced.fetch_add(1, Ordering::Relaxed);
        let mut slot = flight.slot.lock().expect("flight poisoned");
        while slot.is_none() {
            slot = flight.done.wait(slot).expect("flight poisoned");
        }
        CacheOutcome::Coalesced(slot.as_ref().expect("checked above").clone())
    }

    /// Publishes the leader's result: successes become ready entries,
    /// failures evict the key. Either way, all followers wake with a
    /// clone of `result`.
    pub fn complete(&self, mut guard: LeadGuard, result: JobResult) {
        guard.completed = true;
        let key = guard.key;
        let flight = {
            let mut shard = self.shard(key).lock().expect("cache shard poisoned");
            let prev = match &result {
                Ok(out) => shard.insert(key, Entry::Ready(Arc::clone(out))),
                Err(_) => shard.remove(&key),
            };
            match prev {
                Some(Entry::InFlight(flight)) => Some(flight),
                // A Ready entry can only appear here if the same key was
                // completed twice, which leadership rules out; tolerate it.
                _ => None,
            }
        };
        if let Some(flight) = flight {
            let mut slot = flight.slot.lock().expect("flight poisoned");
            *slot = Some(result);
            flight.done.notify_all();
        }
    }

    /// A non-leading lookup: returns the cached result if ready, without
    /// counting a hit or joining an in-flight computation. Used by
    /// `GET /v1/jobs/:id`, which must not block or become a leader.
    pub fn peek(&self, key: u64) -> Option<Arc<JobOutput>> {
        let shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.get(&key) {
            Some(Entry::Ready(out)) => Some(Arc::clone(out)),
            _ => None,
        }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("cache shard poisoned")
                    .values()
                    .filter(|e| matches!(e, Entry::Ready(_)))
                    .count() as u64
            })
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            entries,
        }
    }
}

impl Drop for LeadGuard {
    fn drop(&mut self) {
        // `complete` marks the guard; reaching here un-completed means the
        // leader unwound (panic or early return). There is no cache handle
        // in the guard, so the service wraps leader execution in
        // `catch_unwind`-free straight-line code and always completes; this
        // flag is a debug tripwire rather than a recovery path.
        debug_assert!(self.completed, "LeadGuard dropped without complete()");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn output(v: f64) -> Arc<JobOutput> {
        Arc::new(JobOutput {
            values: vec![v],
            metrics: vec![],
        })
    }

    #[test]
    fn miss_then_hit() {
        let cache = ResultCache::new();
        let guard = match cache.get_or_lead(7) {
            CacheOutcome::Lead(g) => g,
            other => panic!("expected Lead, got {other:?}"),
        };
        cache.complete(guard, Ok(output(1.0)));
        match cache.get_or_lead(7) {
            CacheOutcome::Hit(out) => assert_eq!(out.values, vec![1.0]),
            other => panic!("expected Hit, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn followers_coalesce_onto_one_leader() {
        let cache = Arc::new(ResultCache::new());
        let guard = match cache.get_or_lead(42) {
            CacheOutcome::Lead(g) => g,
            other => panic!("expected Lead, got {other:?}"),
        };
        let mut joins = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            joins.push(thread::spawn(move || match cache.get_or_lead(42) {
                CacheOutcome::Coalesced(Ok(out)) => out.values[0],
                other => panic!("expected Coalesced, got {other:?}"),
            }));
        }
        // Give followers time to park, then publish.
        thread::sleep(std::time::Duration::from_millis(20));
        cache.complete(guard, Ok(output(9.0)));
        for j in joins {
            assert_eq!(j.join().unwrap(), 9.0);
        }
        assert_eq!(cache.stats().coalesced, 4);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn errors_propagate_but_are_not_cached() {
        let cache = ResultCache::new();
        let guard = match cache.get_or_lead(3) {
            CacheOutcome::Lead(g) => g,
            other => panic!("expected Lead, got {other:?}"),
        };
        cache.complete(guard, Err(ServiceError::Analysis("diverged".into())));
        // The key is free again: the next lookup leads, not hits.
        match cache.get_or_lead(3) {
            CacheOutcome::Lead(g) => cache.complete(g, Ok(output(2.0))),
            other => panic!("expected Lead after error, got {other:?}"),
        }
        assert_eq!(cache.stats().entries, 1);
    }
}
