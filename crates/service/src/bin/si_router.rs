//! `si-router`: the consistent-hash sharding front end.
//!
//! ```text
//! si_router --replica HOST:PORT [--replica HOST:PORT ...]
//!           [--addr HOST:PORT] [--vnodes N] [--probe-interval-ms MS]
//!           [--probe-timeout-ms MS] [--forward-timeout-ms MS]
//!           [--max-in-flight N] [--jitter-seed N] [--no-warm]
//! ```
//!
//! Speaks the same HTTP API as `si_serve` and forwards each job to the
//! replica that owns its circuit topology on the hash ring (see
//! [`si_service::router`]). Prints the bound address on stdout
//! (`listening on <addr>`) once ready, so scripts can bind port 0 and
//! scrape the real port. Runs until killed.
//!
//! `--no-warm` disables pulling moved cache entries to their new owner
//! on ring changes; `--jitter-seed` pins the failover backoff jitter
//! for reproducible chaos runs.

use std::time::Duration;

use si_service::router::{RouterConfig, RouterServer};

struct Args {
    addr: String,
    config: RouterConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7800".to_string(),
        config: RouterConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        let parse_u64 = |name: &str, v: String| {
            v.parse::<u64>()
                .map_err(|_| format!("{name} must be an integer"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--replica" => args.config.replicas.push(value("--replica")?),
            "--vnodes" => {
                args.config.vnodes = parse_u64("--vnodes", value("--vnodes")?)? as usize;
            }
            "--probe-interval-ms" => {
                args.config.probe_interval = Duration::from_millis(parse_u64(
                    "--probe-interval-ms",
                    value("--probe-interval-ms")?,
                )?);
            }
            "--probe-timeout-ms" => {
                args.config.probe_timeout = Duration::from_millis(parse_u64(
                    "--probe-timeout-ms",
                    value("--probe-timeout-ms")?,
                )?);
            }
            "--forward-timeout-ms" => {
                args.config.forward_timeout = Duration::from_millis(parse_u64(
                    "--forward-timeout-ms",
                    value("--forward-timeout-ms")?,
                )?);
            }
            "--max-in-flight" => {
                args.config.max_in_flight =
                    parse_u64("--max-in-flight", value("--max-in-flight")?)? as usize;
            }
            "--jitter-seed" => {
                args.config.retry.jitter_seed =
                    Some(parse_u64("--jitter-seed", value("--jitter-seed")?)?);
            }
            "--no-warm" => args.config.warm_on_ring_change = false,
            "--help" | "-h" => {
                return Err([
                    "usage: si_router --replica HOST:PORT [--replica HOST:PORT ...]",
                    "                 [--addr HOST:PORT] [--vnodes N]",
                    "                 [--probe-interval-ms MS] [--probe-timeout-ms MS]",
                    "                 [--forward-timeout-ms MS] [--max-in-flight N]",
                    "                 [--jitter-seed N] [--no-warm]",
                ]
                .join("\n"));
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.config.replicas.is_empty() {
        return Err("at least one --replica is required".to_string());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let server = match RouterServer::bind(&args.addr, args.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    // Serve until the process is killed; threads own the work.
    loop {
        std::thread::park();
    }
}
