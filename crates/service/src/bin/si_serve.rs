//! `si-serve`: the simulation job service daemon.
//!
//! ```text
//! si_serve [--addr HOST:PORT] [--workers N] [--queue N] [--timeout-ms MS]
//! ```
//!
//! Prints the bound address on stdout (`listening on <addr>`) once ready,
//! so scripts can bind port 0 and scrape the real port. Runs until killed;
//! every admitted job finishes before exit thanks to the pool's drain.

use std::sync::Arc;
use std::time::Duration;

use si_service::http::HttpServer;
use si_service::service::{ServiceConfig, SiService};

struct Args {
    addr: String,
    workers: usize,
    queue: usize,
    timeout_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        workers: 4,
        queue: 64,
        timeout_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be an integer".to_string())?;
            }
            "--queue" => {
                args.queue = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue must be an integer".to_string())?;
            }
            "--timeout-ms" => {
                args.timeout_ms = Some(
                    value("--timeout-ms")?
                        .parse()
                        .map_err(|_| "--timeout-ms must be an integer".to_string())?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: si_serve [--addr HOST:PORT] [--workers N] [--queue N] [--timeout-ms MS]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let service = Arc::new(SiService::new(ServiceConfig {
        workers: args.workers,
        queue_capacity: args.queue,
        default_deadline: args.timeout_ms.map(Duration::from_millis),
    }));
    let server = match HttpServer::bind(&args.addr, service) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    // Serve until the process is killed; the accept thread owns the loop.
    loop {
        std::thread::park();
    }
}
