//! `si-serve`: the simulation job service daemon.
//!
//! ```text
//! si_serve [--addr HOST:PORT] [--workers N] [--queue N] [--timeout-ms MS]
//!          [--max-conns N] [--read-timeout-ms MS] [--max-body-bytes N]
//!          [--cache-dir PATH] [--cache-budget-bytes N]
//! ```
//!
//! Prints the bound address on stdout (`listening on <addr>`) once ready,
//! so scripts can bind port 0 and scrape the real port. Runs until killed;
//! every admitted job finishes before exit thanks to the pool's drain.
//!
//! The listener hardening knobs (`--max-conns`, `--read-timeout-ms`,
//! `--max-body-bytes`) map straight onto
//! [`HttpConfig`](si_service::http::HttpConfig); see its docs for what
//! each bound rejects (`503`, `408`, `413` respectively).
//!
//! `--cache-dir` enables the persistent result tier
//! ([`DiskTier`](si_service::disk::DiskTier)): solved jobs survive a
//! restart (even `SIGKILL`) and are served from disk bit-identically.
//! `--cache-budget-bytes` caps its footprint (default 256 MiB,
//! least-recently-accessed evicted first).

use std::sync::Arc;
use std::time::Duration;

use si_service::http::{HttpConfig, HttpServer};
use si_service::service::{ServiceConfig, SiService};

struct Args {
    addr: String,
    workers: usize,
    queue: usize,
    timeout_ms: Option<u64>,
    max_conns: usize,
    read_timeout_ms: u64,
    max_body_bytes: usize,
    cache_dir: Option<std::path::PathBuf>,
    cache_budget_bytes: u64,
}

fn parse_args() -> Result<Args, String> {
    let http_defaults = HttpConfig::default();
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        workers: 4,
        queue: 64,
        timeout_ms: None,
        max_conns: http_defaults.max_connections,
        read_timeout_ms: http_defaults.read_timeout.as_millis() as u64,
        max_body_bytes: http_defaults.max_body_bytes,
        cache_dir: None,
        cache_budget_bytes: 256 << 20,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        let parse_usize = |name: &str, v: String| {
            v.parse::<usize>()
                .map_err(|_| format!("{name} must be an integer"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => args.workers = parse_usize("--workers", value("--workers")?)?,
            "--queue" => args.queue = parse_usize("--queue", value("--queue")?)?,
            "--timeout-ms" => {
                args.timeout_ms = Some(
                    value("--timeout-ms")?
                        .parse()
                        .map_err(|_| "--timeout-ms must be an integer".to_string())?,
                );
            }
            "--max-conns" => args.max_conns = parse_usize("--max-conns", value("--max-conns")?)?,
            "--read-timeout-ms" => {
                args.read_timeout_ms = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|_| "--read-timeout-ms must be an integer".to_string())?;
            }
            "--max-body-bytes" => {
                args.max_body_bytes = parse_usize("--max-body-bytes", value("--max-body-bytes")?)?;
            }
            "--cache-dir" => {
                args.cache_dir = Some(std::path::PathBuf::from(value("--cache-dir")?));
            }
            "--cache-budget-bytes" => {
                args.cache_budget_bytes = value("--cache-budget-bytes")?
                    .parse()
                    .map_err(|_| "--cache-budget-bytes must be an integer".to_string())?;
            }
            "--help" | "-h" => {
                return Err([
                    "usage: si_serve [--addr HOST:PORT] [--workers N] [--queue N]",
                    "                [--timeout-ms MS] [--max-conns N]",
                    "                [--read-timeout-ms MS] [--max-body-bytes N]",
                    "                [--cache-dir PATH] [--cache-budget-bytes N]",
                ]
                .join("\n"));
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let service = Arc::new(SiService::new(ServiceConfig {
        workers: args.workers,
        queue_capacity: args.queue,
        default_deadline: args.timeout_ms.map(Duration::from_millis),
        cache_dir: args.cache_dir,
        cache_budget_bytes: args.cache_budget_bytes,
        ..ServiceConfig::default()
    }));
    let http = HttpConfig {
        read_timeout: Duration::from_millis(args.read_timeout_ms.max(1)),
        max_connections: args.max_conns,
        max_body_bytes: args.max_body_bytes,
        ..HttpConfig::default()
    };
    let server = match HttpServer::bind_with(&args.addr, service, http) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    // Serve until the process is killed; the accept thread owns the loop.
    loop {
        std::thread::park();
    }
}
