//! Typed service errors.
//!
//! Every failure mode a client can observe has its own variant, so both
//! the HTTP layer (status codes) and in-process callers (soak tests,
//! load generators) can match on *what* went wrong instead of parsing
//! strings. The error is `Clone` because a single computation may be
//! shared by many coalesced waiters: the leader's failure is handed to
//! every follower of the same job key.

use std::fmt;

/// What went wrong with a job submission or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The bounded queue was full: the job was rejected at admission, not
    /// queued. Clients should back off and retry.
    Overloaded {
        /// Queue capacity at the time of rejection.
        queue_capacity: usize,
    },
    /// The job did not finish before its deadline. The result (if the
    /// solve eventually completed) is discarded, not cached.
    DeadlineExceeded,
    /// The job was cancelled before a worker picked it up.
    Canceled,
    /// The job specification failed validation or could not be parsed.
    InvalidSpec(String),
    /// The underlying analysis failed (non-convergence, singular matrix,
    /// bad parameters). Carries the stringified analog/modulator error.
    Analysis(String),
    /// A *transient* analysis failure (the solver ran out of Newton
    /// budget). Unlike [`ServiceError::Analysis`], this is worth
    /// retrying: a warmer workspace or a later attempt may converge.
    /// Injected faults also surface here.
    Transient(String),
    /// The worker computing this job panicked or disappeared before
    /// replying. The flight was released, nothing was cached.
    Internal(String),
    /// The service is draining and no longer admits jobs.
    ShuttingDown,
    /// A submitted netlist failed the strict dialect-v1 parse. Carries the
    /// rendered parse error (line/column/reason). Maps to `422`.
    NetlistRejected(String),
    /// A submitted circuit exceeded the pre-solve admission budget: the
    /// priced resource, the submitted amount and the configured limit.
    /// Rejected before any factorization or Newton iteration. Maps to
    /// `413`.
    BudgetExceeded {
        /// Which resource was over budget (`netlist_bytes`, `nodes`,
        /// `devices`, `mna_dim`, `nonzeros`).
        resource: &'static str,
        /// The amount the submission asked for.
        actual: u64,
        /// The configured ceiling.
        limit: u64,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { queue_capacity } => {
                write!(f, "overloaded: queue of {queue_capacity} jobs is full")
            }
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServiceError::Canceled => write!(f, "canceled"),
            ServiceError::InvalidSpec(msg) => write!(f, "invalid job spec: {msg}"),
            ServiceError::Analysis(msg) => write!(f, "analysis failed: {msg}"),
            ServiceError::Transient(msg) => write!(f, "transient failure: {msg}"),
            ServiceError::Internal(msg) => write!(f, "internal error: {msg}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::NetlistRejected(msg) => write!(f, "netlist rejected: {msg}"),
            ServiceError::BudgetExceeded {
                resource,
                actual,
                limit,
            } => write!(
                f,
                "admission budget exceeded: {resource} {actual} over limit {limit}"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

impl ServiceError {
    /// The HTTP status code this error maps to on the wire.
    ///
    /// Load-shed rejections ([`ServiceError::Overloaded`],
    /// [`ServiceError::ShuttingDown`]) and transient failures are `503`
    /// so well-behaved clients back off and retry (the response carries a
    /// `Retry-After` header); permanent failures keep their 4xx/5xx
    /// classes.
    #[must_use]
    pub fn http_status(&self) -> u16 {
        match self {
            ServiceError::Overloaded { .. } => 503,
            ServiceError::DeadlineExceeded => 504,
            ServiceError::Canceled => 499,
            ServiceError::InvalidSpec(_) => 400,
            ServiceError::Analysis(_) => 422,
            ServiceError::Transient(_) => 503,
            ServiceError::Internal(_) => 500,
            ServiceError::ShuttingDown => 503,
            ServiceError::NetlistRejected(_) => 422,
            ServiceError::BudgetExceeded { .. } => 413,
        }
    }

    /// A short machine-readable code for the JSON error body.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::Overloaded { .. } => "overloaded",
            ServiceError::DeadlineExceeded => "deadline_exceeded",
            ServiceError::Canceled => "canceled",
            ServiceError::InvalidSpec(_) => "invalid_spec",
            ServiceError::Analysis(_) => "analysis_failed",
            ServiceError::Transient(_) => "transient",
            ServiceError::Internal(_) => "internal",
            ServiceError::ShuttingDown => "shutting_down",
            ServiceError::NetlistRejected(_) => "netlist_rejected",
            ServiceError::BudgetExceeded { .. } => "budget_exceeded",
        }
    }

    /// Whether a retry of the same submission can plausibly succeed.
    ///
    /// Transient solver failures and worker crashes are retryable (the
    /// flight was released and nothing was cached); overload is retryable
    /// *by clients* after backing off, but the service itself does not
    /// re-enqueue overloaded work — that would defeat admission control —
    /// so [`crate::service::SiService`] only auto-retries the first two.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(self, ServiceError::Transient(_) | ServiceError::Internal(_))
    }

    /// Whether a *client* should back off and resubmit: everything
    /// [`ServiceError::is_retryable`] covers plus load-shed rejections.
    #[must_use]
    pub fn is_client_retryable(&self) -> bool {
        self.is_retryable() || matches!(self, ServiceError::Overloaded { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_failure() {
        let cases: Vec<(ServiceError, &str)> = vec![
            (ServiceError::Overloaded { queue_capacity: 8 }, "queue of 8"),
            (ServiceError::DeadlineExceeded, "deadline"),
            (ServiceError::Canceled, "canceled"),
            (ServiceError::InvalidSpec("bad stages".into()), "bad stages"),
            (
                ServiceError::Analysis("no convergence".into()),
                "no convergence",
            ),
            (
                ServiceError::Transient("iteration budget".into()),
                "transient",
            ),
            (
                ServiceError::Internal("worker panicked".into()),
                "worker panicked",
            ),
            (ServiceError::ShuttingDown, "shutting down"),
            (
                ServiceError::NetlistRejected("line 2, column 8: bad value".into()),
                "line 2, column 8",
            ),
            (
                ServiceError::BudgetExceeded {
                    resource: "nonzeros",
                    actual: 120000,
                    limit: 65536,
                },
                "nonzeros 120000 over limit 65536",
            ),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn http_status_mapping_is_stable() {
        assert_eq!(
            ServiceError::Overloaded { queue_capacity: 1 }.http_status(),
            503
        );
        assert_eq!(ServiceError::DeadlineExceeded.http_status(), 504);
        assert_eq!(ServiceError::InvalidSpec(String::new()).http_status(), 400);
        assert_eq!(ServiceError::Transient(String::new()).http_status(), 503);
        assert_eq!(ServiceError::Internal(String::new()).http_status(), 500);
        assert_eq!(ServiceError::ShuttingDown.http_status(), 503);
        assert_eq!(
            ServiceError::NetlistRejected(String::new()).http_status(),
            422
        );
        assert_eq!(
            ServiceError::BudgetExceeded {
                resource: "nodes",
                actual: 10,
                limit: 1,
            }
            .http_status(),
            413
        );
    }

    #[test]
    fn retryability_is_typed() {
        assert!(ServiceError::Transient(String::new()).is_retryable());
        assert!(ServiceError::Internal(String::new()).is_retryable());
        assert!(!ServiceError::Overloaded { queue_capacity: 4 }.is_retryable());
        assert!(ServiceError::Overloaded { queue_capacity: 4 }.is_client_retryable());
        assert!(!ServiceError::InvalidSpec(String::new()).is_retryable());
        assert!(!ServiceError::Analysis(String::new()).is_client_retryable());
        assert!(!ServiceError::DeadlineExceeded.is_retryable());
        assert!(!ServiceError::ShuttingDown.is_retryable());
        assert!(!ServiceError::NetlistRejected(String::new()).is_client_retryable());
        assert!(!ServiceError::BudgetExceeded {
            resource: "devices",
            actual: 2,
            limit: 1,
        }
        .is_client_retryable());
    }
}
