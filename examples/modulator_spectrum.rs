//! Run the paper's SI ΔΣ modulator at its Fig. 5 operating point and print
//! a coarse ASCII rendering of the output spectrum, plus the headline
//! metrics. Shows the classic second-order shape: tone at 2 kHz, noise
//! floor rising 40 dB/decade toward fs/2.
//!
//! Run: `cargo run --release -p si-bench --example modulator_spectrum`

use si_modulator::measure::{measure, MeasurementConfig};
use si_modulator::si::{SiModulator, SiModulatorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = MeasurementConfig::paper_fig5();
    cfg.record_len = 16_384; // keep the example fast
    let mut modulator = SiModulator::new(SiModulatorConfig::paper_08um())?;
    let meas = measure(&mut modulator, &cfg)?;

    println!(
        "SI ΔΣ modulator, {:.2} MHz clock, {:.0} Hz −6 dB tone:",
        cfg.clock_hz / 1e6,
        meas.signal_hz
    );
    println!("  THD   = {:6.1} dB  (paper: −61 dB)", meas.thd_db);
    println!(
        "  SNR   = {:6.1} dB  (paper:  58 dB, 10 kHz band)",
        meas.snr_db
    );
    println!("  SINAD = {:6.1} dB", meas.sinad_db);
    println!();

    // ASCII spectrum: 64 log-spaced columns from 100 Hz to Nyquist.
    let db = meas.spectrum_dbfs();
    let n_cols = 64;
    let f_lo: f64 = 100.0;
    let f_hi = cfg.clock_hz / 2.0;
    let mut cols = vec![f64::NEG_INFINITY; n_cols];
    for (bin, &level) in db.iter().enumerate().skip(1) {
        let f = meas.spectrum.bin_frequency(bin, cfg.clock_hz);
        if f < f_lo {
            continue;
        }
        let u = ((f / f_lo).ln() / (f_hi / f_lo).ln() * n_cols as f64) as usize;
        let u = u.min(n_cols - 1);
        cols[u] = cols[u].max(level);
    }
    println!(
        "spectrum (dBFS, log frequency axis 100 Hz … {:.2} MHz):",
        f_hi / 1e6
    );
    for row in 0..14 {
        let top = -(row as f64) * 10.0; // row covers (top−10, top]
        let mut line = format!("{top:>5.0} |");
        for &c in &cols {
            let in_band = if row == 0 {
                c > top - 10.0 // everything above −10 dB collapses here
            } else {
                c > top - 10.0 && c <= top
            };
            line.push(if in_band { '*' } else { ' ' });
        }
        println!("{line}");
    }
    println!("      +{}", "-".repeat(n_cols));
    Ok(())
}
