//! Common-mode feedforward vs feedback, side by side — the Section III
//! argument as running code.
//!
//! A delay line is driven with a differential tone riding on a common-mode
//! disturbance; the example prints the residual common mode and the
//! differential distortion each control scheme leaves behind, plus the
//! power cost of each.
//!
//! Run: `cargo run --release -p si-bench --example cmff_vs_cmfb`

use si_analog::units::{Amps, Volts};
use si_core::blocks::DelayLine;
use si_core::cell::ClassAbCell;
use si_core::cm::{Cmfb, Cmff, CommonModeControl};
use si_core::params::ClassAbParams;
use si_core::power::SystemPower;
use si_core::Diff;
use si_dsp::metrics::HarmonicAnalysis;
use si_dsp::spectrum::Spectrum;
use si_dsp::window::Window;

fn run_line(
    cm: Box<dyn CommonModeControl + Send>,
) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    let params = ClassAbParams::paper_08um();
    let cells = vec![
        ClassAbCell::new(&params, 11)?,
        ClassAbCell::new(&params, 12)?,
    ];
    let mut line = DelayLine::from_cells(cells, cm)?;
    let n = 16_384;
    let mut cm_rms = 0.0;
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let t = k as f64 / n as f64;
        let dm = 8e-6 * (2.0 * std::f64::consts::PI * 65.0 * t).sin();
        // Common-mode disturbance: a slow wander plus a step halfway.
        let cm_in = 2e-6 * (2.0 * std::f64::consts::PI * 3.0 * t).sin()
            + if k > n / 2 { 1e-6 } else { 0.0 };
        let y = line.process(Diff::from_modes(dm, cm_in));
        cm_rms += y.cm() * y.cm();
        out.push(y.dm() / 8e-6);
    }
    let cm_rms = (cm_rms / n as f64).sqrt();
    let spectrum = Spectrum::periodogram(&out, Window::Blackman)?;
    let sinad = HarmonicAnalysis::of(&spectrum, 5)?.sinad_db();
    Ok((cm_rms, sinad))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (ff_cm, ff_sinad) = run_line(Box::new(Cmff::paper_08um()))?;
    let (fb_cm, fb_sinad) = run_line(Box::new(Cmfb::paper_08um()))?;

    println!("delay line with 8 µA tone + 2 µA common-mode wander + CM step:");
    println!("                     residual CM rms   output SINAD");
    println!(
        "  CMFF (the paper)   {:9.1} nA     {:7.1} dB",
        ff_cm * 1e9,
        ff_sinad
    );
    println!(
        "  CMFB (baseline)    {:9.1} nA     {:7.1} dB",
        fb_cm * 1e9,
        fb_sinad
    );

    let ff_power = SystemPower::new(Volts(3.3))?.with_cmff_stages(1, Amps(20e-6));
    let fb_power = SystemPower::new(Volts(3.3))?.with_cmfb_stages(1, Amps(20e-6));
    println!("\nstatic power of the control stage:");
    println!("  CMFF: {:.0} µW", ff_power.total_power().0 * 1e6);
    println!("  CMFB: {:.0} µW", fb_power.total_power().0 * 1e6);
    Ok(())
}
