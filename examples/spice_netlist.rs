//! Define a switched-current testbench as SPICE-style text, then solve and
//! clock it — the text-netlist workflow a circuit designer expects.
//!
//! The circuit is a minimal second-generation SI memory cell: a
//! diode-connectable NMOS with a φ1 sampling switch, a bias source, and a
//! φ2 output path into a held bias.
//!
//! Run: `cargo run --release -p si-bench --example spice_netlist`

use si_analog::dc::DcSolver;
use si_analog::device::TwoPhaseClock;
use si_analog::op_report::OpReport;
use si_analog::parse::parse_netlist;
use si_analog::tran::{run_from, TranParams};
use si_analog::units::Seconds;

const NETLIST: &str = "\
* second-generation SI memory cell testbench
V1  vdd 0   3.3
I1  vdd x   20u        ; bias current into the memory node
I2  0   xin 4u         ; signal current
S1  xin x   phi1 100 1e9
S2  xin dmp phi2 100 1e9
V2  dmp 0   1.05       ; dump bias for the off phase
C0  xin 0   0.2p
M1  x   g   0 0 NMOS W=32u L=2u
S3  x   g   phi1 100 1e9
C1  g   0   0.5p
S4  x   out phi2 100 1e9
V3  out 0   1.05       ; next stage virtual ground (ammeter)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = parse_netlist(NETLIST)?;
    println!(
        "parsed {} elements, {} nodes, {} source branches",
        circuit.elements().len(),
        circuit.node_count(),
        circuit.branch_count()
    );

    // DC operating point (φ1 closed) and the designer's first look.
    let op = DcSolver::new().solve(&circuit)?;
    println!(
        "\noperating point report:\n{}",
        OpReport::of(&circuit, &op).render()
    );

    // Clock it: 1 MHz two-phase; watch the held output current on V3.
    let clock = TwoPhaseClock::new(Seconds(1e-6), 0.05)?;
    let params = TranParams::new(Seconds(4e-6), Seconds(2e-9))?.with_clock(clock);
    let result = run_from(&circuit, &params, op)?;
    let branch = circuit.branch_of("V3")?;
    println!("held output current at φ2 midpoints:");
    for (k, s) in result.sample_phi2_currents(branch)?.iter().enumerate() {
        println!("  period {k}: {:+.2} µA", s.0 * 1e6);
    }
    println!("(bias + signal sampled during φ1, reproduced during φ2)");
    Ok(())
}
