//! Switched-current filtering — the application the paper's introduction
//! motivates ("the increasing interest in the SI technique for filtering
//! and data conversion applications").
//!
//! Builds an 8-tap SI FIR low-pass from class-AB delay cells and an SI
//! biquad resonator from two SI integrators, runs tones through both, and
//! prints their measured frequency responses next to the ideal ones.
//!
//! Run: `cargo run --release -p si-bench --example si_filter`

use si_core::filters::{SiBiquad, SiFirFilter};
use si_core::params::ClassAbParams;
use si_core::Diff;

fn measured_gain<F: FnMut(Diff) -> Diff>(mut f: F, freq: f64, n: usize) -> f64 {
    let mut peak = 0.0f64;
    for k in 0..n {
        let x = 1e-6 * (2.0 * std::f64::consts::PI * freq * k as f64).sin();
        let y = f(Diff::from_differential(x));
        if k > n / 2 {
            peak = peak.max(y.dm().abs());
        }
    }
    peak / 1e-6
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 8-tap boxcar-ish low-pass FIR with realistic cell errors --------
    let taps = vec![0.125; 8];
    let params = ClassAbParams::paper_08um();
    println!("8-tap SI FIR (moving average), paper-grade cells:");
    println!(
        "{:>12} {:>12} {:>12}",
        "freq (f/fs)", "ideal |H|", "measured |H|"
    );
    for freq in [0.01, 0.0625, 0.125, 0.25] {
        let mut fir = SiFirFilter::new(taps.clone(), &params, 2e-3, 3)?;
        let g = measured_gain(|x| fir.process(x), freq, 4096);
        // Ideal boxcar magnitude: |sin(πfN)/(N·sin(πf))|.
        let ideal = ((std::f64::consts::PI * freq * 8.0).sin()
            / (8.0 * (std::f64::consts::PI * freq).sin()))
        .abs();
        println!("{freq:>12} {ideal:>12.4} {g:>12.4}");
    }

    // --- SI biquad resonator --------------------------------------------
    println!("\nSI biquad, f0 = 0.02·fs, Q = 5 (two SI integrators in a loop):");
    println!("{:>12} {:>12}", "freq (f/fs)", "measured |H|");
    for freq in [0.005, 0.01, 0.02, 0.04, 0.08] {
        let mut bq = SiBiquad::design(0.02, 5.0, &ClassAbParams::ideal(), 1)?;
        let g = measured_gain(|x| bq.process(x), freq, 6000);
        let marker = if (freq - 0.02f64).abs() < 1e-9 {
            "  ← resonance"
        } else {
            ""
        };
        println!("{freq:>12} {g:>12.3}{marker}");
    }
    Ok(())
}
