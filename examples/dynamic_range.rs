//! Dynamic-range study: sweep the modulator input level (a fast version of
//! Fig. 7), extract the dynamic range, then show the two ablations the
//! paper's analysis implies — the oversampling-ratio sweep behind the
//! "+21 dB at OSR 128" claim, and the noise-floor sweep showing when the
//! loop stops being circuit-noise-limited.
//!
//! Run: `cargo run --release -p si-bench --example dynamic_range`

use si_analog::units::Amps;
use si_core::noise::{oversampling_gain_db, predicted_dynamic_range_db};
use si_modulator::measure::MeasurementConfig;
use si_modulator::si::{NoiseModel, SiModulator, SiModulatorConfig};
use si_modulator::sweep::sndr_sweep;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = MeasurementConfig::paper_fig5();
    cfg.record_len = 16_384;

    // A compact level sweep.
    let levels = [-60.0, -40.0, -20.0, -10.0, -6.0, -3.0];
    let result = sndr_sweep(
        || SiModulator::new(SiModulatorConfig::paper_08um()),
        &levels,
        &cfg,
    )?;
    println!("SNDR vs level (white 33 nA circuit noise):");
    for p in &result.points {
        println!(
            "  {:+5.0} dB input → SNDR {:5.1} dB",
            p.level_db, p.sinad_db
        );
    }
    println!(
        "dynamic range: {:.1} dB = {:.1} bits (paper: ≈ 63 dB / 10.5 bits)\n",
        result.dynamic_range_db,
        result.dynamic_range_bits()
    );

    // OSR ablation (analytic): DR gain from oversampling white noise.
    println!("oversampling gain over the Nyquist-band DR:");
    for osr in [16.0, 32.0, 64.0, 128.0, 256.0] {
        println!(
            "  OSR {osr:>4}: +{:.1} dB → predicted DR {:.1} dB",
            oversampling_gain_db(osr)?,
            predicted_dynamic_range_db(Amps(6e-6), Amps(33e-9), osr)?
        );
    }

    // Noise-floor ablation (simulated): halve and quarter the circuit
    // noise and watch the measured DR follow until quantization takes over.
    println!("\nmeasured DR vs injected circuit noise (OSR 128):");
    for rms_na in [66.0, 33.0, 16.5, 4.0] {
        let mut config = SiModulatorConfig::paper_08um();
        config.noise = NoiseModel::White { rms: rms_na * 1e-9 };
        let r = sndr_sweep(|| SiModulator::new(config), &levels, &cfg)?;
        println!(
            "  {rms_na:>5.1} nA → DR {:.1} dB ({:.1} bits)",
            r.dynamic_range_db,
            r.dynamic_range_bits()
        );
    }
    println!("(the last rows flatten out: distortion/quantization take over)");
    Ok(())
}
