//! Transistor-level tour: netlist the Fig. 1 class-AB half-cell, solve its
//! operating point, measure the GGA's conductance boost, then run a clocked
//! transient and watch the cell sample and hold a current.
//!
//! Run: `cargo run --release -p si-bench --example transistor_level`

use si_analog::cells::ClassAbCellDesign;
use si_analog::dc::{set_current_source, DcSolver};
use si_analog::device::TwoPhaseClock;
use si_analog::smallsignal::port_conductance;
use si_analog::tran::{run_from, TranParams};
use si_analog::units::{Amps, Seconds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cell = ClassAbCellDesign::default().build()?;
    println!(
        "class-AB half-cell netlist: {} elements, {} nodes",
        cell.cell.circuit.elements().len(),
        cell.cell.circuit.node_count()
    );

    // DC operating point.
    let op = DcSolver::new()
        .with_initial_guess(cell.cell.initial_guess.clone())
        .solve(&cell.cell.circuit)?;
    println!("\noperating point:");
    println!("  input node  : {:.3} V", op.voltage(cell.cell.input).0);
    println!("  memory gate : {:.3} V", op.voltage(cell.cell.gate).0);
    println!("  GGA output  : {:.3} V", op.voltage(cell.gga_out).0);

    // The virtual-ground conductance.
    let g = port_conductance(&cell.cell.circuit, &op, cell.cell.input)?;
    println!("\ninput conductance with GGA: {:.2} mS", g.0 * 1e3);

    // Clocked transient: drive +4 µA during the run and read the held
    // output current at the φ2 midpoints.
    let mut ckt = cell.cell.circuit.clone();
    set_current_source(&mut ckt, &cell.cell.input_source, Amps(4e-6))?;
    let clock = TwoPhaseClock::new(Seconds(1e-6), 0.05)?; // 1 MHz, slow & safe
    let params = TranParams::new(Seconds(4e-6), Seconds(2e-9))?.with_clock(clock);
    let result = run_from(&ckt, &params, op)?;
    let branch = ckt.branch_of(&cell.cell.output_ammeter)?;
    let samples = result.sample_phi2_currents(branch)?;
    println!("\nheld output current at φ2 midpoints (drive +4 µA):");
    for (k, s) in samples.iter().enumerate() {
        println!("  period {k}: {:+.2} µA", s.0 * 1e6);
    }
    println!("(sign is inverted by the memory mirror; magnitude tracks the drive)");
    Ok(())
}
