//! Delay-line deep dive: sweep the input amplitude and watch THD climb as
//! the GGA error mechanisms engage — the behaviour behind §V's "when we
//! further increased the input, the THD increased due to the slewing in
//! the GGAs", and the class-A comparison that motivates class AB.
//!
//! Run: `cargo run --release -p si-bench --example delay_line`

use si_bench::{measure_delay_line, DelayLineSetup};
use si_core::blocks::DelayLine;
use si_core::params::{ClassAParams, ClassAbParams};
use si_core::Diff;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("THD vs input amplitude (class-AB delay line, 5 MHz clock):");
    println!("{:>10}  {:>9}  {:>9}", "input", "THD", "SNR");
    for amp_ua in [2.0, 4.0, 8.0, 12.0, 16.0, 20.0] {
        let mut setup = DelayLineSetup::paper_table1();
        setup.record_len = 16_384;
        setup.amplitude = amp_ua * 1e-6;
        let m = measure_delay_line(&setup)?;
        println!("{amp_ua:>8} µA  {:>6.1} dB  {:>6.1} dB", m.thd_db, m.snr_db);
    }

    // Class A clips hard once the signal reaches its bias current; class AB
    // sails past its quiescent current. Drive both with a 15 µA tone.
    println!("\nclass A (10 µA bias) vs class AB (10 µA quiescent) at 15 µA peak:");
    let mut class_a = DelayLine::class_a(2, &ClassAParams::ideal_with_bias(10e-6), 7)?;
    let mut class_ab = DelayLine::class_ab(2, &ClassAbParams::ideal(), 7)?;
    let mut peak_a = 0.0f64;
    let mut peak_ab = 0.0f64;
    for k in 0..256 {
        let x = 15e-6 * (2.0 * std::f64::consts::PI * k as f64 / 64.0).sin();
        let ya = class_a.process(Diff::from_differential(x));
        let yab = class_ab.process(Diff::from_differential(x));
        peak_a = peak_a.max(ya.dm().abs());
        peak_ab = peak_ab.max(yab.dm().abs());
    }
    println!(
        "  class A  output peak: {:.1} µA (clipped at bias)",
        peak_a * 1e6
    );
    println!(
        "  class AB output peak: {:.1} µA (full signal)",
        peak_ab * 1e6
    );
    Ok(())
}
