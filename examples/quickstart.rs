//! Quickstart: build the paper's delay line, feed it a sine, measure SNR
//! and THD — the whole measurement chain in thirty lines.
//!
//! Run: `cargo run --release -p si-bench --example quickstart`

use si_core::blocks::DelayLine;
use si_core::params::ClassAbParams;
use si_core::Diff;
use si_dsp::metrics::HarmonicAnalysis;
use si_dsp::signal::SineWave;
use si_dsp::spectrum::Spectrum;
use si_dsp::window::Window;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two cascaded class-AB memory cells = one clock period of delay,
    // with the paper's 0.8 µm non-idealities (33 nA noise, charge
    // injection, GGA slew limit).
    let mut line = DelayLine::class_ab(2, &ClassAbParams::paper_08um(), 42)?;

    // A coherent 8 µA sine: 64 cycles in a 65536-sample record.
    let n = 65_536;
    let stimulus = SineWave::coherent(8e-6, 65, n)?;
    let output: Vec<f64> = stimulus
        .take(n)
        .map(|x| line.process(Diff::from_differential(x)).dm() / 8e-6)
        .collect();

    // Measure exactly the way the paper does: Blackman-windowed FFT.
    let spectrum = Spectrum::periodogram(&output, Window::Blackman)?;
    let analysis = HarmonicAnalysis::of(&spectrum, 5)?;

    println!("delay line at 8 µA input:");
    println!("  THD  = {:6.1} dB   (paper: −50 dB)", analysis.thd_db());
    println!("  SNR  = {:6.1} dB", analysis.snr_db());
    println!("  SINAD= {:6.1} dB", analysis.sinad_db());
    Ok(())
}
