//! End-to-end A/D conversion: analog current samples in, calibrated
//! baseband samples out — the modulator plus its sinc³ decimation chain as
//! a downstream user would actually deploy it.
//!
//! Run: `cargo run --release -p si-bench --example adc_conversion`

use si_core::Diff;
use si_modulator::adc::SiAdc;
use si_modulator::si::{SiModulator, SiModulatorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's modulator with OSR 128: 2.45 MHz in, 19.1 kHz out.
    let modulator = SiModulator::new(SiModulatorConfig::paper_08um())?;
    let mut adc = SiAdc::new(modulator, 128)?;

    // Full-chain quality: coherent sine at −6 dB, 21 cycles in 256 output
    // samples.
    let meas = adc.measure_enob(0.5, 21, 256)?;
    println!("full ADC chain at −6 dB input:");
    println!("  SINAD = {:5.1} dB", meas.sinad_db);
    println!("  SNR   = {:5.1} dB", meas.snr_db);
    println!("  THD   = {:5.1} dB", meas.thd_db);
    println!("  ENOB  = {:5.2} bits", meas.enob);

    // Streaming use: feed arbitrary-length blocks, get decimated samples.
    adc.reset();
    let block: Vec<Diff> = (0..128 * 8)
        .map(|k| Diff::from_differential(4e-6 * (k as f64 * 0.0005).sin()))
        .collect();
    let out = adc.convert(&block);
    println!(
        "\nstreaming conversion: {} input samples → {} output samples",
        block.len(),
        out.len()
    );
    println!("first outputs: {:?}", &out[..4.min(out.len())]);
    Ok(())
}
