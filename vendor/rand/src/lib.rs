//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no network access and no registry cache, so the
//! real `rand` cannot be fetched. This shim implements the exact API surface
//! the workspace consumes — `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over primitive ranges — wired to a deterministic
//! xoshiro256++ generator seeded through SplitMix64.
//!
//! The numeric stream differs from upstream `rand` (whose `StdRng` is
//! ChaCha12-based), but every consumer in this workspace either treats draws
//! statistically (noise generators, Monte-Carlo sampling) or only relies on
//! seed-determinism, both of which this shim preserves.

use core::ops::{Range, RangeInclusive};

/// A type that can be instantiated from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling interface: the subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Uniform draw over a type's "natural" distribution: `[0, 1)` for
    /// floats, full width for integers, fair coin for `bool`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

/// Ranges that can produce a uniform sample; mirror of
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

/// Mirror of `rand::distributions::Standard` support, as a helper trait.
pub trait Standard: Sized {
    fn draw<G: Rng + ?Sized>(rng: &mut G) -> Self;
}

/// Maps 64 random bits to a double in `[0, 1)` with 53-bit resolution.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    #[inline]
    fn draw<G: Rng + ?Sized>(rng: &mut G) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<G: Rng + ?Sized>(rng: &mut G) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn draw<G: Rng + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn draw<G: Rng + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64()
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = unit_f64(rng.next_u64());
        // Same construction as rand's uniform float sampling: scale + offset.
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the exclusive bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty f64 range");
        let u = unit_f64(rng.next_u64());
        lo + u * (hi - lo)
    }
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the small spans used here.
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Not the same stream as upstream, but a high-quality PRNG
    /// with the same seeding API.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias so code written against `SmallRng` also compiles.
    pub type SmallRng = StdRng;
}

/// Seeds a default generator from a fixed constant; upstream `rand`'s
/// `thread_rng` is non-deterministic, but this workspace never calls it in
/// a way that requires true entropy.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::seed_from_u64(0x5EED_0F_7157_AD00)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn integer_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..256 {
            let v: usize = rng.gen_range(0usize..8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_uniform_has_plausible_mean() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
