//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no network access and no registry cache, so the
//! real `proptest` cannot be fetched. This shim keeps the same test-authoring
//! surface — the `proptest!` macro with `arg in strategy` bindings, range /
//! tuple / `prop::collection::vec` / `prop::bool::ANY` strategies, and the
//! `prop_assert*` / `prop_assume!` macros — backed by a deterministic
//! per-test random generator instead of the upstream shrinking engine.
//!
//! Differences from upstream, deliberately accepted:
//! * no shrinking: a failing case reports its generated inputs verbatim;
//! * the case count defaults to 64 (override with `PROPTEST_CASES`);
//! * `*.proptest-regressions` files are ignored.

/// Deterministic generation state threaded through strategies.
pub mod test_runner {
    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*!` failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// xoshiro256++ seeded from a test-name hash: every proptest gets its
    /// own reproducible stream, stable across runs and platforms.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds the generator for a named test.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::seed_from_u64(h)
        }

        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut splitmix = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix();
            }
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            TestRng { s }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform double in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, bound)`.
        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }

    /// Number of cases each `proptest!` runs (upstream default is 256; this
    /// shim trades a smaller default for faster suites since it cannot
    /// shrink counter-examples anyway).
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Borrowed strategies generate like their referent (lets helpers pass
    /// `&strategy` without consuming it).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty f32 strategy range");
            let v = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    macro_rules! int_strategy_impl {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_strategy_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy_impl {
        ($(($($name:ident),+)),*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy_impl!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E), (A, B, C, D, E, F));

    /// Uniformly random booleans (`prop::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Always yields a clone of the same value (`Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Length specification for `prop::collection::vec`: an exact length or
    /// a half-open range of lengths.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// `prop::collection::vec(element, size)`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespaced strategy constructors, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// A `Vec` of values from `element`, with exact or ranged length.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::BoolStrategy;

        /// Uniformly random booleans.
        pub const ANY: BoolStrategy = BoolStrategy;
    }
}

/// Everything a test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` (the attribute is written by the caller, as with
/// upstream proptest) running `case_count()` generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::test_runner::case_count();
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                ::core::module_path!(), "::", stringify!($name)
            ));
            let mut __rejected: u32 = 0;
            for __case in 0..__cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                        ::core::assert!(
                            __rejected < 4 * __cases,
                            "proptest {}: too many rejected cases ({__rejected})",
                            stringify!($name),
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        ::core::panic!(
                            "proptest {} failed at case {}/{} with inputs [{}]: {}",
                            stringify!($name),
                            __case + 1,
                            __cases,
                            __inputs,
                            __msg,
                        );
                    }
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __l,
                            __r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&($left), &($right)) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)+),
                            __l,
                            __r
                        ),
                    ));
                }
            }
        }
    };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&($left), &($right)) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: {} != {}\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __l
                        ),
                    ));
                }
            }
        }
    };
}

/// Skips the current case when its generated inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -3.0f64..5.0, n in 1usize..9) {
            prop_assert!((-3.0..5.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_spec(
            fixed in prop::collection::vec(0.0f64..1.0, 7),
            ranged in prop::collection::vec(prop::bool::ANY, 2..6),
            pairs in prop::collection::vec((0u32..4, -1.0f64..1.0), 1..4),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!(ranged.len() >= 2 && ranged.len() < 6);
            prop_assert!(!pairs.is_empty() && pairs.len() < 4);
            for (k, v) in pairs {
                prop_assert!(k < 4, "k = {}", k);
                prop_assert!((-1.0..1.0).contains(&v));
            }
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_rng_repeats() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
