//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no network access and no registry cache, so the
//! real `criterion` cannot be fetched. This shim keeps the bench-authoring
//! API (`Criterion`, `bench_function`, benchmark groups, `criterion_group!`
//! / `criterion_main!`) and performs a simple warmup + timed measurement per
//! benchmark, printing mean / median / min wall-clock time per iteration.
//! There is no statistical regression analysis and no HTML report.
//!
//! Tuning via environment variables:
//! * `CRITERION_MEASURE_MS` — target measurement time per bench (default 300)
//! * `CRITERION_WARMUP_MS` — warmup time per bench (default 100)

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies a parameterized benchmark, e.g. `BenchmarkId::new("forward", n)`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Declared throughput of a benchmark (accepted, not reported).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_ms),
    )
}

/// Runs closures under a timer.
pub struct Bencher {
    measure: Duration,
    warmup: Duration,
    /// Per-iteration timings from the measurement phase, nanoseconds.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(measure: Duration, warmup: Duration) -> Self {
        Bencher {
            measure,
            warmup,
            samples: Vec::new(),
        }
    }

    /// Times `routine`, discarding its output via an implicit black box.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: run until the warmup budget is spent, measuring nothing.
        let warm_until = Instant::now() + self.warmup;
        let mut warm_iters: u64 = 0;
        let warm_started = Instant::now();
        while Instant::now() < warm_until {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_started.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Measurement: batch iterations so each timed sample is ≥ ~50 µs,
        // keeping timer overhead negligible for fast routines.
        let batch = ((50e-6 / per_iter.max(1e-12)).ceil() as u64).clamp(1, 1 << 20);
        let measure_until = Instant::now() + self.measure;
        while Instant::now() < measure_until {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed().as_secs_f64();
            self.samples.push(dt * 1e9 / batch as f64);
        }
    }

    /// `iter_batched` compatibility: per-sample setup excluded from timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.warmup;
        while Instant::now() < warm_until {
            let input = setup();
            black_box(routine(input));
        }
        let measure_until = Instant::now() + self.measure;
        while Instant::now() < measure_until {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed().as_secs_f64() * 1e9);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} no samples");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let n = self.samples.len();
        let mean = self.samples.iter().sum::<f64>() / n as f64;
        let median = self.samples[n / 2];
        let min = self.samples[0];
        println!(
            "{name:<50} mean {:>12} median {:>12} min {:>12} ({n} samples)",
            fmt_ns(mean),
            fmt_ns(median),
            fmt_ns(min),
        );
    }
}

/// Batch-size hint for `iter_batched` (accepted, not used).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure: Duration,
    warmup: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards a substring filter; honor it so
        // single benches can be run in isolation. Flag-style arguments
        // (`--bench`, `--exact`, ...) are ignored.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion {
            measure: env_ms("CRITERION_MEASURE_MS", 300),
            warmup: env_ms("CRITERION_WARMUP_MS", 100),
            filter,
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measure = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warmup = t;
        self
    }

    pub fn configure_from_args(&mut self) -> &mut Self {
        self
    }

    fn skip(&self, name: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !name.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if self.skip(name) {
            return;
        }
        let mut bencher = Bencher::new(self.measure, self.warmup);
        f(&mut bencher);
        bencher.report(name);
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    fn full_id(&self, id: impl fmt::Display) -> String {
        format!("{}/{id}", self.name)
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = self.full_id(id);
        self.criterion.run_one(&full, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = self.full_id(&id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measure = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.warmup = t;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        std::env::set_var("CRITERION_MEASURE_MS", "10");
        std::env::set_var("CRITERION_WARMUP_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }
}
